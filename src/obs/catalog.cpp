#include "obs/catalog.hpp"

#include <algorithm>
#include <array>

namespace tapesim::obs {

namespace {

// Sorted by name (find_metric binary-searches; a test asserts the order).
constexpr std::array<MetricInfo, 88> kCatalog{{
    {"engine.events.cancelled", "counter", "",
     "pending events cancelled before dispatch"},
    {"engine.events.dispatched", "counter", "",
     "events popped and executed by the kernel"},
    {"engine.events.scheduled", "counter", "",
     "events pushed onto the queue"},
    {"engine.schedule_horizon_s", "histogram", "s",
     "delay between scheduling an event and its due time"},
    {"evac.objects_moved", "counter", "",
     "objects copied off unhealthy cartridges"},
    {"evac.preempted_unavailables", "counter", "",
     "objects moved off a cartridge that later decayed to Lost"},
    {"evac.started", "counter", "", "cartridge evacuations started"},
    {"failslow.detected", "counter", "",
     "gray-failure flags on drives actually inside a slow episode"},
    {"failslow.detection_lag_s", "histogram", "s",
     "slow-episode onset to detector flag"},
    {"failslow.drive_s", "gauge", "s",
     "summed duration of materialised drive slow episodes"},
    {"failslow.episodes", "counter", "",
     "fail-slow episodes materialised (drive + robot)"},
    {"failslow.false_positives", "counter", "",
     "gray-failure flags on drives not inside a slow episode"},
    {"failslow.hedge_wasted_bytes", "counter", "bytes",
     "bytes streamed by cancelled hedge losers"},
    {"failslow.hedge_win_margin_s", "histogram", "s",
     "time a winning hedge beat the primary's projected finish by"},
    {"failslow.hedges_issued", "counter", "",
     "speculative hedge chains launched"},
    {"failslow.hedges_lost", "counter", "",
     "hedges where the primary finished first"},
    {"failslow.hedges_won", "counter", "",
     "hedges where the speculative chain finished first"},
    {"failslow.quarantines", "counter", "",
     "drives placed in gray-failure quarantine"},
    {"fault.drive_failures", "counter", "",
     "drive failure events injected"},
    {"fault.failovers", "counter", "",
     "reads redirected to a surviving replica"},
    {"fault.latent_events", "counter", "",
     "latent media decay events accrued"},
    {"fault.latent_observed", "counter", "",
     "latent decay events observed by a read or scrub"},
    {"fault.media_errors", "counter", "", "media read errors injected"},
    {"fault.mount_failures", "counter", "", "mount attempts that failed"},
    {"fault.robot_jams", "counter", "", "robot jam events injected"},
    {"governor.breaker_closed", "counter", "",
     "circuit breakers closed after successful half-open probes"},
    {"governor.breaker_opened", "counter", "",
     "circuit breakers tripped from closed (new open episodes)"},
    {"governor.breaker_probes", "counter", "",
     "attempts observed while a breaker was half-open"},
    {"governor.breaker_reopened", "counter", "",
     "breakers re-tripped by a failed half-open probe"},
    {"governor.breakers_open", "gauge", "",
     "breakers currently open or half-open"},
    {"governor.failover_admitted", "counter", "",
     "failover attempts funded by the failover budget"},
    {"governor.failover_attempts", "counter", "",
     "failover admission decisions taken by the governor"},
    {"governor.failover_fast_failed", "counter", "",
     "failovers denied (budget or breaker) into the unavailable ladder"},
    {"governor.hedge_admitted", "counter", "",
     "hedge launches funded by the hedge budget"},
    {"governor.hedge_attempts", "counter", "",
     "hedge admission decisions taken by the governor"},
    {"governor.hedge_fast_failed", "counter", "",
     "hedge launches denied (budget or breaker); primary serves alone"},
    {"governor.metastable_releases", "counter", "",
     "metastable episodes released (shed level back to zero)"},
    {"governor.metastable_trips", "counter", "",
     "goodput-collapse detections that started shedding"},
    {"governor.retry_admitted", "counter", "",
     "retry attempts funded by the retry budget"},
    {"governor.retry_attempts", "counter", "",
     "retry admission decisions taken by the governor"},
    {"governor.retry_fast_failed", "counter", "",
     "retries denied (budget or breaker) into the fail-fast ladder"},
    {"governor.shed_escalations", "counter", "",
     "every shed-level increment, including within an open episode"},
    {"governor.shed_level", "gauge", "",
     "current metastable shed level (0 = none, 3 = max)"},
    {"outage.disasters", "counter", "",
     "library outages that were permanent site disasters"},
    {"outage.downtime_s", "gauge", "s",
     "accumulated downtime of closed library outage windows"},
    {"outage.dr_bytes", "counter", "bytes",
     "bytes re-replicated by disaster-recovery copy jobs"},
    {"outage.dr_jobs", "counter", "",
     "disaster-recovery re-replication jobs scheduled"},
    {"outage.ended", "counter", "", "library outage windows closed"},
    {"outage.failovers", "counter", "",
     "extents rerouted to a replica in a surviving library"},
    {"outage.redundancy_recovery_s", "histogram", "s",
     "disaster onset to full redundancy restored (time-to-full-redundancy)"},
    {"outage.requests_parked", "counter", "",
     "requests that parked at least one extent behind a downed library"},
    {"outage.started", "counter", "", "library outage onsets registered"},
    {"outage.ttfb_s", "histogram", "s",
     "library restore to first byte served from it (time-to-first-byte)"},
    {"overload.expired", "counter", "",
     "admitted requests cancelled at their deadline"},
    {"overload.served", "counter", "",
     "admitted requests served within their deadline"},
    {"overload.shed", "counter", "",
     "requests rejected at admission (queue bound or hopeless)"},
    {"profiler.dispatch_wall_s", "gauge", "s",
     "wall-clock time inside event actions"},
    {"profiler.dispatches", "counter", "",
     "events dispatched while the profiler was attached"},
    {"profiler.events_per_wall_s", "gauge", "1/s",
     "events dispatched per wall second"},
    {"profiler.kernel_wall_s", "gauge", "s",
     "run-loop wall time not inside event actions (queue overhead)"},
    {"profiler.queue_depth.high_water", "gauge", "",
     "largest event-queue depth seen after a dispatch"},
    {"profiler.queue_depth.mean", "gauge", "",
     "mean event-queue depth across dispatches"},
    {"profiler.run_wall_s", "gauge", "s",
     "total wall time of run()/run_until() loops"},
    {"profiler.runs", "counter", "",
     "run()/run_until() loops profiled"},
    {"profiler.sim_advanced_s", "gauge", "s",
     "simulated time covered by the profiled runs"},
    {"profiler.sim_s_per_wall_s", "gauge", "s/s",
     "simulated seconds per wall second"},
    {"recovery.admissions_parked", "counter", "",
     "requests that waited out a metadata-recovery window at admission"},
    {"recovery.checkpoints", "counter", "",
     "catalog snapshot checkpoints taken (journal truncations)"},
    {"recovery.crashes", "counter", "",
     "metadata-server crashes observed and recovered"},
    {"recovery.downtime_s", "gauge", "s",
     "accumulated metadata-unavailable time across recoveries"},
    {"recovery.lost_mutations", "counter", "",
     "journal records lost to torn tails across all crashes"},
    {"recovery.metadata_rto_s", "histogram", "s",
     "crash to catalog replayed (metadata recovery-time objective)"},
    {"recovery.reconciled_mutations", "counter", "",
     "lost mutations re-derived from tape reality after replay"},
    {"recovery.records_replayed", "counter", "",
     "journal records applied by recovery replays"},
    {"recovery.snapshot_age_s", "histogram", "s",
     "age of the latest snapshot at each crash"},
    {"repair.completed", "counter", "",
     "re-replication / evacuation copy jobs finished"},
    {"repair.copied_bytes", "counter", "bytes",
     "bytes written by repair copy jobs"},
    {"robot.grants", "counter", "", "robot arm grants to waiting drives"},
    {"robot.wait_s", "histogram", "s",
     "time drives queued for the robot arm"},
    {"sched.demand.queue_wait_s", "histogram", "s",
     "tape demanded to drive assigned (concurrent scheduler)"},
    {"sched.request.response_s", "histogram", "s",
     "whole-request response time"},
    {"sched.request.robot_wait_s", "histogram", "s",
     "per-request robot-queue wait"},
    {"sched.request.switches", "counter", "",
     "tape switches performed for requests"},
    {"sched.requests", "counter", "", "requests simulated"},
    {"sched.served_from_replica", "counter", "",
     "requests with at least one extent served from a replica"},
    {"scrub.latent_found", "counter", "",
     "latent decay events surfaced by verification passes"},
    {"scrub.passes", "counter", "",
     "background verification passes completed"},
    {"scrub.verified_bytes", "counter", "bytes",
     "bytes read and verified by scrub passes"},
}};

}  // namespace

std::span<const MetricInfo> metric_catalog() { return kCatalog; }

const MetricInfo* find_metric(std::string_view name) {
  const auto it = std::lower_bound(
      kCatalog.begin(), kCatalog.end(), name,
      [](const MetricInfo& m, std::string_view n) { return m.name < n; });
  return it != kCatalog.end() && it->name == name ? &*it : nullptr;
}

bool is_valid_metric_name(std::string_view name) {
  if (name.empty()) return false;
  if (name.front() < 'a' || name.front() > 'z') return false;
  bool prev_dot = false;
  for (const char c : name) {
    if (c == '.') {
      if (prev_dot) return false;  // empty segment
      prev_dot = true;
      continue;
    }
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                    c == '_';
    if (!ok) return false;
    prev_dot = false;
  }
  return !prev_dot;  // no trailing dot
}

}  // namespace tapesim::obs
