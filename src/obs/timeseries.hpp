// Windowed time-series snapshots of metrics instruments.
//
// A Registry answers "how much, in total"; a TimeSeries answers "when".
// It tracks selected counters, gauges, and histograms and closes a window
// every `window` of *simulated* time, recording per-window deltas and
// rates rather than cumulative totals — so an overload storm, a scrub duty
// cycle, or a repair backlog becomes a plottable trajectory instead of one
// end-of-run number.
//
// Per tracked instrument and window:
//   counter `c`    -> columns `c` (delta) and `c.rate_per_s` (delta/span)
//   gauge `g`      -> column `g` (value at window close)
//   histogram `h`  -> columns `h.count` (delta) and `h.pN` for each
//                     requested percentile, computed over the *window's*
//                     samples (bucket-count deltas, edge-interpolated)
//
// Driving the clock: call advance_to(now) as simulated time progresses —
// directly, or let a Tracer do it on event dispatch via
// Tracer::set_timeseries. Windows the clock skips close empty except the
// first, which absorbs the whole delta (attribution granularity equals the
// call cadence). finish(now) closes the partial final window, scaling
// rates by its actual span. Instruments must outlive the TimeSeries.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "util/units.hpp"

namespace tapesim::obs {

/// One closed window: [start, end) plus one value per tracked column.
struct TimeSeriesWindow {
  Seconds start{};
  Seconds end{};
  std::vector<double> values;  ///< parallel to TimeSeries::columns()
};

class TimeSeries {
 public:
  /// `window` is the nominal window length in simulated seconds (> 0).
  explicit TimeSeries(Seconds window);

  // --- registration (before the first advance_to) ---
  void track_counter(std::string name, const Counter& counter);
  void track_gauge(std::string name, const Gauge& gauge);
  /// `percentiles` are per-window percentiles in (0, 100].
  void track_histogram(std::string name, const Histogram& histogram,
                       std::vector<double> percentiles = {50.0, 95.0, 99.0});

  // --- clock ---
  /// Closes every window whose end is <= `now`. Monotonic; calls with an
  /// earlier `now` are ignored.
  void advance_to(Seconds now);
  /// Closes the partial window [last boundary, now) if it has nonzero
  /// span. Idempotent for the same `now`.
  void finish(Seconds now);
  /// finish() at the latest time advance_to has seen — for callers that
  /// drove the clock indirectly (e.g. through Tracer::set_timeseries) and
  /// do not know the final simulated time themselves.
  void finish() { finish(last_advance_); }
  /// Drops all closed windows and re-baselines deltas at `now` — the
  /// mid-run measurement-window reset, mirroring Registry::reset.
  void reset(Seconds now);

  // --- results ---
  [[nodiscard]] const std::vector<std::string>& columns() const {
    return columns_;
  }
  [[nodiscard]] const std::vector<TimeSeriesWindow>& windows() const {
    return windows_;
  }
  [[nodiscard]] Seconds window_length() const { return window_; }

  /// Header `window_start_s,window_end_s,<columns...>`, one row per window.
  void write_csv(std::ostream& os) const;
  /// `{"window_s": ..., "columns": [...], "windows": [{...}, ...]}`.
  void write_json(std::ostream& os) const;

 private:
  struct CounterSource {
    std::string name;
    const Counter* counter;
    std::uint64_t last = 0;
    std::size_t column;  ///< delta column; rate column is column + 1
  };
  struct GaugeSource {
    std::string name;
    const Gauge* gauge;
    std::size_t column;
  };
  struct HistogramSource {
    std::string name;
    const Histogram* histogram;
    std::vector<double> percentiles;
    HistogramSnapshot last;
    std::size_t column;  ///< count column; percentiles follow
  };

  void close_window(Seconds end);

  Seconds window_;
  Seconds window_start_{0.0};
  Seconds last_advance_{0.0};
  std::vector<std::string> columns_;
  std::vector<CounterSource> counters_;
  std::vector<GaugeSource> gauges_;
  std::vector<HistogramSource> histograms_;
  std::vector<TimeSeriesWindow> windows_;
};

}  // namespace tapesim::obs
