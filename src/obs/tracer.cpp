#include "obs/tracer.hpp"

#include <fstream>
#include <optional>
#include <ostream>
#include <utility>

#include "obs/json.hpp"
#include "sim/resource.hpp"
#include "tape/system.hpp"
#include "util/log.hpp"

namespace tapesim::obs {

const char* to_string(Track t) {
  switch (t) {
    case Track::kRequest: return "request";
    case Track::kDrive: return "drive";
    case Track::kRobot: return "robot";
    case Track::kEngine: return "engine";
    case Track::kRepair: return "repair";
    case Track::kOverload: return "overload";
    case Track::kScrub: return "scrub";
    case Track::kOutage: return "outage";
    case Track::kHedge: return "hedge";
    case Track::kQuarantine: return "quarantine";
    case Track::kRecovery: return "recovery";
    case Track::kBreaker: return "breaker";
  }
  return "?";
}

const char* to_string(Phase p) {
  switch (p) {
    case Phase::kQueueWait: return "queue_wait";
    case Phase::kRobotWait: return "robot_wait";
    case Phase::kRobotMove: return "robot_move";
    case Phase::kUnload: return "unload";
    case Phase::kLoad: return "load";
    case Phase::kLocate: return "locate";
    case Phase::kTransfer: return "transfer";
    case Phase::kRewind: return "rewind";
    case Phase::kFault: return "fault";
    case Phase::kRequest: return "request";
    case Phase::kRepair: return "repair";
    case Phase::kShed: return "shed";
    case Phase::kExpired: return "expired";
    case Phase::kScrub: return "scrub";
    case Phase::kOutage: return "outage";
    case Phase::kHedge: return "hedge";
    case Phase::kQuarantine: return "quarantine";
    case Phase::kRecovery: return "recovery";
    case Phase::kBreaker: return "breaker";
    case Phase::kMarker: return "marker";
  }
  return "?";
}

namespace {

/// Maps an activity state to its span phase; nullopt for passive states.
std::optional<Phase> phase_of_state(tape::DriveState s) {
  switch (s) {
    case tape::DriveState::kLoading: return Phase::kLoad;
    case tape::DriveState::kLocating: return Phase::kLocate;
    case tape::DriveState::kTransferring: return Phase::kTransfer;
    case tape::DriveState::kRewinding: return Phase::kRewind;
    case tape::DriveState::kUnloading: return Phase::kUnload;
    case tape::DriveState::kFailed: return Phase::kFault;
    case tape::DriveState::kEmpty:
    case tape::DriveState::kIdle: return std::nullopt;
  }
  return std::nullopt;
}

}  // namespace

/// Feeds kernel-event statistics to the registry and drives the samplers.
/// References to the instruments are resolved once here — the per-event
/// path touches no maps and no strings.
class Tracer::EngineSink final : public sim::TraceSink {
 public:
  explicit EngineSink(Tracer& tracer)
      : tracer_(tracer),
        scheduled_(tracer.registry_.counter("engine.events.scheduled")),
        dispatched_(tracer.registry_.counter("engine.events.dispatched")),
        cancelled_(tracer.registry_.counter("engine.events.cancelled")),
        horizon_(tracer.registry_.histogram(
            "engine.schedule_horizon_s",
            BucketLayout::exponential(1e-3, 1e6, 2.0))) {}

  void on_schedule(Seconds now, Seconds at, sim::EventId /*event_id*/,
                   const std::string& /*label*/) override {
    scheduled_.inc();
    horizon_.record((at - now).count());
  }

  void on_dispatch(Seconds time, sim::EventId /*event_id*/,
                   const std::string& /*label*/) override {
    dispatched_.inc();
    tracer_.take_samples(time);
    if (tracer_.timeseries_ != nullptr) {
      tracer_.timeseries_->advance_to(time);
    }
  }

  void on_cancel(Seconds /*now*/, sim::EventId /*event_id*/) override {
    cancelled_.inc();
  }

 private:
  Tracer& tracer_;
  Counter& scheduled_;
  Counter& dispatched_;
  Counter& cancelled_;
  Histogram& horizon_;
};

/// One probe serves every drive: transitions into an activity state open a
/// span on the drive's lane, transitions out close it.
class Tracer::DriveProbe final : public tape::DriveObserver {
 public:
  explicit DriveProbe(Tracer& tracer) : tracer_(tracer) {}

  void on_transition(const tape::TapeDrive& drive, tape::DriveState from,
                     tape::DriveState to) override {
    const std::size_t lane = drive.id().index();
    if (open_.size() <= lane) open_.resize(lane + 1);
    if (const auto closing = phase_of_state(from)) {
      Span span;
      span.track = Track::kDrive;
      span.track_id = drive.id().value();
      span.phase = *closing;
      span.start = open_[lane].start;
      span.end = tracer_.now();
      span.tape = open_[lane].tape;
      span.request = open_[lane].request;
      tracer_.record(std::move(span));
    }
    if (phase_of_state(to)) {
      open_[lane].start = tracer_.now();
      open_[lane].tape = drive.mounted();
      open_[lane].request = tracer_.current_request();
    }
  }

 private:
  struct OpenSpan {
    Seconds start{};
    TapeId tape{};
    RequestId request{};
  };
  Tracer& tracer_;
  std::vector<OpenSpan> open_;
};

/// One probe per robot: each release closes a busy span on the robot lane,
/// and queueing delays land in the wait-time histogram.
class Tracer::RobotProbe final : public sim::ResourceObserver {
 public:
  RobotProbe(Tracer& tracer, std::uint32_t lane)
      : tracer_(tracer),
        lane_(lane),
        wait_hist_(tracer.registry_.histogram(
            "robot.wait_s", BucketLayout::exponential(1e-3, 1e5, 2.0))),
        grants_(tracer.registry_.counter("robot.grants")) {}

  void on_grant(const sim::Resource& /*resource*/, Seconds waited) override {
    grants_.inc();
    wait_hist_.record(waited.count());
  }

  void on_release(const sim::Resource& /*resource*/, Seconds held) override {
    Span span;
    span.track = Track::kRobot;
    span.track_id = lane_;
    span.phase = Phase::kRobotMove;
    span.start = tracer_.now() - held;
    span.end = tracer_.now();
    span.request = tracer_.current_request();
    tracer_.record(std::move(span));
  }

 private:
  Tracer& tracer_;
  std::uint32_t lane_;
  Histogram& wait_hist_;
  Counter& grants_;
};

Tracer::Tracer() = default;

Tracer::~Tracer() { detach(); }

void Tracer::bind(sim::Engine& engine) {
  unbind();
  engine_ = &engine;
  sink_ = std::make_unique<EngineSink>(*this);
  engine.set_trace_sink(sink_.get());
  next_sample_ = engine.now();
  // The tracer becomes the single source of truth for event narration:
  // log lines gain the simulation timestamp and are captured as markers.
  set_log_time_provider([eng = engine_]() { return eng->now().count(); });
  set_log_hook([this](LogLevel level, double /*sim_time*/,
                      const std::string& message) {
    if (level <= LogLevel::kDebug) marker(Track::kEngine, 0, message);
  });
}

void Tracer::unbind() {
  if (engine_ == nullptr) return;
  engine_->set_trace_sink(nullptr);
  engine_ = nullptr;
  sink_.reset();
  set_log_time_provider({});
  set_log_hook({});
}

void Tracer::observe(tape::TapeSystem& system) {
  detach_system();
  system_ = &system;
  auto drive_probe = std::make_unique<DriveProbe>(*this);
  for (tape::TapeLibrary& library : system.libraries()) {
    for (tape::TapeDrive& drive : library.drives()) {
      drive.set_observer(drive_probe.get());
    }
    auto robot_probe =
        std::make_unique<RobotProbe>(*this, library.id().value());
    library.robot().set_observer(robot_probe.get());
    robot_probes_.push_back(std::move(robot_probe));

    // Fleet gauges for the periodic sampler.
    const std::string prefix =
        "tape.lib" + std::to_string(library.id().value());
    tape::TapeLibrary* lib = &library;
    add_gauge(prefix + ".drives_active", [lib]() {
      double active = 0.0;
      for (const tape::TapeDrive& d : lib->drives()) {
        if (!d.idle() && !d.empty() && !d.failed()) active += 1.0;
      }
      return active;
    });
    add_gauge(prefix + ".robot_queue", [lib]() {
      return static_cast<double>(lib->robot().queue_length()) +
             (lib->robot().busy() ? 1.0 : 0.0);
    });
  }
  drive_probes_.push_back(std::move(drive_probe));
  if (engine_ != nullptr) {
    sim::Engine* eng = engine_;
    add_gauge("engine.queue_depth",
              [eng]() { return static_cast<double>(eng->events_pending()); });
  }
}

void Tracer::detach_system() {
  if (system_ != nullptr) {
    for (tape::TapeLibrary& library : system_->libraries()) {
      for (tape::TapeDrive& drive : library.drives()) {
        drive.set_observer(nullptr);
      }
      library.robot().set_observer(nullptr);
    }
    system_ = nullptr;
  }
  drive_probes_.clear();
  robot_probes_.clear();
}

void Tracer::detach() {
  unbind();
  detach_system();
  // Disarm the callbacks — they reference the detached system and must
  // never fire again — but keep the collected samples for export.
  for (GaugeSeries& g : gauges_) g.fn = nullptr;
}

Seconds Tracer::now() const {
  return engine_ != nullptr ? engine_->now() : Seconds{0.0};
}

void Tracer::record(Span span) { spans_.push_back(std::move(span)); }

void Tracer::marker(Track track, std::uint32_t track_id, std::string note) {
  Span span;
  span.track = track;
  span.track_id = track_id;
  span.phase = Phase::kMarker;
  span.start = now();
  span.end = span.start;
  span.request = current_request_;
  span.note = std::move(note);
  spans_.push_back(std::move(span));
}

void Tracer::add_gauge(std::string name, std::function<double()> fn) {
  gauges_.push_back(GaugeSeries{std::move(name), std::move(fn), {}});
}

void Tracer::take_samples(Seconds now_time) {
  if (cadence_.count() <= 0.0 || gauges_.empty()) return;
  if (now_time < next_sample_) return;
  for (GaugeSeries& g : gauges_) {
    if (g.fn) g.samples.emplace_back(now_time, g.fn());
  }
  next_sample_ = now_time + cadence_;
}

std::map<Phase, PhaseAgg> Tracer::phase_totals(Track track) const {
  std::map<Phase, PhaseAgg> totals;
  for (const Span& s : spans_) {
    if (s.track != track || s.phase == Phase::kMarker) continue;
    PhaseAgg& agg = totals[s.phase];
    ++agg.spans;
    agg.total += s.duration();
  }
  return totals;
}

Seconds Tracer::lane_phase_total(Track track, std::uint32_t lane,
                                 Phase phase) const {
  Seconds total{};
  for (const Span& s : spans_) {
    if (s.track == track && s.track_id == lane && s.phase == phase) {
      total += s.duration();
    }
  }
  return total;
}

void Tracer::write_jsonl(std::ostream& os) const {
  os.precision(15);
  os << R"({"type":"meta","version":1,"time_unit":"s"})" << '\n';
  for (const Span& s : spans_) {
    os << R"({"type":"span","track":")" << to_string(s.track)
       << R"(","lane":)" << s.track_id << R"(,"phase":")"
       << to_string(s.phase) << R"(","start_s":)" << s.start.count()
       << R"(,"end_s":)" << s.end.count();
    if (s.request.valid()) os << R"(,"request":)" << s.request.value();
    if (s.tape.valid()) os << R"(,"tape":)" << s.tape.value();
    if (!s.note.empty()) os << R"(,"note":")" << escape_json(s.note) << '"';
    os << "}\n";
  }
  for (const GaugeSeries& g : gauges_) {
    for (const auto& [t, v] : g.samples) {
      os << R"({"type":"sample","name":")" << escape_json(g.name)
         << R"(","t_s":)" << t.count() << R"(,"value":)" << v << "}\n";
    }
  }
}

void Tracer::write_chrome_trace(std::ostream& os) const {
  os.precision(15);
  // Microseconds: the native unit of the trace_event format.
  const auto us = [](Seconds s) { return s.count() * 1e6; };
  os << "{\"traceEvents\":[\n";
  bool first = true;
  const auto sep = [&]() {
    if (!first) os << ",\n";
    first = false;
  };
  for (const auto& [pid, name] :
       {std::pair<int, const char*>{1, "requests"},
        {2, "drives"},
        {3, "robots"},
        {4, "engine"},
        {5, "repair"},
        {6, "overload"},
        {7, "scrub"},
        {8, "outage"},
        {9, "hedge"},
        {10, "quarantine"}}) {
    sep();
    os << R"({"name":"process_name","ph":"M","pid":)" << pid
       << R"(,"tid":0,"args":{"name":")" << name << R"("}})";
  }
  for (const Span& s : spans_) {
    sep();
    const int pid = static_cast<int>(s.track);
    if (s.phase == Phase::kMarker) {
      os << R"({"name":")" << escape_json(s.note.empty() ? "marker" : s.note)
         << R"(","cat":")" << to_string(s.track)
         << R"(","ph":"i","s":"t","ts":)" << us(s.start) << R"(,"pid":)"
         << pid << R"(,"tid":)" << s.track_id << "}";
      continue;
    }
    os << R"({"name":")" << to_string(s.phase) << R"(","cat":")"
       << to_string(s.track) << R"(","ph":"X","ts":)" << us(s.start)
       << R"(,"dur":)" << us(s.end - s.start) << R"(,"pid":)" << pid
       << R"(,"tid":)" << s.track_id << R"(,"args":{)";
    bool first_arg = true;
    if (s.request.valid()) {
      os << R"("request":)" << s.request.value();
      first_arg = false;
    }
    if (s.tape.valid()) {
      os << (first_arg ? "" : ",") << R"("tape":)" << s.tape.value();
      first_arg = false;
    }
    if (!s.note.empty()) {
      os << (first_arg ? "" : ",") << R"("note":")" << escape_json(s.note)
         << '"';
    }
    os << "}}";
  }
  for (const GaugeSeries& g : gauges_) {
    for (const auto& [t, v] : g.samples) {
      sep();
      os << R"({"name":")" << escape_json(g.name)
         << R"(","ph":"C","ts":)" << us(t)
         << R"(,"pid":4,"tid":0,"args":{"value":)" << v << "}}";
    }
  }
  os << "\n],\"displayTimeUnit\":\"ms\"}\n";
}

namespace {
bool write_file(const std::string& path,
                const std::function<void(std::ostream&)>& writer) {
  std::ofstream out(path);
  if (!out) {
    TAPESIM_LOG(kWarn) << "cannot open trace output file: " << path;
    return false;
  }
  writer(out);
  return static_cast<bool>(out);
}
}  // namespace

bool Tracer::write_jsonl_file(const std::string& path) const {
  return write_file(path, [this](std::ostream& os) { write_jsonl(os); });
}

bool Tracer::write_chrome_trace_file(const std::string& path) const {
  return write_file(path,
                    [this](std::ostream& os) { write_chrome_trace(os); });
}

}  // namespace tapesim::obs
