#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <ostream>

#include "util/assert.hpp"

namespace tapesim::obs {

BucketLayout BucketLayout::linear(double lo, double hi, std::size_t count) {
  TAPESIM_ASSERT_MSG(hi > lo && count > 0, "degenerate linear layout");
  BucketLayout layout;
  layout.bounds.reserve(count);
  const double width = (hi - lo) / static_cast<double>(count);
  for (std::size_t i = 1; i <= count; ++i) {
    layout.bounds.push_back(lo + width * static_cast<double>(i));
  }
  return layout;
}

BucketLayout BucketLayout::exponential(double lo, double hi, double factor) {
  TAPESIM_ASSERT_MSG(lo > 0.0 && hi > lo && factor > 1.0,
                     "degenerate exponential layout");
  BucketLayout layout;
  for (double edge = lo; edge < hi * factor; edge *= factor) {
    layout.bounds.push_back(edge);
    if (layout.bounds.size() > 4096) break;  // runaway-factor backstop
  }
  return layout;
}

std::size_t BucketLayout::bucket_index(double v) const {
  const auto it = std::lower_bound(bounds.begin(), bounds.end(), v);
  return static_cast<std::size_t>(it - bounds.begin());
}

double HistogramSnapshot::percentile(double p) const {
  if (count == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  const double rank = p / 100.0 * static_cast<double>(count);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    seen += counts[i];
    if (static_cast<double>(seen) >= rank) {
      const double lo = i == 0 ? std::min(min, layout.bounds.empty()
                                                   ? min
                                                   : layout.bounds[0])
                               : layout.bounds[i - 1];
      const double hi =
          i < layout.bounds.size() ? layout.bounds[i] : max;
      // Position of the rank inside this bucket, linearly interpolated.
      const double into =
          static_cast<double>(counts[i]) -
          (static_cast<double>(seen) - rank);
      const double frac = into / static_cast<double>(counts[i]);
      const double v = lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
      return std::clamp(v, min, max);
    }
  }
  return max;
}

Histogram::Histogram(BucketLayout layout)
    : layout_(std::move(layout)),
      buckets_(new std::atomic<std::uint64_t>[layout_.size()]) {
  for (std::size_t i = 0; i < layout_.size(); ++i) buckets_[i].store(0);
  min_.store(std::numeric_limits<double>::infinity());
  max_.store(-std::numeric_limits<double>::infinity());
}

void Histogram::record(double v) {
  buckets_[layout_.bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  // fetch_add on atomic<double> (C++20) keeps the sum lock-free too.
  sum_.fetch_add(v, std::memory_order_relaxed);
  double cur = min_.load(std::memory_order_relaxed);
  while (v < cur &&
         !min_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
  cur = max_.load(std::memory_order_relaxed);
  while (v > cur &&
         !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot snap;
  snap.layout = layout_;
  snap.counts.resize(layout_.size());
  for (std::size_t i = 0; i < layout_.size(); ++i) {
    snap.counts[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum = sum_.load(std::memory_order_relaxed);
  if (snap.count == 0) {
    snap.min = 0.0;
    snap.max = 0.0;
  } else {
    snap.min = min_.load(std::memory_order_relaxed);
    snap.max = max_.load(std::memory_order_relaxed);
  }
  return snap;
}

void Histogram::reset() {
  for (std::size_t i = 0; i < layout_.size(); ++i) buckets_[i].store(0);
  count_.store(0);
  sum_.store(0.0);
  min_.store(std::numeric_limits<double>::infinity());
  max_.store(-std::numeric_limits<double>::infinity());
}

Counter& Registry::counter(const std::string& name) {
  const std::scoped_lock lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  const std::scoped_lock lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name, BucketLayout layout) {
  const std::scoped_lock lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(std::move(layout));
  return *slot;
}

RegistrySnapshot Registry::snapshot() const {
  const std::scoped_lock lock(mu_);
  RegistrySnapshot snap;
  for (const auto& [name, c] : counters_) snap.counters[name] = c->value();
  for (const auto& [name, g] : gauges_) snap.gauges[name] = g->value();
  for (const auto& [name, h] : histograms_) {
    snap.histograms[name] = h->snapshot();
  }
  return snap;
}

void Registry::reset() {
  const std::scoped_lock lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

void Registry::write_csv(std::ostream& os) const {
  const RegistrySnapshot snap = snapshot();
  os << "kind,name,count,sum,mean,min,max,p50,p95,p99\n";
  for (const auto& [name, v] : snap.counters) {
    os << "counter," << name << ',' << v << ',' << v << ",,,,,,\n";
  }
  for (const auto& [name, v] : snap.gauges) {
    os << "gauge," << name << ",," << v << ",,,,,,\n";
  }
  for (const auto& [name, h] : snap.histograms) {
    os << "histogram," << name << ',' << h.count << ',' << h.sum << ','
       << h.mean() << ',' << h.min << ',' << h.max << ','
       << h.percentile(50) << ',' << h.percentile(95) << ','
       << h.percentile(99) << '\n';
  }
}

void Registry::write_json(std::ostream& os) const {
  const RegistrySnapshot snap = snapshot();
  os << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, v] : snap.counters) {
    os << (first ? "" : ",") << "\n    \"" << name << "\": " << v;
    first = false;
  }
  os << "\n  },\n  \"gauges\": {";
  first = true;
  for (const auto& [name, v] : snap.gauges) {
    os << (first ? "" : ",") << "\n    \"" << name << "\": " << v;
    first = false;
  }
  os << "\n  },\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : snap.histograms) {
    os << (first ? "" : ",") << "\n    \"" << name << "\": {\"count\": "
       << h.count << ", \"sum\": " << h.sum << ", \"min\": " << h.min
       << ", \"max\": " << h.max << ", \"p50\": " << h.percentile(50)
       << ", \"p95\": " << h.percentile(95) << ", \"bounds\": [";
    for (std::size_t i = 0; i < h.layout.bounds.size(); ++i) {
      os << (i == 0 ? "" : ", ") << h.layout.bounds[i];
    }
    os << "], \"buckets\": [";
    for (std::size_t i = 0; i < h.counts.size(); ++i) {
      os << (i == 0 ? "" : ", ") << h.counts[i];
    }
    os << "]}";
    first = false;
  }
  os << "\n  }\n}\n";
}

}  // namespace tapesim::obs
