// Machine-readable performance reports and the regression comparator.
//
// Every bench binary can emit a `BENCH_<name>.json` (the shared
// `--perf-out` flag): wall-clock, events dispatched, events per wall
// second, peak RSS (getrusage), and the bench's headline *simulated* KPIs.
// Committed baselines under results/perf/ plus `tools/bench_compare` turn
// those files into the repo's performance trajectory: every later kernel,
// allocator, or sweep optimization is measured against them, and CI's
// tier2-perf label fails on regression.
//
// Two kinds of fields, two kinds of thresholds: wall-clock and RSS are
// machine-dependent and get generous relative bands; sim KPIs are
// deterministic given the seed and get a tight band — a KPI drift is a
// behavior change, not noise.
#pragma once

#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace tapesim::obs {

struct PerfReport {
  std::string bench;  ///< short name, e.g. "micro_kernel"
  double wall_s = 0.0;
  std::uint64_t events_dispatched = 0;
  double events_per_s = 0.0;  ///< 0 when the bench has no event loop
  std::uint64_t peak_rss_bytes = 0;
  /// Headline simulated KPIs (deterministic given the seed).
  std::map<std::string, double> kpis;
  /// Optional raw JSON object embedded under "profile" (obs::Profiler
  /// output). Not read back by from_json.
  std::string profile_json;

  void write_json(std::ostream& os) const;
  [[nodiscard]] bool save(const std::string& path) const;
  /// Strict parse; nullopt on malformed input or missing required fields.
  [[nodiscard]] static std::optional<PerfReport> from_json(
      std::string_view text);
  [[nodiscard]] static std::optional<PerfReport> load(
      const std::string& path);
};

/// Peak resident-set size of this process in bytes (getrusage ru_maxrss);
/// 0 on platforms without getrusage.
[[nodiscard]] std::uint64_t peak_rss_bytes();

/// Monotonic stopwatch over std::chrono::steady_clock.
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  void restart() { start_ = std::chrono::steady_clock::now(); }
  [[nodiscard]] double elapsed_s() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Per-field relative regression bands. Wall and RSS tolerate machine
/// noise; the KPI band is float dust only.
struct PerfThresholds {
  double wall_frac = 0.35;  ///< wall_s may grow by up to 35%
  double rss_frac = 0.35;   ///< peak_rss_bytes may grow by up to 35%
  double rate_frac = 0.25;  ///< events_per_s may drop by up to 25%
  double kpi_frac = 1e-6;   ///< sim KPIs: relative drift beyond this fails
};

/// One compared field. `change_frac` is (current - baseline) / baseline
/// (0 when the baseline is 0); `regression` marks a threshold violation.
/// `threshold` is the boundary value in the field's own units that
/// `current` must not cross (a ceiling for wall/RSS, a floor for
/// events/sec, the nearest edge of the drift band for KPIs; 0 for
/// informational fields with no gate).
struct PerfDelta {
  std::string field;
  double baseline = 0.0;
  double current = 0.0;
  double change_frac = 0.0;
  double threshold = 0.0;
  bool regression = false;
  std::string detail;  ///< human-readable verdict for the report line
};

/// Compares `current` against `baseline`, one PerfDelta per field. KPI
/// keys present on only one side are regressions (schema drift hides real
/// changes). `events_dispatched` is informational: it is deterministic, so
/// a change means the workload changed, which the KPI band already flags.
[[nodiscard]] std::vector<PerfDelta> compare_perf(
    const PerfReport& baseline, const PerfReport& current,
    const PerfThresholds& thresholds = {});

/// True when any delta is a regression.
[[nodiscard]] bool has_regression(const std::vector<PerfDelta>& deltas);

}  // namespace tapesim::obs
