// Minimal JSON reader for trace post-processing.
//
// Just enough of RFC 8259 to validate emitted traces and to let the trace
// inspector read its own JSONL back without a third-party dependency:
// objects, arrays, strings (with escapes), numbers, booleans, null. Parsing
// is strict — trailing garbage or malformed input yields nullopt, which is
// exactly what the trace-validity tests assert on.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace tapesim::obs {

class JsonValue {
 public:
  using Object = std::map<std::string, JsonValue>;
  using Array = std::vector<JsonValue>;
  using Storage =
      std::variant<std::nullptr_t, bool, double, std::string, Array, Object>;

  JsonValue() : value_(nullptr) {}
  explicit JsonValue(Storage v) : value_(std::move(v)) {}

  [[nodiscard]] bool is_null() const {
    return std::holds_alternative<std::nullptr_t>(value_);
  }
  [[nodiscard]] bool is_object() const {
    return std::holds_alternative<Object>(value_);
  }
  [[nodiscard]] bool is_array() const {
    return std::holds_alternative<Array>(value_);
  }
  [[nodiscard]] bool is_number() const {
    return std::holds_alternative<double>(value_);
  }
  [[nodiscard]] bool is_string() const {
    return std::holds_alternative<std::string>(value_);
  }

  [[nodiscard]] const Object& object() const {
    return std::get<Object>(value_);
  }
  [[nodiscard]] const Array& array() const { return std::get<Array>(value_); }
  [[nodiscard]] double number() const { return std::get<double>(value_); }
  [[nodiscard]] const std::string& string() const {
    return std::get<std::string>(value_);
  }

  /// Object member access; nullptr when absent or not an object.
  [[nodiscard]] const JsonValue* find(const std::string& key) const;
  /// Convenience: member as number/string with a default.
  [[nodiscard]] double number_or(const std::string& key, double fallback) const;
  [[nodiscard]] std::string string_or(const std::string& key,
                                      std::string fallback) const;

 private:
  Storage value_;
};

/// Parses a complete JSON document. Returns nullopt on any syntax error or
/// trailing non-whitespace.
[[nodiscard]] std::optional<JsonValue> parse_json(std::string_view text);

/// Escapes `s` for embedding inside a JSON string literal (quotes,
/// backslashes, control characters).
[[nodiscard]] std::string escape_json(const std::string& s);

}  // namespace tapesim::obs
