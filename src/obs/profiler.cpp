#include "obs/profiler.hpp"

#include <algorithm>
#include <ostream>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "sim/engine.hpp"

namespace tapesim::obs {

Profiler::~Profiler() { detach(); }

void Profiler::attach(sim::Engine& engine) {
  detach();
  engine_ = &engine;
  engine.set_profile_sink(this);
}

void Profiler::detach() {
  if (engine_ == nullptr) return;
  // Only clear the hook if it is still ours; another profiler may have
  // been installed on the engine since.
  if (engine_->profile_sink() == this) engine_->set_profile_sink(nullptr);
  engine_ = nullptr;
}

void Profiler::on_run_begin(Seconds sim_now) { run_begin_ = sim_now; }

void Profiler::on_run_end(Seconds sim_now, double wall_s,
                          std::uint64_t dispatches) {
  ++runs_;
  run_wall_s_ += wall_s;
  sim_advanced_s_ += (sim_now - run_begin_).count();
  dispatches_ += dispatches;  // exact even when dispatch timing is sampled
}

void Profiler::on_dispatch_done(Seconds /*sim_now*/, const std::string& label,
                                double wall_s, std::size_t queue_depth) {
  ++sampled_dispatches_;
  dispatch_wall_s_ += wall_s;
  queue_high_water_ = std::max(queue_high_water_, queue_depth);
  queue_depth_sum_ += static_cast<double>(queue_depth);
  DispatchStats* stats;
  if (label.empty()) {
    // The hot path schedules unlabeled events; skip the map lookup.
    if (unlabeled_ == nullptr) unlabeled_ = &by_label_[std::string()];
    stats = unlabeled_;
  } else {
    stats = &by_label_[label];
  }
  ++stats->count;
  stats->wall_s += wall_s;
  stats->max_wall_s = std::max(stats->max_wall_s, wall_s);
}

ProfileReport Profiler::report() const {
  ProfileReport r;
  r.dispatches = dispatches_;
  r.runs = runs_;
  r.sample_stride = stride_;
  r.sampled_dispatches = sampled_dispatches_;
  r.dispatch_wall_s = dispatch_wall_s_;
  r.run_wall_s = run_wall_s_;
  r.sim_advanced_s = sim_advanced_s_;
  r.queue_high_water = queue_high_water_;
  r.queue_depth_mean =
      sampled_dispatches_ == 0
          ? 0.0
          : queue_depth_sum_ / static_cast<double>(sampled_dispatches_);
  r.by_label = by_label_;
  return r;
}

void Profiler::reset() {
  dispatches_ = 0;
  sampled_dispatches_ = 0;
  runs_ = 0;
  dispatch_wall_s_ = 0.0;
  run_wall_s_ = 0.0;
  sim_advanced_s_ = 0.0;
  run_begin_ = Seconds{0.0};
  queue_high_water_ = 0;
  queue_depth_sum_ = 0.0;
  by_label_.clear();
  unlabeled_ = nullptr;
}

void Profiler::export_to(Registry& registry) const {
  const ProfileReport r = report();
  registry.counter("profiler.dispatches").inc(r.dispatches);
  registry.counter("profiler.runs").inc(r.runs);
  registry.gauge("profiler.dispatch_wall_s")
      .set(r.estimated_dispatch_wall_s());
  registry.gauge("profiler.run_wall_s").set(r.run_wall_s);
  registry.gauge("profiler.kernel_wall_s").set(r.kernel_wall_s());
  registry.gauge("profiler.sim_advanced_s").set(r.sim_advanced_s);
  registry.gauge("profiler.sim_s_per_wall_s").set(r.sim_s_per_wall_s());
  registry.gauge("profiler.events_per_wall_s").set(r.events_per_wall_s());
  registry.gauge("profiler.queue_depth.high_water")
      .set(static_cast<double>(r.queue_high_water));
  registry.gauge("profiler.queue_depth.mean").set(r.queue_depth_mean);
}

void Profiler::write_json(std::ostream& os) const {
  const ProfileReport r = report();
  os.precision(15);
  os << "{\n"
     << "  \"dispatches\": " << r.dispatches << ",\n"
     << "  \"runs\": " << r.runs << ",\n"
     << "  \"sample_stride\": " << r.sample_stride << ",\n"
     << "  \"sampled_dispatches\": " << r.sampled_dispatches << ",\n"
     << "  \"dispatch_wall_s\": " << r.dispatch_wall_s << ",\n"
     << "  \"estimated_dispatch_wall_s\": " << r.estimated_dispatch_wall_s()
     << ",\n"
     << "  \"run_wall_s\": " << r.run_wall_s << ",\n"
     << "  \"kernel_wall_s\": " << r.kernel_wall_s() << ",\n"
     << "  \"sim_advanced_s\": " << r.sim_advanced_s << ",\n"
     << "  \"sim_s_per_wall_s\": " << r.sim_s_per_wall_s() << ",\n"
     << "  \"events_per_wall_s\": " << r.events_per_wall_s() << ",\n"
     << "  \"queue_depth_high_water\": " << r.queue_high_water << ",\n"
     << "  \"queue_depth_mean\": " << r.queue_depth_mean << ",\n"
     << "  \"by_label\": {";
  bool first = true;
  for (const auto& [label, stats] : r.by_label) {
    os << (first ? "" : ",") << "\n    \""
       << (label.empty() ? "(unlabeled)" : escape_json(label))
       << "\": {\"count\": "
       << stats.count << ", \"wall_s\": " << stats.wall_s
       << ", \"mean_wall_s\": " << stats.mean_wall_s()
       << ", \"max_wall_s\": " << stats.max_wall_s << "}";
    first = false;
  }
  os << "\n  }\n}\n";
}

}  // namespace tapesim::obs
