#include "obs/perf.hpp"

#include <cmath>
#include <fstream>
#include <ostream>
#include <sstream>

#include "obs/json.hpp"
#include "util/log.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace tapesim::obs {

std::uint64_t peak_rss_bytes() {
#if defined(__unix__) || defined(__APPLE__)
  rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<std::uint64_t>(usage.ru_maxrss);  // bytes on macOS
#else
  return static_cast<std::uint64_t>(usage.ru_maxrss) * 1024;  // KiB on Linux
#endif
#else
  return 0;
#endif
}

void PerfReport::write_json(std::ostream& os) const {
  os.precision(15);
  os << "{\n"
     << "  \"bench\": \"" << escape_json(bench) << "\",\n"
     << "  \"wall_s\": " << wall_s << ",\n"
     << "  \"events_dispatched\": " << events_dispatched << ",\n"
     << "  \"events_per_s\": " << events_per_s << ",\n"
     << "  \"peak_rss_bytes\": " << peak_rss_bytes << ",\n"
     << "  \"kpis\": {";
  bool first = true;
  for (const auto& [name, value] : kpis) {
    os << (first ? "" : ",") << "\n    \"" << escape_json(name)
       << "\": " << value;
    first = false;
  }
  os << "\n  }";
  if (!profile_json.empty()) {
    os << ",\n  \"profile\": " << profile_json;
  }
  os << "\n}\n";
}

bool PerfReport::save(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    TAPESIM_LOG(kWarn) << "cannot open perf output file: " << path;
    return false;
  }
  write_json(out);
  return static_cast<bool>(out);
}

std::optional<PerfReport> PerfReport::from_json(std::string_view text) {
  const auto value = parse_json(text);
  if (!value || !value->is_object()) return std::nullopt;
  const JsonValue* bench = value->find("bench");
  const JsonValue* wall = value->find("wall_s");
  const JsonValue* kpis = value->find("kpis");
  if (bench == nullptr || !bench->is_string()) return std::nullopt;
  if (wall == nullptr || !wall->is_number()) return std::nullopt;
  if (kpis == nullptr || !kpis->is_object()) return std::nullopt;
  PerfReport report;
  report.bench = bench->string();
  report.wall_s = wall->number();
  report.events_dispatched =
      static_cast<std::uint64_t>(value->number_or("events_dispatched", 0.0));
  report.events_per_s = value->number_or("events_per_s", 0.0);
  report.peak_rss_bytes =
      static_cast<std::uint64_t>(value->number_or("peak_rss_bytes", 0.0));
  for (const auto& [name, v] : kpis->object()) {
    if (!v.is_number()) return std::nullopt;
    report.kpis[name] = v.number();
  }
  return report;
}

std::optional<PerfReport> PerfReport::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return from_json(buffer.str());
}

namespace {

double change_frac(double baseline, double current) {
  return baseline != 0.0 ? (current - baseline) / baseline : 0.0;
}

PerfDelta scalar_delta(const std::string& field, double baseline,
                       double current) {
  PerfDelta d;
  d.field = field;
  d.baseline = baseline;
  d.current = current;
  d.change_frac = change_frac(baseline, current);
  return d;
}

std::string pct(double frac) {
  std::ostringstream os;
  os.precision(3);
  os << frac * 100.0 << "%";
  return os.str();
}

}  // namespace

std::vector<PerfDelta> compare_perf(const PerfReport& baseline,
                                    const PerfReport& current,
                                    const PerfThresholds& thresholds) {
  std::vector<PerfDelta> deltas;

  {
    PerfDelta d = scalar_delta("wall_s", baseline.wall_s, current.wall_s);
    d.threshold = baseline.wall_s * (1.0 + thresholds.wall_frac);
    d.regression = baseline.wall_s > 0.0 && current.wall_s > d.threshold;
    d.detail = d.regression
                   ? "slower by " + pct(d.change_frac) + " (limit +" +
                         pct(thresholds.wall_frac) + ")"
                   : "within +" + pct(thresholds.wall_frac);
    deltas.push_back(std::move(d));
  }
  {
    PerfDelta d = scalar_delta("events_dispatched",
                               static_cast<double>(baseline.events_dispatched),
                               static_cast<double>(current.events_dispatched));
    d.detail = "informational (deterministic; drift shows up in KPIs)";
    deltas.push_back(std::move(d));
  }
  {
    PerfDelta d = scalar_delta("events_per_s", baseline.events_per_s,
                               current.events_per_s);
    d.threshold = baseline.events_per_s * (1.0 - thresholds.rate_frac);
    d.regression = baseline.events_per_s > 0.0 &&
                   current.events_per_s < d.threshold;
    d.detail = d.regression
                   ? "throughput down " + pct(-d.change_frac) + " (limit -" +
                         pct(thresholds.rate_frac) + ")"
                   : "within -" + pct(thresholds.rate_frac);
    deltas.push_back(std::move(d));
  }
  {
    PerfDelta d = scalar_delta("peak_rss_bytes",
                               static_cast<double>(baseline.peak_rss_bytes),
                               static_cast<double>(current.peak_rss_bytes));
    d.threshold = static_cast<double>(baseline.peak_rss_bytes) *
                  (1.0 + thresholds.rss_frac);
    d.regression = baseline.peak_rss_bytes > 0 &&
                   static_cast<double>(current.peak_rss_bytes) > d.threshold;
    d.detail = d.regression
                   ? "RSS up " + pct(d.change_frac) + " (limit +" +
                         pct(thresholds.rss_frac) + ")"
                   : "within +" + pct(thresholds.rss_frac);
    deltas.push_back(std::move(d));
  }

  for (const auto& [name, base_value] : baseline.kpis) {
    const auto it = current.kpis.find(name);
    PerfDelta d;
    d.field = "kpi." + name;
    d.baseline = base_value;
    if (it == current.kpis.end()) {
      d.threshold = base_value;  // nothing short of the exact value passes
      d.regression = true;
      d.detail = "KPI missing from current report";
      deltas.push_back(std::move(d));
      continue;
    }
    d.current = it->second;
    d.change_frac = change_frac(base_value, d.current);
    const double scale = std::max(std::abs(base_value), std::abs(d.current));
    const double drift =
        scale > 0.0 ? std::abs(d.current - base_value) / scale : 0.0;
    // The drift band is two-sided; report the edge on the side the
    // current value moved toward.
    d.threshold = d.current >= base_value
                      ? base_value + thresholds.kpi_frac * scale
                      : base_value - thresholds.kpi_frac * scale;
    d.regression = drift > thresholds.kpi_frac;
    d.detail = d.regression ? "deterministic KPI drifted (relative " +
                                  pct(drift) + ")"
                            : "deterministic KPI unchanged";
    deltas.push_back(std::move(d));
  }
  for (const auto& [name, value] : current.kpis) {
    if (baseline.kpis.count(name) != 0) continue;
    PerfDelta d;
    d.field = "kpi." + name;
    d.current = value;
    d.regression = true;
    d.detail = "KPI missing from baseline (schema drift; re-baseline)";
    deltas.push_back(std::move(d));
  }
  return deltas;
}

bool has_regression(const std::vector<PerfDelta>& deltas) {
  for (const PerfDelta& d : deltas) {
    if (d.regression) return true;
  }
  return false;
}

}  // namespace tapesim::obs
