#include "obs/json.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace tapesim::obs {
namespace {

/// Recursive-descent parser over a string_view with a cursor.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<JsonValue> parse_document() {
    skip_ws();
    auto v = parse_value();
    if (!v) return std::nullopt;
    skip_ws();
    if (pos_ != text_.size()) return std::nullopt;  // trailing garbage
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  [[nodiscard]] bool at(char c) const {
    return pos_ < text_.size() && text_[pos_] == c;
  }

  bool consume(char c) {
    if (!at(c)) return false;
    ++pos_;
    return true;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  std::optional<JsonValue> parse_value() {
    if (pos_ >= text_.size()) return std::nullopt;
    switch (text_[pos_]) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        auto s = parse_string();
        if (!s) return std::nullopt;
        return JsonValue{JsonValue::Storage{std::move(*s)}};
      }
      case 't':
        if (!consume_literal("true")) return std::nullopt;
        return JsonValue{JsonValue::Storage{true}};
      case 'f':
        if (!consume_literal("false")) return std::nullopt;
        return JsonValue{JsonValue::Storage{false}};
      case 'n':
        if (!consume_literal("null")) return std::nullopt;
        return JsonValue{JsonValue::Storage{nullptr}};
      default: return parse_number();
    }
  }

  std::optional<JsonValue> parse_object() {
    if (!consume('{')) return std::nullopt;
    JsonValue::Object members;
    skip_ws();
    if (consume('}')) return JsonValue{JsonValue::Storage{std::move(members)}};
    while (true) {
      skip_ws();
      auto key = parse_string();
      if (!key) return std::nullopt;
      skip_ws();
      if (!consume(':')) return std::nullopt;
      skip_ws();
      auto value = parse_value();
      if (!value) return std::nullopt;
      members.emplace(std::move(*key), std::move(*value));
      skip_ws();
      if (consume(',')) continue;
      if (consume('}')) break;
      return std::nullopt;
    }
    return JsonValue{JsonValue::Storage{std::move(members)}};
  }

  std::optional<JsonValue> parse_array() {
    if (!consume('[')) return std::nullopt;
    JsonValue::Array items;
    skip_ws();
    if (consume(']')) return JsonValue{JsonValue::Storage{std::move(items)}};
    while (true) {
      skip_ws();
      auto value = parse_value();
      if (!value) return std::nullopt;
      items.push_back(std::move(*value));
      skip_ws();
      if (consume(',')) continue;
      if (consume(']')) break;
      return std::nullopt;
    }
    return JsonValue{JsonValue::Storage{std::move(items)}};
  }

  std::optional<std::string> parse_string() {
    if (!consume('"')) return std::nullopt;
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) return std::nullopt;
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          case 'u': {
            // \uXXXX — validated but emitted as '?' (traces are ASCII).
            if (pos_ + 4 > text_.size()) return std::nullopt;
            for (int i = 0; i < 4; ++i) {
              if (std::isxdigit(
                      static_cast<unsigned char>(text_[pos_ + static_cast<std::size_t>(i)])) == 0) {
                return std::nullopt;
              }
            }
            pos_ += 4;
            out.push_back('?');
            break;
          }
          default: return std::nullopt;
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return std::nullopt;  // raw control character
      } else {
        out.push_back(c);
      }
    }
    return std::nullopt;  // unterminated
  }

  std::optional<JsonValue> parse_number() {
    const std::size_t start = pos_;
    if (consume('-')) {
    }
    if (pos_ >= text_.size() ||
        std::isdigit(static_cast<unsigned char>(text_[pos_])) == 0) {
      return std::nullopt;
    }
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
    if (consume('.')) {
      if (pos_ >= text_.size() ||
          std::isdigit(static_cast<unsigned char>(text_[pos_])) == 0) {
        return std::nullopt;
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0) {
        ++pos_;
      }
    }
    if (at('e') || at('E')) {
      ++pos_;
      if (at('+') || at('-')) ++pos_;
      if (pos_ >= text_.size() ||
          std::isdigit(static_cast<unsigned char>(text_[pos_])) == 0) {
        return std::nullopt;
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0) {
        ++pos_;
      }
    }
    const std::string token{text_.substr(start, pos_ - start)};
    return JsonValue{JsonValue::Storage{std::strtod(token.c_str(), nullptr)}};
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

const JsonValue* JsonValue::find(const std::string& key) const {
  if (!is_object()) return nullptr;
  const auto it = object().find(key);
  return it == object().end() ? nullptr : &it->second;
}

double JsonValue::number_or(const std::string& key, double fallback) const {
  const JsonValue* v = find(key);
  return v != nullptr && v->is_number() ? v->number() : fallback;
}

std::string JsonValue::string_or(const std::string& key,
                                 std::string fallback) const {
  const JsonValue* v = find(key);
  return v != nullptr && v->is_string() ? v->string() : fallback;
}

std::optional<JsonValue> parse_json(std::string_view text) {
  return Parser{text}.parse_document();
}

std::string escape_json(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace tapesim::obs
