// Result presentation: fixed-width console tables (the shape the paper's
// figures are reported in) and CSV emission for external plotting.
#pragma once

#include <iosfwd>
#include <string>
#include <type_traits>
#include <vector>

namespace tapesim {

/// Collects rows of stringly-typed cells and renders them either as an
/// aligned monospace table (for terminal output) or CSV (for plotting).
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Appends a row; must match the header arity.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats arbitrary streamable values into a row.
  template <typename... Ts>
  void add(const Ts&... values) {
    add_row({format_cell(values)...});
  }

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }
  [[nodiscard]] std::size_t columns() const { return headers_.size(); }

  /// Renders with column alignment and a header rule.
  void print(std::ostream& os) const;
  /// Renders RFC-4180-ish CSV (quotes cells containing commas/quotes).
  void print_csv(std::ostream& os) const;
  /// Writes CSV to a file path; throws std::runtime_error on I/O failure.
  void save_csv(const std::string& path) const;

  [[nodiscard]] std::string to_string() const;

  /// Formats a double with fixed precision, trimming trailing zeros.
  static std::string num(double v, int precision = 3);

 private:
  template <typename T>
  static std::string format_cell(const T& v);

  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace tapesim

#include <sstream>

namespace tapesim {

template <typename T>
std::string Table::format_cell(const T& v) {
  if constexpr (std::is_same_v<T, std::string>) {
    return v;
  } else if constexpr (std::is_convertible_v<T, const char*>) {
    return std::string{v};
  } else if constexpr (std::is_floating_point_v<T>) {
    return num(static_cast<double>(v));
  } else {
    std::ostringstream ss;
    ss << v;
    return ss.str();
  }
}

}  // namespace tapesim
