// Deterministic pseudo-random number generation.
//
// Every experiment in the reproduction is seeded, so results are exactly
// repeatable run-to-run and across platforms. We implement xoshiro256**
// (Blackman & Vigna) seeded through splitmix64, rather than relying on
// std::mt19937 whose distributions are not portable across standard
// libraries. All distribution code in distributions.hpp builds on this
// generator only.
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <string_view>

namespace tapesim {

/// splitmix64 step — used for seeding and for cheap hash mixing.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// xoshiro256** 1.0 — fast, high-quality, 2^256-1 period.
/// Satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four state words from splitmix64(seed); a zero seed is fine.
  constexpr explicit Rng(std::uint64_t seed = 0x8000000000000001ULL) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1) with 53 bits of precision.
  constexpr double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  constexpr double uniform(double lo, double hi) {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t uniform_below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t uniform_in(std::uint64_t lo, std::uint64_t hi) {
    return lo + uniform_below(hi - lo + 1);
  }

  /// Derives an independent generator for a named substream. Substreams with
  /// different tags never correlate; used to decouple e.g. size generation
  /// from request sampling so changing one leaves the other unchanged.
  [[nodiscard]] Rng fork(std::uint64_t tag) const;

  /// fork() addressed by name: `rng.split("fault")` and `rng.split("workload")`
  /// are independent, reproducible substreams of the same master seed, so
  /// adding draws to one stream never perturbs the others. The name is
  /// hashed (FNV-1a); like fork(), the result depends on how much of the
  /// parent has been consumed — split from a freshly seeded parent when the
  /// substream must be stable across call sites.
  [[nodiscard]] Rng split(std::string_view name) const;

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

/// Fisher–Yates shuffle using our portable generator.
template <typename Vec>
void shuffle(Vec& v, Rng& rng) {
  for (std::size_t i = v.size(); i > 1; --i) {
    const std::size_t j = static_cast<std::size_t>(rng.uniform_below(i));
    using std::swap;
    swap(v[i - 1], v[j]);
  }
}

}  // namespace tapesim
