#include "util/table.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "util/assert.hpp"

namespace tapesim {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  TAPESIM_ASSERT_MSG(!headers_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  TAPESIM_ASSERT_MSG(cells.size() == headers_.size(),
                     "row arity must match header arity");
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : "  ");
      os << row[c];
      for (std::size_t pad = row[c].size(); pad < widths[c]; ++pad) os << ' ';
    }
    os << '\n';
  };

  emit_row(headers_);
  std::size_t total = 0;
  for (const std::size_t w : widths) total += w + 2;
  for (std::size_t i = 0; i + 2 < total; ++i) os << '-';
  os << '\n';
  for (const auto& row : rows_) emit_row(row);
}

void Table::print_csv(std::ostream& os) const {
  auto emit_cell = [&](const std::string& cell) {
    if (cell.find_first_of(",\"\n") != std::string::npos) {
      os << '"';
      for (const char ch : cell) {
        if (ch == '"') os << '"';
        os << ch;
      }
      os << '"';
    } else {
      os << cell;
    }
  };
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) os << ',';
      emit_cell(row[c]);
    }
    os << '\n';
  };
  emit_row(headers_);
  for (const auto& row : rows_) emit_row(row);
}

void Table::save_csv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open for writing: " + path);
  print_csv(out);
  if (!out) throw std::runtime_error("write failed: " + path);
}

std::string Table::to_string() const {
  std::ostringstream ss;
  print(ss);
  return ss.str();
}

std::string Table::num(double v, int precision) {
  if (std::isnan(v)) return "nan";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  std::string s{buf};
  if (s.find('.') != std::string::npos) {
    while (s.back() == '0') s.pop_back();
    if (s.back() == '.') s.pop_back();
  }
  return s;
}

}  // namespace tapesim
