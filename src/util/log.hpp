// Minimal leveled logging.
//
// The simulator is a library first: logging defaults to warnings-and-above
// on stderr and is globally adjustable. Trace-level output narrates every
// simulation event, which the tests use to diagnose scheduling regressions.
//
// When a simulation clock is registered (set_log_time_provider), every
// emitted line carries a consistent `t=<seconds>` prefix, so narration can
// be correlated with trace spans. When a log hook is installed (the
// observability layer does this when a tracer binds an engine), trace- and
// debug-level narration is routed through the hook *instead of* stderr —
// one source of truth for event narration; warnings and errors go to both.
#pragma once

#include <functional>
#include <sstream>
#include <string>

namespace tapesim {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

namespace log_detail {
// Inline variable so log_enabled() compiles to a load+compare — the check
// sits on the engine's per-event dispatch path.
inline LogLevel g_threshold = LogLevel::kWarn;
inline LogLevel& threshold() { return g_threshold; }
void emit(LogLevel level, const std::string& message);
}  // namespace log_detail

/// Sets the global log threshold; returns the previous value.
LogLevel set_log_level(LogLevel level);
[[nodiscard]] LogLevel log_level();

/// Receives every emitted message: (level, simulation time or NaN, text).
using LogHook = std::function<void(LogLevel, double, const std::string&)>;

/// Installs/clears the narration hook. Pass an empty function to clear.
void set_log_hook(LogHook hook);
/// Installs/clears the simulation clock used for the timestamp prefix.
void set_log_time_provider(std::function<double()> provider);

/// True if a message at `level` would currently be emitted.
[[nodiscard]] inline bool log_enabled(LogLevel level) {
  return level >= log_detail::threshold();
}

/// Stream-style logging: TAPESIM_LOG(kDebug) << "x=" << x;
/// Arguments are not evaluated when the level is filtered out.
#define TAPESIM_LOG(level)                                      \
  if (!::tapesim::log_enabled(::tapesim::LogLevel::level)) {    \
  } else                                                        \
    ::tapesim::LogLine { ::tapesim::LogLevel::level }

/// One log statement; flushes on destruction.
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() { log_detail::emit(level_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace tapesim
