// Recoverable error reporting for user-facing configuration.
//
// Invariant violations inside the simulator abort via TAPESIM_ASSERT — they
// are logic bugs. Malformed *input* (experiment configs, hardware specs,
// fault models) is a user error and must fail gracefully: validation
// routines return a Status carrying a human-readable message instead of
// aborting, and the throwing validate() wrappers exist only for callers
// that prefer exceptions at construction boundaries.
#pragma once

#include <string>
#include <utility>

namespace tapesim {

/// Result of a validation or other recoverable operation: success, or an
/// error with a message describing what was wrong with the input.
class [[nodiscard]] Status {
 public:
  /// Default-constructed Status is success.
  Status() = default;

  /// Creates a failed status with a descriptive message.
  static Status failure(std::string message) {
    Status s;
    s.ok_ = false;
    s.message_ = std::move(message);
    return s;
  }

  [[nodiscard]] bool ok() const { return ok_; }
  explicit operator bool() const { return ok_; }
  /// Empty on success; the first violation found otherwise.
  [[nodiscard]] const std::string& message() const { return message_; }

 private:
  bool ok_ = true;
  std::string message_;
};

/// Validation helper: builds "<subject>: <what>" failures and keeps only
/// the first one, so validators read as a flat list of require() calls.
class StatusBuilder {
 public:
  explicit StatusBuilder(std::string subject) : subject_(std::move(subject)) {}

  /// Records a failure (first one wins) unless `ok` holds.
  void require(bool ok, const char* what) {
    if (ok || !status_.ok()) return;
    status_ = Status::failure(subject_ + ": " + what);
  }

  /// Adopts the first failure of a nested validator, if any.
  void merge(const Status& nested) {
    if (!status_.ok() || nested.ok()) return;
    status_ = nested;
  }

  [[nodiscard]] Status take() { return std::move(status_); }

 private:
  std::string subject_;
  Status status_;
};

}  // namespace tapesim
