// Summary statistics for experiment aggregation.
//
// Welford's online algorithm for numerically stable mean/variance, plus a
// sample container for percentiles and Student-t confidence intervals over
// replicated experiment runs.
#pragma once

#include <cstddef>
#include <vector>

namespace tapesim {

/// Streaming mean/variance/min/max accumulator (Welford).
class RunningStats {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ > 0 ? mean_ : 0.0; }
  [[nodiscard]] double variance() const;  ///< Sample variance (n-1).
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }
  [[nodiscard]] double sum() const { return sum_; }

  /// Merges another accumulator (parallel reduction — Chan et al.).
  void merge(const RunningStats& other);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Retains all samples; supports percentiles and confidence intervals.
class SampleSet {
 public:
  void add(double x);
  void reserve(std::size_t n) { samples_.reserve(n); }

  [[nodiscard]] std::size_t count() const { return samples_.size(); }
  [[nodiscard]] double mean() const { return stats_.mean(); }
  [[nodiscard]] double stddev() const { return stats_.stddev(); }
  [[nodiscard]] double min() const { return stats_.min(); }
  [[nodiscard]] double max() const { return stats_.max(); }
  [[nodiscard]] double sum() const { return stats_.sum(); }

  /// Linear-interpolated percentile, p in [0, 100]. An empty set reports
  /// 0 (n = 1 reports the sample) so small shed-survivor sets are safe.
  [[nodiscard]] double percentile(double p) const;
  [[nodiscard]] double median() const { return percentile(50.0); }

  /// Half-width of the ~95% confidence interval on the mean
  /// (normal approximation; adequate for the >=30 samples we aggregate).
  [[nodiscard]] double ci95_halfwidth() const;

  [[nodiscard]] const std::vector<double>& samples() const { return samples_; }

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
  RunningStats stats_;
};

}  // namespace tapesim
