// Always-on invariant checking.
//
// The simulator's correctness argument rests on accounting identities
// (e.g. response time >= seek + transfer of every drive). These checks are
// cheap relative to event processing, so they stay enabled in release
// builds; violations indicate a logic bug, never a user error, and abort
// with a location message.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace tapesim::detail {

[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const char* msg) {
  std::fprintf(stderr, "tapesim invariant violated: %s\n  at %s:%d\n  %s\n",
               expr, file, line, msg != nullptr ? msg : "");
  std::abort();
}

}  // namespace tapesim::detail

#define TAPESIM_ASSERT(expr)                                              \
  do {                                                                    \
    if (!(expr)) {                                                        \
      ::tapesim::detail::assert_fail(#expr, __FILE__, __LINE__, nullptr); \
    }                                                                     \
  } while (false)

#define TAPESIM_ASSERT_MSG(expr, msg)                                  \
  do {                                                                 \
    if (!(expr)) {                                                     \
      ::tapesim::detail::assert_fail(#expr, __FILE__, __LINE__, msg);  \
    }                                                                  \
  } while (false)
