#include "util/log.hpp"

#include <cmath>
#include <cstdio>
#include <limits>
#include <mutex>
#include <utility>

namespace tapesim {
namespace log_detail {
namespace {

std::mutex& mutex() {
  static std::mutex mu;
  return mu;
}

LogHook& hook() {
  static LogHook h;
  return h;
}

std::function<double()>& time_provider() {
  static std::function<double()> p;
  return p;
}

}  // namespace

void emit(LogLevel level, const std::string& message) {
  static constexpr const char* kNames[] = {"TRACE", "DEBUG", "INFO",
                                           "WARN", "ERROR", "OFF"};
  const std::scoped_lock lock(mutex());
  const double sim_time = time_provider()
                              ? time_provider()()
                              : std::numeric_limits<double>::quiet_NaN();
  if (hook()) {
    hook()(level, sim_time, message);
    // Narration is the hook's to own; operator-facing levels still print.
    if (level <= LogLevel::kDebug) return;
  }
  if (std::isnan(sim_time)) {
    std::fprintf(stderr, "[tapesim %s] %s\n",
                 kNames[static_cast<int>(level)], message.c_str());
  } else {
    std::fprintf(stderr, "[tapesim %s t=%.6fs] %s\n",
                 kNames[static_cast<int>(level)], sim_time, message.c_str());
  }
}

}  // namespace log_detail

LogLevel set_log_level(LogLevel level) {
  LogLevel prev = log_detail::threshold();
  log_detail::threshold() = level;
  return prev;
}

LogLevel log_level() { return log_detail::threshold(); }

void set_log_hook(LogHook hook) {
  const std::scoped_lock lock(log_detail::mutex());
  log_detail::hook() = std::move(hook);
}

void set_log_time_provider(std::function<double()> provider) {
  const std::scoped_lock lock(log_detail::mutex());
  log_detail::time_provider() = std::move(provider);
}

}  // namespace tapesim
