#include "util/log.hpp"

#include <cstdio>
#include <mutex>

namespace tapesim {
namespace log_detail {

LogLevel& threshold() {
  static LogLevel level = LogLevel::kWarn;
  return level;
}

void emit(LogLevel level, const std::string& message) {
  static std::mutex mu;
  static constexpr const char* kNames[] = {"TRACE", "DEBUG", "INFO",
                                           "WARN", "ERROR", "OFF"};
  const std::scoped_lock lock(mu);
  std::fprintf(stderr, "[tapesim %s] %s\n",
               kNames[static_cast<int>(level)], message.c_str());
}

}  // namespace log_detail

LogLevel set_log_level(LogLevel level) {
  LogLevel prev = log_detail::threshold();
  log_detail::threshold() = level;
  return prev;
}

LogLevel log_level() { return log_detail::threshold(); }

}  // namespace tapesim
