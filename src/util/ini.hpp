// A minimal INI reader for experiment configuration files.
//
// Grammar: optional `[section]` headers, `key = value` pairs, `#` or `;`
// comments, blank lines. Keys are flattened to `section.key` (keys before
// any header keep their bare name). Values stay strings; typed accessors
// parse on demand. Used by the CLI's --config flag so whole experiment
// setups can be versioned alongside their results.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <optional>
#include <string>

namespace tapesim {

class IniFile {
 public:
  /// Parses from a stream; throws std::runtime_error with the line number
  /// on malformed input.
  [[nodiscard]] static IniFile parse(std::istream& in);
  /// Parses a file; throws std::runtime_error if unreadable.
  [[nodiscard]] static IniFile load(const std::string& path);

  [[nodiscard]] bool has(const std::string& key) const {
    return values_.count(key) != 0;
  }
  [[nodiscard]] std::optional<std::string> get(const std::string& key) const;
  [[nodiscard]] std::string get_or(const std::string& key,
                                   const std::string& fallback) const;
  /// Typed accessors; throw std::runtime_error when present but malformed.
  [[nodiscard]] double number_or(const std::string& key,
                                 double fallback) const;
  [[nodiscard]] std::int64_t integer_or(const std::string& key,
                                        std::int64_t fallback) const;
  [[nodiscard]] bool flag_or(const std::string& key, bool fallback) const;

  [[nodiscard]] const std::map<std::string, std::string>& values() const {
    return values_;
  }

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace tapesim
