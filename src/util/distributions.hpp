// Sampling distributions used by the workload model (Section 6 of the
// paper): power-law (bounded Pareto) object sizes and objects-per-request
// counts, and Zipf request popularity P_r = c * r^-alpha.
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace tapesim {

/// Bounded Pareto (continuous power law) on [lo, hi] with shape `alpha > 0`.
///
/// Density f(x) ∝ x^-(alpha+1), truncated and renormalized to [lo, hi].
/// Sampled by inverting the CDF. The paper's "object size follows a power
/// law distribution within a pre-defined range" maps directly onto this.
class BoundedParetoDistribution {
 public:
  BoundedParetoDistribution(double lo, double hi, double alpha);

  [[nodiscard]] double sample(Rng& rng) const;

  /// Analytic mean of the truncated distribution (used by the workload
  /// builder to hit a target average request size).
  [[nodiscard]] double mean() const;

  [[nodiscard]] double lo() const { return lo_; }
  [[nodiscard]] double hi() const { return hi_; }
  [[nodiscard]] double alpha() const { return alpha_; }

 private:
  double lo_;
  double hi_;
  double alpha_;
};

/// Finite Zipf distribution over ranks 1..n: P(r) = c * r^-alpha.
///
/// alpha = 0 is uniform; alpha = 1 is the most skewed setting the paper
/// uses. Sampling is O(1) via the alias method built once in the
/// constructor; probabilities() exposes the exact normalized masses so the
/// placement stage can use the same popularity model the sampler draws from.
class ZipfDistribution {
 public:
  ZipfDistribution(std::size_t n, double alpha);

  /// Rank in [0, n), rank 0 being the most popular.
  [[nodiscard]] std::size_t sample(Rng& rng) const;

  [[nodiscard]] const std::vector<double>& probabilities() const {
    return probs_;
  }
  [[nodiscard]] std::size_t size() const { return probs_.size(); }
  [[nodiscard]] double alpha() const { return alpha_; }

 private:
  double alpha_;
  std::vector<double> probs_;
  // Walker alias tables.
  std::vector<double> accept_;
  std::vector<std::uint32_t> alias_;
};

/// General discrete distribution over arbitrary weights (alias method).
/// Used wherever we need to draw by externally supplied probabilities.
class DiscreteDistribution {
 public:
  explicit DiscreteDistribution(const std::vector<double>& weights);

  [[nodiscard]] std::size_t sample(Rng& rng) const;
  [[nodiscard]] const std::vector<double>& probabilities() const {
    return probs_;
  }
  [[nodiscard]] std::size_t size() const { return probs_.size(); }

 private:
  std::vector<double> probs_;
  std::vector<double> accept_;
  std::vector<std::uint32_t> alias_;
};

/// Draws `k` distinct indices uniformly from [0, n) (Floyd's algorithm).
/// The paper picks the objects of each request "randomly" from the 30,000.
[[nodiscard]] std::vector<std::uint32_t> sample_without_replacement(
    std::uint32_t n, std::uint32_t k, Rng& rng);

/// Exponential variate with the given mean (inverse-CDF method). Used by
/// the fault model for MTBF/MTTR interarrival draws. `mean` must be > 0.
[[nodiscard]] double sample_exponential(Rng& rng, double mean);

}  // namespace tapesim
