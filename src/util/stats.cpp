#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace tapesim {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  // Welford's m2 can drift a hair below zero for all-equal (or nearly
  // equal) samples; clamping keeps stddev() from returning NaN.
  return std::max(0.0, m2_ / static_cast<double>(n_ - 1));
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void SampleSet::add(double x) {
  if (!samples_.empty() && x < samples_.back()) sorted_ = false;
  samples_.push_back(x);
  stats_.add(x);
}

double SampleSet::percentile(double p) const {
  // Shed-survivor sets can legitimately be empty (every request dropped);
  // report 0 rather than aborting the bench that asks for their p99.
  if (samples_.empty()) return 0.0;
  TAPESIM_ASSERT(p >= 0.0 && p <= 100.0);
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  if (samples_.size() == 1) return samples_.front();
  const double rank =
      p / 100.0 * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

double SampleSet::ci95_halfwidth() const {
  if (samples_.size() < 2) return 0.0;
  return 1.96 * stats_.stddev() /
         std::sqrt(static_cast<double>(samples_.size()));
}

}  // namespace tapesim
