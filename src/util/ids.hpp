// Strongly typed integral identifiers.
//
// The simulator juggles several id spaces (objects, requests, tapes, drives,
// libraries, clusters). Using a distinct type per space turns accidental
// cross-space assignments into compile errors (Core Guidelines P.1/I.4).
#pragma once

#include <compare>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <ostream>

namespace tapesim {

/// A strongly typed wrapper around a 32-bit index. `Tag` is a phantom type
/// that makes each instantiation a distinct, non-convertible type.
template <typename Tag>
class StrongId {
 public:
  using value_type = std::uint32_t;

  /// Sentinel for "no id". Default-constructed ids are invalid.
  static constexpr value_type kInvalid = static_cast<value_type>(-1);

  constexpr StrongId() = default;
  constexpr explicit StrongId(value_type v) : value_(v) {}

  [[nodiscard]] constexpr value_type value() const { return value_; }
  [[nodiscard]] constexpr bool valid() const { return value_ != kInvalid; }

  /// Convenience for indexing into dense per-id vectors.
  [[nodiscard]] constexpr std::size_t index() const {
    return static_cast<std::size_t>(value_);
  }

  friend constexpr auto operator<=>(StrongId, StrongId) = default;

 private:
  value_type value_ = kInvalid;
};

template <typename Tag>
std::ostream& operator<<(std::ostream& os, StrongId<Tag> id) {
  if (!id.valid()) return os << "<invalid>";
  return os << id.value();
}

struct ObjectIdTag {};
struct RequestIdTag {};
struct TapeIdTag {};
struct DriveIdTag {};
struct LibraryIdTag {};
struct ClusterIdTag {};

/// Identifies a data object to be placed on tape.
using ObjectId = StrongId<ObjectIdTag>;
/// Identifies one of the predefined retrieval requests.
using RequestId = StrongId<RequestIdTag>;
/// Identifies a tape cartridge, globally across all libraries.
using TapeId = StrongId<TapeIdTag>;
/// Identifies a tape drive, globally across all libraries.
using DriveId = StrongId<DriveIdTag>;
/// Identifies a tape library (one robot, d drives, t tapes).
using LibraryId = StrongId<LibraryIdTag>;
/// Identifies an object cluster produced by the clustering stage.
using ClusterId = StrongId<ClusterIdTag>;

/// User-facing request class for overload protection. Under pressure the
/// shedder drops kBatch work before kForeground work; ordering is by the
/// underlying value, higher = more important.
enum class Priority : std::uint8_t {
  kBatch = 0,       ///< Bulk restores, migrations: sheddable first.
  kForeground = 1,  ///< Interactive restores: shed only as a last resort.
};

[[nodiscard]] constexpr const char* to_string(Priority p) {
  return p == Priority::kBatch ? "batch" : "foreground";
}

}  // namespace tapesim

namespace std {
template <typename Tag>
struct hash<tapesim::StrongId<Tag>> {
  size_t operator()(tapesim::StrongId<Tag> id) const noexcept {
    return std::hash<typename tapesim::StrongId<Tag>::value_type>{}(id.value());
  }
};
}  // namespace std
