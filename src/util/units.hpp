// Physical unit types used throughout the simulator.
//
// Sizes and positions on tape are exact integral byte counts; simulated time
// is a double in seconds (the discrete-event kernel needs a continuous
// axis). Bandwidth ties the two together. Keeping these as distinct types
// documents every interface and prevents seconds/bytes mixups.
#pragma once

#include <cmath>
#include <compare>
#include <cstdint>
#include <ostream>
#include <string>

namespace tapesim {

/// An exact byte count (object size, tape offset, capacity).
class Bytes {
 public:
  using value_type = std::uint64_t;

  constexpr Bytes() = default;
  constexpr explicit Bytes(value_type v) : value_(v) {}

  [[nodiscard]] constexpr value_type count() const { return value_; }
  [[nodiscard]] constexpr double as_double() const {
    return static_cast<double>(value_);
  }
  [[nodiscard]] constexpr double megabytes() const {
    return as_double() / 1.0e6;
  }
  [[nodiscard]] constexpr double gigabytes() const {
    return as_double() / 1.0e9;
  }

  friend constexpr auto operator<=>(Bytes, Bytes) = default;

  constexpr Bytes& operator+=(Bytes o) {
    value_ += o.value_;
    return *this;
  }
  constexpr Bytes& operator-=(Bytes o) {
    value_ -= o.value_;
    return *this;
  }
  friend constexpr Bytes operator+(Bytes a, Bytes b) {
    return Bytes{a.value_ + b.value_};
  }
  friend constexpr Bytes operator-(Bytes a, Bytes b) {
    return Bytes{a.value_ - b.value_};
  }

  /// Absolute distance between two tape positions.
  [[nodiscard]] static constexpr Bytes distance(Bytes a, Bytes b) {
    return a.value_ >= b.value_ ? a - b : b - a;
  }

 private:
  value_type value_ = 0;
};

constexpr Bytes operator""_B(unsigned long long v) { return Bytes{v}; }
constexpr Bytes operator""_KB(unsigned long long v) { return Bytes{v * 1000ULL}; }
constexpr Bytes operator""_MB(unsigned long long v) {
  return Bytes{v * 1000ULL * 1000ULL};
}
constexpr Bytes operator""_GB(unsigned long long v) {
  return Bytes{v * 1000ULL * 1000ULL * 1000ULL};
}

/// Simulated time in seconds. Continuous; never negative in practice.
class Seconds {
 public:
  constexpr Seconds() = default;
  constexpr explicit Seconds(double v) : value_(v) {}

  [[nodiscard]] constexpr double count() const { return value_; }

  friend constexpr auto operator<=>(Seconds, Seconds) = default;

  constexpr Seconds& operator+=(Seconds o) {
    value_ += o.value_;
    return *this;
  }
  constexpr Seconds& operator-=(Seconds o) {
    value_ -= o.value_;
    return *this;
  }
  friend constexpr Seconds operator+(Seconds a, Seconds b) {
    return Seconds{a.value_ + b.value_};
  }
  friend constexpr Seconds operator-(Seconds a, Seconds b) {
    return Seconds{a.value_ - b.value_};
  }
  friend constexpr Seconds operator*(Seconds a, double k) {
    return Seconds{a.value_ * k};
  }
  friend constexpr Seconds operator*(double k, Seconds a) { return a * k; }

 private:
  double value_ = 0.0;
};

constexpr Seconds operator""_s(long double v) {
  return Seconds{static_cast<double>(v)};
}
constexpr Seconds operator""_s(unsigned long long v) {
  return Seconds{static_cast<double>(v)};
}

/// Data rate in bytes per second (drive transfer rate, head motion rate).
class BytesPerSecond {
 public:
  constexpr BytesPerSecond() = default;
  constexpr explicit BytesPerSecond(double v) : value_(v) {}

  [[nodiscard]] constexpr double count() const { return value_; }
  [[nodiscard]] constexpr double megabytes_per_second() const {
    return value_ / 1.0e6;
  }

  friend constexpr auto operator<=>(BytesPerSecond, BytesPerSecond) = default;

 private:
  double value_ = 0.0;
};

constexpr BytesPerSecond operator""_MBps(unsigned long long v) {
  return BytesPerSecond{static_cast<double>(v) * 1.0e6};
}
constexpr BytesPerSecond operator""_MBps(long double v) {
  return BytesPerSecond{static_cast<double>(v) * 1.0e6};
}

/// Time to move `amount` at `rate`. The rate must be positive.
[[nodiscard]] constexpr Seconds duration_for(Bytes amount, BytesPerSecond rate) {
  return Seconds{amount.as_double() / rate.count()};
}

/// Effective rate achieved moving `amount` in `elapsed` time.
[[nodiscard]] constexpr BytesPerSecond rate_for(Bytes amount, Seconds elapsed) {
  return BytesPerSecond{amount.as_double() / elapsed.count()};
}

std::ostream& operator<<(std::ostream& os, Bytes b);
std::ostream& operator<<(std::ostream& os, Seconds s);
std::ostream& operator<<(std::ostream& os, BytesPerSecond r);

}  // namespace tapesim
