#include "util/units.hpp"

#include <cstdio>

namespace tapesim {
namespace {

std::string format_scaled(double v, const char* unit) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.3g %s", v, unit);
  return std::string{buf};
}

}  // namespace

std::ostream& operator<<(std::ostream& os, Bytes b) {
  const double v = b.as_double();
  if (v >= 1e12) return os << format_scaled(v / 1e12, "TB");
  if (v >= 1e9) return os << format_scaled(v / 1e9, "GB");
  if (v >= 1e6) return os << format_scaled(v / 1e6, "MB");
  if (v >= 1e3) return os << format_scaled(v / 1e3, "KB");
  return os << b.count() << " B";
}

std::ostream& operator<<(std::ostream& os, Seconds s) {
  return os << format_scaled(s.count(), "s");
}

std::ostream& operator<<(std::ostream& os, BytesPerSecond r) {
  return os << format_scaled(r.megabytes_per_second(), "MB/s");
}

}  // namespace tapesim
