#include "util/ini.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace tapesim {
namespace {

std::string trim(const std::string& s) {
  const auto begin = s.find_first_not_of(" \t\r");
  if (begin == std::string::npos) return {};
  const auto end = s.find_last_not_of(" \t\r");
  return s.substr(begin, end - begin + 1);
}

[[noreturn]] void fail(std::size_t line, const std::string& what) {
  throw std::runtime_error("ini parse error at line " +
                           std::to_string(line) + ": " + what);
}

}  // namespace

IniFile IniFile::parse(std::istream& in) {
  IniFile ini;
  std::string section;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    // Strip comments (not inside values — keep it simple: first # or ;).
    const auto comment = line.find_first_of("#;");
    if (comment != std::string::npos) line = line.substr(0, comment);
    line = trim(line);
    if (line.empty()) continue;

    if (line.front() == '[') {
      if (line.back() != ']') fail(line_no, "unterminated section header");
      section = trim(line.substr(1, line.size() - 2));
      if (section.empty()) fail(line_no, "empty section name");
      continue;
    }

    const auto eq = line.find('=');
    if (eq == std::string::npos) fail(line_no, "expected key = value");
    const std::string key = trim(line.substr(0, eq));
    const std::string value = trim(line.substr(eq + 1));
    if (key.empty()) fail(line_no, "empty key");
    const std::string full = section.empty() ? key : section + "." + key;
    if (!ini.values_.emplace(full, value).second) {
      fail(line_no, "duplicate key '" + full + "'");
    }
  }
  return ini;
}

IniFile IniFile::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open ini file: " + path);
  return parse(in);
}

std::optional<std::string> IniFile::get(const std::string& key) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::string IniFile::get_or(const std::string& key,
                            const std::string& fallback) const {
  return get(key).value_or(fallback);
}

double IniFile::number_or(const std::string& key, double fallback) const {
  const auto value = get(key);
  if (!value) return fallback;
  try {
    std::size_t consumed = 0;
    const double parsed = std::stod(*value, &consumed);
    if (consumed != value->size()) throw std::invalid_argument("trailing");
    return parsed;
  } catch (const std::exception&) {
    throw std::runtime_error("ini key '" + key + "' is not a number: " +
                             *value);
  }
}

std::int64_t IniFile::integer_or(const std::string& key,
                                 std::int64_t fallback) const {
  const auto value = get(key);
  if (!value) return fallback;
  try {
    std::size_t consumed = 0;
    const std::int64_t parsed = std::stoll(*value, &consumed);
    if (consumed != value->size()) throw std::invalid_argument("trailing");
    return parsed;
  } catch (const std::exception&) {
    throw std::runtime_error("ini key '" + key + "' is not an integer: " +
                             *value);
  }
}

bool IniFile::flag_or(const std::string& key, bool fallback) const {
  const auto value = get(key);
  if (!value) return fallback;
  std::string lower = *value;
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (lower == "true" || lower == "1" || lower == "yes" || lower == "on") {
    return true;
  }
  if (lower == "false" || lower == "0" || lower == "no" || lower == "off") {
    return false;
  }
  throw std::runtime_error("ini key '" + key + "' is not a boolean: " +
                           *value);
}

}  // namespace tapesim
