#include "util/rng.hpp"

namespace tapesim {

std::uint64_t Rng::uniform_below(std::uint64_t bound) {
  if (bound == 0) return 0;
  // Lemire's nearly-divisionless rejection method.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

Rng Rng::fork(std::uint64_t tag) const {
  // Mix the current state with the tag through splitmix64 so substreams are
  // decorrelated regardless of how much the parent has been consumed.
  std::uint64_t mix = state_[0] ^ (state_[3] * 0x9E3779B97F4A7C15ULL) ^ tag;
  std::uint64_t sm = mix;
  return Rng{splitmix64(sm)};
}

Rng Rng::split(std::string_view name) const {
  // FNV-1a over the name bytes; the splitmix64 pass inside fork() then
  // diffuses the (weakly mixed) FNV output across the full state.
  std::uint64_t hash = 0xCBF29CE484222325ULL;
  for (const char c : name) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001B3ULL;
  }
  return fork(hash);
}

}  // namespace tapesim
