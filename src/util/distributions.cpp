#include "util/distributions.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_set>

#include "util/assert.hpp"

namespace tapesim {
namespace {

// Builds Walker alias tables from normalized probabilities.
void build_alias(const std::vector<double>& probs, std::vector<double>& accept,
                 std::vector<std::uint32_t>& alias) {
  const std::size_t n = probs.size();
  accept.assign(n, 1.0);
  alias.assign(n, 0);
  std::vector<double> scaled(n);
  for (std::size_t i = 0; i < n; ++i)
    scaled[i] = probs[i] * static_cast<double>(n);

  std::vector<std::uint32_t> small;
  std::vector<std::uint32_t> large;
  small.reserve(n);
  large.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<std::uint32_t>(i));
  }
  while (!small.empty() && !large.empty()) {
    const std::uint32_t s = small.back();
    small.pop_back();
    const std::uint32_t l = large.back();
    large.pop_back();
    accept[s] = scaled[s];
    alias[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  // Remaining entries have weight 1 up to floating-point error.
  for (const std::uint32_t i : small) accept[i] = 1.0;
  for (const std::uint32_t i : large) accept[i] = 1.0;
}

std::size_t alias_sample(const std::vector<double>& accept,
                         const std::vector<std::uint32_t>& alias, Rng& rng) {
  const std::size_t n = accept.size();
  const std::size_t slot = static_cast<std::size_t>(rng.uniform_below(n));
  return rng.uniform() < accept[slot] ? slot : alias[slot];
}

}  // namespace

BoundedParetoDistribution::BoundedParetoDistribution(double lo, double hi,
                                                     double alpha)
    : lo_(lo), hi_(hi), alpha_(alpha) {
  if (!(lo > 0.0) || !(hi >= lo) || !(alpha > 0.0)) {
    throw std::invalid_argument(
        "BoundedParetoDistribution requires 0 < lo <= hi and alpha > 0");
  }
}

double BoundedParetoDistribution::sample(Rng& rng) const {
  if (hi_ == lo_) return lo_;
  const double u = rng.uniform();
  // Inverse CDF of the truncated Pareto.
  const double la = std::pow(lo_, alpha_);
  const double ha = std::pow(hi_, alpha_);
  const double x = std::pow(la / (1.0 - u * (1.0 - la / ha)), 1.0 / alpha_);
  return std::clamp(x, lo_, hi_);
}

double BoundedParetoDistribution::mean() const {
  if (hi_ == lo_) return lo_;
  const double la = std::pow(lo_, alpha_);
  const double ha = std::pow(hi_, alpha_);
  if (std::abs(alpha_ - 1.0) < 1e-12) {
    // E[X] = ln(hi/lo) * lo*hi/(hi-lo) for alpha == 1.
    return std::log(hi_ / lo_) * lo_ * hi_ / (hi_ - lo_);
  }
  const double num = alpha_ * (std::pow(lo_, alpha_) * hi_ -
                               std::pow(hi_, alpha_) * lo_);
  const double den = (alpha_ - 1.0) * (la - ha);
  return num / den * (1.0);
}

ZipfDistribution::ZipfDistribution(std::size_t n, double alpha)
    : alpha_(alpha) {
  if (n == 0) throw std::invalid_argument("ZipfDistribution requires n > 0");
  if (alpha < 0.0)
    throw std::invalid_argument("ZipfDistribution requires alpha >= 0");
  probs_.resize(n);
  double norm = 0.0;
  for (std::size_t r = 0; r < n; ++r) {
    probs_[r] = std::pow(static_cast<double>(r + 1), -alpha);
    norm += probs_[r];
  }
  for (auto& p : probs_) p /= norm;
  build_alias(probs_, accept_, alias_);
}

std::size_t ZipfDistribution::sample(Rng& rng) const {
  return alias_sample(accept_, alias_, rng);
}

DiscreteDistribution::DiscreteDistribution(const std::vector<double>& weights) {
  if (weights.empty())
    throw std::invalid_argument("DiscreteDistribution requires weights");
  double norm = 0.0;
  for (const double w : weights) {
    if (w < 0.0)
      throw std::invalid_argument("DiscreteDistribution weights must be >= 0");
    norm += w;
  }
  if (norm <= 0.0)
    throw std::invalid_argument("DiscreteDistribution needs positive mass");
  probs_ = weights;
  for (auto& p : probs_) p /= norm;
  build_alias(probs_, accept_, alias_);
}

std::size_t DiscreteDistribution::sample(Rng& rng) const {
  return alias_sample(accept_, alias_, rng);
}

std::vector<std::uint32_t> sample_without_replacement(std::uint32_t n,
                                                      std::uint32_t k,
                                                      Rng& rng) {
  TAPESIM_ASSERT_MSG(k <= n, "cannot draw more distinct values than exist");
  // Floyd's algorithm: k iterations, O(k) expected set operations.
  std::unordered_set<std::uint32_t> chosen;
  chosen.reserve(k * 2);
  std::vector<std::uint32_t> out;
  out.reserve(k);
  for (std::uint32_t j = n - k; j < n; ++j) {
    const auto t =
        static_cast<std::uint32_t>(rng.uniform_below(std::uint64_t{j} + 1));
    if (chosen.insert(t).second) {
      out.push_back(t);
    } else {
      chosen.insert(j);
      out.push_back(j);
    }
  }
  return out;
}

double sample_exponential(Rng& rng, double mean) {
  TAPESIM_ASSERT_MSG(mean > 0.0, "exponential mean must be positive");
  // Inverse CDF: -mean * ln(1 - U). uniform() < 1, so the log argument is
  // strictly positive and the result finite.
  return -mean * std::log(1.0 - rng.uniform());
}

}  // namespace tapesim
