#include "fault/injector.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/assert.hpp"
#include "util/distributions.hpp"

namespace tapesim::fault {

namespace {
constexpr Seconds kNever{std::numeric_limits<double>::infinity()};
}  // namespace

FaultInjector::FaultInjector(const FaultConfig& config,
                             const tape::SystemSpec& spec)
    : config_(config) {
  TAPESIM_ASSERT_MSG(config_.try_validate().ok(),
                     "fault config must validate before injection");
  // Per-class substreams, then one fork per device: a device's draws never
  // depend on any other device's, nor on query order. split() is pure on
  // the freshly seeded root, so adding a class never perturbs the others.
  const Rng root{config_.seed};
  const Rng drive_base = root.split("drive");
  const Rng mount_base = root.split("mount");
  const Rng media_base = root.split("media");
  robot_base_ = root.split("robot");
  const Rng decay_base = root.split("decay");
  outage_base_ = root.split("outage");
  const Rng failslow_base = root.split("failslow");
  robotslow_base_ = root.split("robotslow");
  crash_rng_ = root.split("crash");
  drives_per_library_ = spec.library.drives_per_library;

  const std::uint32_t num_drives = spec.total_drives();
  const std::uint32_t num_tapes = spec.total_tapes();
  drives_.reserve(num_drives);
  mount_rngs_.reserve(num_drives);
  slow_drives_.reserve(num_drives);
  for (std::uint32_t d = 0; d < num_drives; ++d) {
    drives_.push_back(RenewalTimeline{drive_base.fork(d), kNever, kNever,
                                      /*permanent=*/false, /*started=*/false});
    mount_rngs_.push_back(mount_base.fork(d));
    slow_drives_.push_back(SlowTimeline{failslow_base.fork(d), kNever, kNever,
                                        /*severity=*/1.0, /*started=*/false});
  }
  media_rngs_.reserve(num_tapes);
  decay_.reserve(num_tapes);
  for (std::uint32_t t = 0; t < num_tapes; ++t) {
    media_rngs_.push_back(media_base.fork(t));
    decay_.push_back(DecayTimeline{decay_base.fork(t), kNever, 0, 0,
                                   /*started=*/false});
  }
  if (spec.num_libraries > 0) ensure_library(spec.num_libraries - 1);
  media_error_counts_.assign(num_tapes, 0);
}

void FaultInjector::ensure_library(std::uint32_t index) {
  // fork() is index-addressed and const on the stored bases, so a library
  // materialised late draws exactly what it would have drawn had the fleet
  // started larger — lazy growth is deterministic.
  while (robot_rngs_.size() <= index) {
    robot_rngs_.push_back(
        robot_base_.fork(static_cast<std::uint64_t>(robot_rngs_.size())));
  }
  while (outages_.size() <= index) {
    outages_.push_back(RenewalTimeline{
        outage_base_.fork(static_cast<std::uint64_t>(outages_.size())), kNever,
        kNever, /*permanent=*/false, /*started=*/false});
  }
  while (slow_robots_.size() <= index) {
    slow_robots_.push_back(SlowTimeline{
        robotslow_base_.fork(static_cast<std::uint64_t>(slow_robots_.size())),
        kNever, kNever, /*severity=*/1.0, /*started=*/false});
  }
}

LibraryId FaultInjector::lib_of(DriveId d) const {
  TAPESIM_ASSERT(d.valid() && drives_per_library_ > 0);
  return LibraryId{d.value() / drives_per_library_};
}

FaultInjector::RenewalTimeline& FaultInjector::timeline(DriveId d) {
  TAPESIM_ASSERT(d.valid() && d.index() < drives_.size());
  return drives_[d.index()];
}

FaultInjector::RenewalTimeline& FaultInjector::library_timeline(LibraryId lib) {
  TAPESIM_ASSERT(lib.valid());
  ensure_library(lib.index());
  return outages_[lib.index()];
}

void FaultInjector::advance(RenewalTimeline& tl, Seconds t, Seconds mtbf_s,
                            Seconds mttr_s, double permanent_fraction) {
  const double mtbf = mtbf_s.count();
  if (!tl.started) {
    tl.started = true;
    if (mtbf > 0.0) {
      tl.fail_at = Seconds{sample_exponential(tl.rng, mtbf)};
      tl.permanent = tl.rng.uniform() < permanent_fraction;
      tl.repair_at =
          tl.permanent
              ? kNever
              : tl.fail_at +
                    Seconds{sample_exponential(tl.rng, mttr_s.count())};
    }
    // mtbf == 0: fail_at stays +inf, the loop below never iterates.
  }
  while (t >= tl.repair_at) {
    tl.fail_at = tl.repair_at + Seconds{sample_exponential(tl.rng, mtbf)};
    tl.permanent = tl.rng.uniform() < permanent_fraction;
    tl.repair_at =
        tl.permanent
            ? kNever
            : tl.fail_at + Seconds{sample_exponential(tl.rng, mttr_s.count())};
  }
}

void FaultInjector::advance_drive(RenewalTimeline& tl, Seconds t) {
  advance(tl, t, config_.drive_mtbf, config_.drive_mttr,
          config_.permanent_fraction);
}

void FaultInjector::advance_library(RenewalTimeline& tl, Seconds t) {
  advance(tl, t, config_.outage.library_mtbf, config_.outage.library_mttr,
          config_.outage.disaster_fraction);
}

bool FaultInjector::drive_timeline_online(DriveId d, Seconds at) {
  RenewalTimeline& tl = timeline(d);
  advance_drive(tl, at);
  return at < tl.fail_at;
}

bool FaultInjector::drive_online(DriveId d, Seconds at) {
  if (!drive_timeline_online(d, at)) return false;
  return !config_.outage.enabled() || library_up(lib_of(d), at);
}

bool FaultInjector::outage_is_permanent(DriveId d, Seconds at) {
  RenewalTimeline& tl = timeline(d);
  advance_drive(tl, at);
  const bool own_down = at >= tl.fail_at;
  if (config_.outage.enabled()) {
    RenewalTimeline& lt = library_timeline(lib_of(d));
    advance_library(lt, at);
    const bool lib_down = at >= lt.fail_at;
    TAPESIM_ASSERT_MSG(own_down || lib_down, "drive is not in an outage");
    if (lib_down && lt.permanent) return true;
    if (own_down) return tl.permanent;
    return false;  // Transient library outage over a healthy drive.
  }
  TAPESIM_ASSERT_MSG(own_down, "drive is not in an outage");
  return tl.permanent;
}

std::optional<Seconds> FaultInjector::failure_within(DriveId d, Seconds at,
                                                     Seconds duration) {
  RenewalTimeline& tl = timeline(d);
  advance_drive(tl, at);
  TAPESIM_ASSERT_MSG(at < tl.fail_at,
                     "activity started on a drive already in an outage");
  Seconds strike = tl.fail_at;
  if (config_.outage.enabled()) {
    RenewalTimeline& lt = library_timeline(lib_of(d));
    advance_library(lt, at);
    TAPESIM_ASSERT_MSG(at < lt.fail_at,
                       "activity started in a downed library");
    strike = std::min(strike, lt.fail_at);
  }
  if (strike < at + duration) return strike - at;
  return std::nullopt;
}

std::optional<Seconds> FaultInjector::next_online_at(DriveId d, Seconds now) {
  // Walk forward to the first instant at which the drive's own hardware
  // and its library are simultaneously up. Each hop lands on a repair /
  // restore boundary, so the loop terminates (timelines only move forward).
  // The walk runs on *copies*: advancing a timeline past `now` would
  // consume the current outage window for every later query, and the RNGs
  // are deterministic value types, so a copy previews exactly the renewals
  // the real timeline will produce when time actually gets there.
  advance_drive(timeline(d), now);
  RenewalTimeline dt = timeline(d);
  std::optional<RenewalTimeline> lt;
  if (config_.outage.enabled()) {
    advance_library(library_timeline(lib_of(d)), now);
    lt = library_timeline(lib_of(d));
  }
  Seconds t = now;
  for (;;) {
    advance_drive(dt, t);
    if (t >= dt.fail_at) {
      if (dt.permanent) return std::nullopt;
      t = dt.repair_at;
      continue;
    }
    if (!lt.has_value()) return t;
    advance_library(*lt, t);
    if (t >= lt->fail_at) {
      if (lt->permanent) return std::nullopt;
      t = lt->repair_at;
      continue;
    }
    return t;
  }
}

void FaultInjector::note_drive_failure(bool permanent) {
  ++counters_.drive_failures;
  if (permanent) ++counters_.permanent_drive_failures;
}

bool FaultInjector::library_up(LibraryId lib, Seconds at) {
  if (!config_.outage.enabled()) return true;
  RenewalTimeline& lt = library_timeline(lib);
  advance_library(lt, at);
  return at < lt.fail_at;
}

bool FaultInjector::outage_is_disaster(LibraryId lib, Seconds at) {
  RenewalTimeline& lt = library_timeline(lib);
  advance_library(lt, at);
  TAPESIM_ASSERT_MSG(at >= lt.fail_at, "library is not in an outage");
  return lt.permanent;
}

Seconds FaultInjector::outage_started_at(LibraryId lib, Seconds at) {
  RenewalTimeline& lt = library_timeline(lib);
  advance_library(lt, at);
  TAPESIM_ASSERT_MSG(at >= lt.fail_at, "library is not in an outage");
  return lt.fail_at;
}

std::optional<Seconds> FaultInjector::library_up_at(LibraryId lib,
                                                    Seconds now) {
  if (!config_.outage.enabled()) return now;
  RenewalTimeline& lt = library_timeline(lib);
  advance_library(lt, now);
  if (now < lt.fail_at) return now;
  if (lt.permanent) return std::nullopt;
  return lt.repair_at;
}

void FaultInjector::note_library_outage(bool disaster) {
  ++counters_.library_outages;
  if (disaster) ++counters_.library_disasters;
}

bool FaultInjector::mount_attempt_fails(DriveId d, Seconds now) {
  // The burst window only ever raises the rate; outside the window (or
  // with the burst disabled) the draw sequence is untouched.
  const double prob =
      config_.burst.active(now)
          ? std::max(config_.mount_failure_prob,
                     config_.burst.mount_failure_prob)
          : config_.mount_failure_prob;
  if (prob <= 0.0) return false;
  TAPESIM_ASSERT(d.valid() && d.index() < mount_rngs_.size());
  const bool fails = mount_rngs_[d.index()].uniform() < prob;
  if (fails) ++counters_.mount_failures;
  return fails;
}

std::optional<double> FaultInjector::media_error(TapeId t, Bytes amount,
                                                 tape::CartridgeHealth health,
                                                 Seconds now) {
  // As with mounts, the burst only raises the base per-GB rate; the
  // degraded multiplier applies on top of whichever rate is in force.
  const double base =
      config_.burst.active(now)
          ? std::max(config_.media_error_per_gb,
                     config_.burst.media_error_per_gb)
          : config_.media_error_per_gb;
  if (base <= 0.0) return std::nullopt;
  TAPESIM_ASSERT_MSG(health != tape::CartridgeHealth::kLost,
                     "lost cartridges are never transferred");
  TAPESIM_ASSERT(t.valid() && t.index() < media_rngs_.size());
  const double rate = base * (health == tape::CartridgeHealth::kDegraded
                                  ? config_.degraded_error_multiplier
                                  : 1.0);
  const double gb = amount.gigabytes();
  if (gb <= 0.0) return std::nullopt;
  Rng& rng = media_rngs_[t.index()];
  // First event of a Poisson process with intensity `rate` per GB: the
  // transfer errors iff the event lands inside it, and conditional on a
  // hit the position follows the truncated exponential.
  const double p_hit = 1.0 - std::exp(-rate * gb);
  if (rng.uniform() >= p_hit) return std::nullopt;
  const double v = rng.uniform();
  const double x = -std::log(1.0 - v * p_hit) / rate;
  return x / gb;  // in [0, 1)
}

tape::CartridgeHealth FaultInjector::health_for(std::uint32_t count) const {
  if (count >= config_.lost_after) return tape::CartridgeHealth::kLost;
  if (count >= config_.degraded_after) return tape::CartridgeHealth::kDegraded;
  return tape::CartridgeHealth::kGood;
}

tape::CartridgeHealth FaultInjector::record_media_error(TapeId t) {
  TAPESIM_ASSERT(t.valid() && t.index() < media_error_counts_.size());
  ++counters_.media_errors;
  const std::uint32_t count = ++media_error_counts_[t.index()];
  if (count == config_.lost_after) ++counters_.lost_cartridges;
  if (count == config_.degraded_after) ++counters_.degraded_cartridges;
  return health_for(count);
}

std::uint32_t FaultInjector::media_errors_on(TapeId t) const {
  TAPESIM_ASSERT(t.valid() && t.index() < media_error_counts_.size());
  return media_error_counts_[t.index()];
}

FaultInjector::DecayTimeline& FaultInjector::decay(TapeId t, Seconds at) {
  TAPESIM_ASSERT(t.valid() && t.index() < decay_.size());
  DecayTimeline& tl = decay_[t.index()];
  const double mtbf = config_.latent_decay_mtbf.count();
  if (!tl.started) {
    tl.started = true;
    if (mtbf > 0.0) {
      tl.next_at = Seconds{sample_exponential(tl.rng, mtbf)};
    }
    // mtbf == 0: next_at stays +inf, the loop below never iterates.
  }
  while (at >= tl.next_at) {
    ++tl.accrued;
    ++counters_.latent_events;
    tl.next_at += Seconds{sample_exponential(tl.rng, mtbf)};
  }
  return tl;
}

std::uint32_t FaultInjector::undetected_damage(TapeId t, Seconds at) {
  if (config_.latent_decay_mtbf.count() <= 0.0) return 0;
  DecayTimeline& tl = decay(t, at);
  return tl.accrued - tl.observed;
}

double FaultInjector::latent_hit_position(TapeId t) {
  TAPESIM_ASSERT(t.valid() && t.index() < decay_.size());
  return decay_[t.index()].rng.uniform();
}

tape::CartridgeHealth FaultInjector::observe_damage(TapeId t, Seconds at,
                                                    std::uint32_t* found) {
  TAPESIM_ASSERT(t.valid() && t.index() < media_error_counts_.size());
  std::uint32_t fresh = 0;
  if (config_.latent_decay_mtbf.count() > 0.0) {
    DecayTimeline& tl = decay(t, at);
    fresh = tl.accrued - tl.observed;
    if (fresh > 0) {
      tl.observed = tl.accrued;
      counters_.latent_observed += fresh;
      counters_.media_errors += fresh;
      const std::uint32_t before = media_error_counts_[t.index()];
      const std::uint32_t after = before + fresh;
      media_error_counts_[t.index()] = after;
      if (before < config_.degraded_after && after >= config_.degraded_after) {
        ++counters_.degraded_cartridges;
      }
      if (before < config_.lost_after && after >= config_.lost_after) {
        ++counters_.lost_cartridges;
      }
    }
  }
  if (found != nullptr) *found = fresh;
  return health_for(media_error_counts_[t.index()]);
}

std::uint32_t FaultInjector::latent_observed_on(TapeId t) const {
  TAPESIM_ASSERT(t.valid() && t.index() < decay_.size());
  return decay_[t.index()].observed;
}

FaultInjector::SlowTimeline& FaultInjector::slow_timeline(DriveId d) {
  TAPESIM_ASSERT(d.valid() && d.index() < slow_drives_.size());
  return slow_drives_[d.index()];
}

FaultInjector::SlowTimeline& FaultInjector::robot_slow_timeline(LibraryId lib) {
  TAPESIM_ASSERT(lib.valid());
  ensure_library(lib.index());
  return slow_robots_[lib.index()];
}

void FaultInjector::advance_slow(SlowTimeline& tl, Seconds t, bool robot,
                                 bool count) {
  const FailSlowConfig& fs = config_.failslow;
  const double mtbf =
      robot ? fs.robot_slow_mtbf.count() : fs.drive_slow_mtbf.count();
  const double duration =
      robot ? fs.robot_slow_duration.count() : fs.drive_slow_duration.count();
  const double lo = robot ? fs.robot_severity_min : fs.drive_severity_min;
  const double hi = robot ? fs.robot_severity_max : fs.drive_severity_max;
  const auto materialise = [&](Seconds from) {
    const Seconds begin = from + Seconds{sample_exponential(tl.rng, mtbf)};
    const Seconds end = begin + Seconds{sample_exponential(tl.rng, duration)};
    tl.begin_at = begin;
    tl.end_at = end;
    tl.severity = tl.rng.uniform(lo, hi);
    if (!count) return;
    if (robot) {
      ++counters_.robot_slow_episodes;
    } else {
      ++counters_.slow_episodes;
      counters_.slow_drive_seconds += (end - begin).count();
    }
  };
  if (!tl.started) {
    tl.started = true;
    if (mtbf > 0.0) materialise(Seconds{0.0});
    // mtbf == 0: begin_at stays +inf, the loop below never iterates.
  }
  while (t >= tl.end_at) materialise(tl.end_at);
}

double FaultInjector::slow_multiplier(const SlowTimeline& tl, Seconds t,
                                      bool robot) const {
  if (t < tl.begin_at || t >= tl.end_at) return 1.0;
  if (!robot && config_.failslow.progressive) {
    // Linear ramp from full speed at onset down to the drawn severity at
    // episode end — progressive wear instead of an instantaneous drop.
    const double span = (tl.end_at - tl.begin_at).count();
    const double frac = span > 0.0 ? (t - tl.begin_at).count() / span : 1.0;
    return 1.0 - (1.0 - tl.severity) * frac;
  }
  return tl.severity;
}

bool FaultInjector::planted_covers(DriveId d, Seconds t) {
  const FailSlowConfig& fs = config_.failslow;
  if (fs.planted_drive < 0 ||
      static_cast<std::uint32_t>(fs.planted_drive) != d.index()) {
    return false;
  }
  const bool covers =
      t >= fs.planted_at && t < fs.planted_at + fs.planted_duration;
  if (covers && !planted_counted_) {
    planted_counted_ = true;
    ++counters_.slow_episodes;
    counters_.slow_drive_seconds += fs.planted_duration.count();
  }
  return covers;
}

double FaultInjector::drive_rate_multiplier(DriveId d, Seconds at) {
  if (!config_.failslow.enabled()) return 1.0;
  SlowTimeline& tl = slow_timeline(d);
  advance_slow(tl, at, /*robot=*/false);
  double mult = slow_multiplier(tl, at, /*robot=*/false);
  if (planted_covers(d, at)) {
    mult = std::min(mult, config_.failslow.planted_severity);
  }
  return mult;
}

double FaultInjector::robot_rate_multiplier(LibraryId lib, Seconds at) {
  if (config_.failslow.robot_slow_mtbf.count() <= 0.0) return 1.0;
  SlowTimeline& tl = robot_slow_timeline(lib);
  advance_slow(tl, at, /*robot=*/true);
  return slow_multiplier(tl, at, /*robot=*/true);
}

bool FaultInjector::drive_is_slow(DriveId d, Seconds at) {
  if (!config_.failslow.enabled()) return false;
  SlowTimeline& tl = slow_timeline(d);
  advance_slow(tl, at, /*robot=*/false);
  const bool in_window = at >= tl.begin_at && at < tl.end_at;
  return in_window || planted_covers(d, at);
}

Seconds FaultInjector::drive_slow_since(DriveId d, Seconds at) {
  SlowTimeline& tl = slow_timeline(d);
  advance_slow(tl, at, /*robot=*/false);
  const bool in_window = at >= tl.begin_at && at < tl.end_at;
  const bool planted = planted_covers(d, at);
  TAPESIM_ASSERT_MSG(in_window || planted, "drive is not in a slow episode");
  Seconds since = kNever;
  if (in_window) since = tl.begin_at;
  if (planted) since = std::min(since, config_.failslow.planted_at);
  return since;
}

Seconds FaultInjector::drive_slow_until(DriveId d, Seconds at) {
  SlowTimeline& tl = slow_timeline(d);
  advance_slow(tl, at, /*robot=*/false);
  const bool in_window = at >= tl.begin_at && at < tl.end_at;
  const bool planted = planted_covers(d, at);
  TAPESIM_ASSERT_MSG(in_window || planted, "drive is not in a slow episode");
  Seconds until{0.0};
  if (in_window) until = tl.end_at;
  if (planted) {
    until = std::max(until, config_.failslow.planted_at +
                                config_.failslow.planted_duration);
  }
  return until;
}

std::optional<Seconds> FaultInjector::drive_slow_within(DriveId d, Seconds at,
                                                        Seconds horizon) {
  if (!config_.failslow.enabled()) return std::nullopt;
  const Seconds limit = at + horizon;
  Seconds onset = kNever;
  // Walk the random-episode renewals on a *copy* like next_online_at():
  // advancing the real timeline past `at` would materialise (and count)
  // future windows for every later query.
  advance_slow(slow_timeline(d), at, /*robot=*/false);
  SlowTimeline peek = slow_timeline(d);
  if (config_.failslow.drive_slow_mtbf.count() > 0.0) {
    Seconds t = at;
    while (t < limit) {
      advance_slow(peek, t, /*robot=*/false, /*count=*/false);
      if (t < peek.end_at && peek.begin_at < limit) {
        onset = std::max(peek.begin_at, at);
        break;
      }
      t = peek.end_at;
    }
  }
  const FailSlowConfig& fs = config_.failslow;
  if (fs.planted_drive >= 0 &&
      static_cast<std::uint32_t>(fs.planted_drive) == d.index()) {
    const Seconds p_end = fs.planted_at + fs.planted_duration;
    if (fs.planted_at < limit && at < p_end) {
      onset = std::min(onset, std::max(fs.planted_at, at));
    }
  }
  if (onset < limit) return onset;
  return std::nullopt;
}

Seconds FaultInjector::robot_jam_delay(LibraryId lib) {
  if (config_.robot_jam_prob <= 0.0) return Seconds{0.0};
  TAPESIM_ASSERT(lib.valid());
  ensure_library(lib.index());
  if (robot_rngs_[lib.index()].uniform() < config_.robot_jam_prob) {
    ++counters_.robot_jams;
    return config_.robot_jam_clear;
  }
  return Seconds{0.0};
}

std::optional<FaultInjector::CrashEvent> FaultInjector::next_metadata_crash(
    Seconds now) {
  const double mtbf = config_.crash.metadata_mtbf.count();
  if (mtbf <= 0.0) return std::nullopt;
  if (!crash_started_) {
    crash_started_ = true;
    next_crash_at_ = Seconds{sample_exponential(crash_rng_, mtbf)};
  }
  if (next_crash_at_ > now) return std::nullopt;
  CrashEvent ev{next_crash_at_, crash_rng_.uniform()};
  next_crash_at_ += Seconds{sample_exponential(crash_rng_, mtbf)};
  ++counters_.metadata_crashes;
  return ev;
}

}  // namespace tapesim::fault
