#include "fault/injector.hpp"

#include <cmath>
#include <limits>

#include "util/assert.hpp"
#include "util/distributions.hpp"

namespace tapesim::fault {

namespace {
constexpr Seconds kNever{std::numeric_limits<double>::infinity()};
}  // namespace

FaultInjector::FaultInjector(const FaultConfig& config,
                             const tape::SystemSpec& spec)
    : config_(config) {
  TAPESIM_ASSERT_MSG(config_.try_validate().ok(),
                     "fault config must validate before injection");
  // Per-class substreams, then one fork per device: a device's draws never
  // depend on any other device's, nor on query order.
  const Rng root{config_.seed};
  const Rng drive_base = root.split("drive");
  const Rng mount_base = root.split("mount");
  const Rng media_base = root.split("media");
  const Rng robot_base = root.split("robot");
  const Rng decay_base = root.split("decay");

  const std::uint32_t num_drives = spec.total_drives();
  const std::uint32_t num_tapes = spec.total_tapes();
  drives_.reserve(num_drives);
  mount_rngs_.reserve(num_drives);
  for (std::uint32_t d = 0; d < num_drives; ++d) {
    drives_.push_back(DriveTimeline{drive_base.fork(d), kNever, kNever,
                                    /*permanent=*/false, /*started=*/false});
    mount_rngs_.push_back(mount_base.fork(d));
  }
  media_rngs_.reserve(num_tapes);
  decay_.reserve(num_tapes);
  for (std::uint32_t t = 0; t < num_tapes; ++t) {
    media_rngs_.push_back(media_base.fork(t));
    decay_.push_back(DecayTimeline{decay_base.fork(t), kNever, 0, 0,
                                   /*started=*/false});
  }
  robot_rngs_.reserve(spec.num_libraries);
  for (std::uint32_t l = 0; l < spec.num_libraries; ++l) {
    robot_rngs_.push_back(robot_base.fork(l));
  }
  media_error_counts_.assign(num_tapes, 0);
}

FaultInjector::DriveTimeline& FaultInjector::timeline(DriveId d) {
  TAPESIM_ASSERT(d.valid() && d.index() < drives_.size());
  return drives_[d.index()];
}

void FaultInjector::advance(DriveTimeline& tl, Seconds t) {
  const double mtbf = config_.drive_mtbf.count();
  if (!tl.started) {
    tl.started = true;
    if (mtbf > 0.0) {
      tl.fail_at = Seconds{sample_exponential(tl.rng, mtbf)};
      tl.permanent = tl.rng.uniform() < config_.permanent_fraction;
      tl.repair_at =
          tl.permanent
              ? kNever
              : tl.fail_at + Seconds{sample_exponential(
                                 tl.rng, config_.drive_mttr.count())};
    }
    // mtbf == 0: fail_at stays +inf, the loop below never iterates.
  }
  while (t >= tl.repair_at) {
    tl.fail_at =
        tl.repair_at + Seconds{sample_exponential(tl.rng, mtbf)};
    tl.permanent = tl.rng.uniform() < config_.permanent_fraction;
    tl.repair_at =
        tl.permanent ? kNever
                     : tl.fail_at + Seconds{sample_exponential(
                                        tl.rng, config_.drive_mttr.count())};
  }
}

bool FaultInjector::drive_online(DriveId d, Seconds at) {
  DriveTimeline& tl = timeline(d);
  advance(tl, at);
  return at < tl.fail_at;
}

bool FaultInjector::outage_is_permanent(DriveId d, Seconds at) {
  DriveTimeline& tl = timeline(d);
  advance(tl, at);
  TAPESIM_ASSERT_MSG(at >= tl.fail_at, "drive is not in an outage");
  return tl.permanent;
}

std::optional<Seconds> FaultInjector::failure_within(DriveId d, Seconds at,
                                                     Seconds duration) {
  DriveTimeline& tl = timeline(d);
  advance(tl, at);
  TAPESIM_ASSERT_MSG(at < tl.fail_at,
                     "activity started on a drive already in an outage");
  if (tl.fail_at < at + duration) return tl.fail_at - at;
  return std::nullopt;
}

std::optional<Seconds> FaultInjector::next_online_at(DriveId d, Seconds now) {
  DriveTimeline& tl = timeline(d);
  advance(tl, now);
  if (now < tl.fail_at) return now;
  if (tl.permanent) return std::nullopt;
  return tl.repair_at;
}

void FaultInjector::note_drive_failure(bool permanent) {
  ++counters_.drive_failures;
  if (permanent) ++counters_.permanent_drive_failures;
}

bool FaultInjector::mount_attempt_fails(DriveId d) {
  if (config_.mount_failure_prob <= 0.0) return false;
  TAPESIM_ASSERT(d.valid() && d.index() < mount_rngs_.size());
  const bool fails =
      mount_rngs_[d.index()].uniform() < config_.mount_failure_prob;
  if (fails) ++counters_.mount_failures;
  return fails;
}

std::optional<double> FaultInjector::media_error(TapeId t, Bytes amount,
                                                 tape::CartridgeHealth health) {
  if (config_.media_error_per_gb <= 0.0) return std::nullopt;
  TAPESIM_ASSERT_MSG(health != tape::CartridgeHealth::kLost,
                     "lost cartridges are never transferred");
  TAPESIM_ASSERT(t.valid() && t.index() < media_rngs_.size());
  const double rate =
      config_.media_error_per_gb *
      (health == tape::CartridgeHealth::kDegraded
           ? config_.degraded_error_multiplier
           : 1.0);
  const double gb = amount.gigabytes();
  if (gb <= 0.0) return std::nullopt;
  Rng& rng = media_rngs_[t.index()];
  // First event of a Poisson process with intensity `rate` per GB: the
  // transfer errors iff the event lands inside it, and conditional on a
  // hit the position follows the truncated exponential.
  const double p_hit = 1.0 - std::exp(-rate * gb);
  if (rng.uniform() >= p_hit) return std::nullopt;
  const double v = rng.uniform();
  const double x = -std::log(1.0 - v * p_hit) / rate;
  return x / gb;  // in [0, 1)
}

tape::CartridgeHealth FaultInjector::health_for(std::uint32_t count) const {
  if (count >= config_.lost_after) return tape::CartridgeHealth::kLost;
  if (count >= config_.degraded_after) return tape::CartridgeHealth::kDegraded;
  return tape::CartridgeHealth::kGood;
}

tape::CartridgeHealth FaultInjector::record_media_error(TapeId t) {
  TAPESIM_ASSERT(t.valid() && t.index() < media_error_counts_.size());
  ++counters_.media_errors;
  const std::uint32_t count = ++media_error_counts_[t.index()];
  if (count == config_.lost_after) ++counters_.lost_cartridges;
  if (count == config_.degraded_after) ++counters_.degraded_cartridges;
  return health_for(count);
}

std::uint32_t FaultInjector::media_errors_on(TapeId t) const {
  TAPESIM_ASSERT(t.valid() && t.index() < media_error_counts_.size());
  return media_error_counts_[t.index()];
}

FaultInjector::DecayTimeline& FaultInjector::decay(TapeId t, Seconds at) {
  TAPESIM_ASSERT(t.valid() && t.index() < decay_.size());
  DecayTimeline& tl = decay_[t.index()];
  const double mtbf = config_.latent_decay_mtbf.count();
  if (!tl.started) {
    tl.started = true;
    if (mtbf > 0.0) {
      tl.next_at = Seconds{sample_exponential(tl.rng, mtbf)};
    }
    // mtbf == 0: next_at stays +inf, the loop below never iterates.
  }
  while (at >= tl.next_at) {
    ++tl.accrued;
    ++counters_.latent_events;
    tl.next_at += Seconds{sample_exponential(tl.rng, mtbf)};
  }
  return tl;
}

std::uint32_t FaultInjector::undetected_damage(TapeId t, Seconds at) {
  if (config_.latent_decay_mtbf.count() <= 0.0) return 0;
  DecayTimeline& tl = decay(t, at);
  return tl.accrued - tl.observed;
}

double FaultInjector::latent_hit_position(TapeId t) {
  TAPESIM_ASSERT(t.valid() && t.index() < decay_.size());
  return decay_[t.index()].rng.uniform();
}

tape::CartridgeHealth FaultInjector::observe_damage(TapeId t, Seconds at,
                                                    std::uint32_t* found) {
  TAPESIM_ASSERT(t.valid() && t.index() < media_error_counts_.size());
  std::uint32_t fresh = 0;
  if (config_.latent_decay_mtbf.count() > 0.0) {
    DecayTimeline& tl = decay(t, at);
    fresh = tl.accrued - tl.observed;
    if (fresh > 0) {
      tl.observed = tl.accrued;
      counters_.latent_observed += fresh;
      counters_.media_errors += fresh;
      const std::uint32_t before = media_error_counts_[t.index()];
      const std::uint32_t after = before + fresh;
      media_error_counts_[t.index()] = after;
      if (before < config_.degraded_after && after >= config_.degraded_after) {
        ++counters_.degraded_cartridges;
      }
      if (before < config_.lost_after && after >= config_.lost_after) {
        ++counters_.lost_cartridges;
      }
    }
  }
  if (found != nullptr) *found = fresh;
  return health_for(media_error_counts_[t.index()]);
}

std::uint32_t FaultInjector::latent_observed_on(TapeId t) const {
  TAPESIM_ASSERT(t.valid() && t.index() < decay_.size());
  return decay_[t.index()].observed;
}

Seconds FaultInjector::robot_jam_delay(LibraryId lib) {
  if (config_.robot_jam_prob <= 0.0) return Seconds{0.0};
  TAPESIM_ASSERT(lib.valid() && lib.index() < robot_rngs_.size());
  if (robot_rngs_[lib.index()].uniform() < config_.robot_jam_prob) {
    ++counters_.robot_jams;
    return config_.robot_jam_clear;
  }
  return Seconds{0.0};
}

}  // namespace tapesim::fault
