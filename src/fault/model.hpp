// Fault-model configuration: which failures exist and how often.
//
// All rates default to zero, which disables the corresponding fault class
// entirely — a default-constructed FaultConfig is the exact no-fault
// simulator (`enabled()` is false and the scheduler never instantiates an
// injector, so the event sequence is bit-identical to a build without this
// subsystem).
//
// Failure classes, mirroring what operators of real tape silos report:
//   * Drive hardware faults: exponential MTBF/MTTR (alternating renewal);
//     a configurable fraction of faults is permanent (drive never returns).
//   * Mount/load failures: per-attempt Bernoulli; the load time is spent,
//     the cartridge fails to thread, and the scheduler retries with backoff.
//   * Media read errors: per-GB error rate; repeated errors escalate a
//     cartridge Good -> Degraded (error rate multiplied) -> Lost.
//   * Robot arm jams: per-move Bernoulli adding a fixed clear time.
//   * Latent media decay: cartridges silently accumulate sector damage on a
//     per-cartridge renewal timeline, independent of reads. Damage counts
//     toward the Degraded/Lost escalation thresholds only when *observed*
//     (a foreground read runs into it, or a scrub pass verifies the tape),
//     so the true damage and the detected health of a cartridge diverge.
#pragma once

#include <cstdint>

#include "util/error.hpp"
#include "util/units.hpp"

namespace tapesim::fault {

/// Truncated exponential backoff for retry loops.
struct BackoffPolicy {
  /// Retries after the first attempt; 0 means fail immediately.
  std::uint32_t max_retries = 2;
  /// Delay before the first retry.
  Seconds initial_delay{5.0};
  /// Growth factor per subsequent retry.
  double multiplier = 2.0;

  /// Delay before retry number `retry` (0-based): initial * multiplier^retry.
  [[nodiscard]] Seconds delay(std::uint32_t retry) const {
    double d = initial_delay.count();
    for (std::uint32_t i = 0; i < retry; ++i) d *= multiplier;
    return Seconds{d};
  }

  [[nodiscard]] Status try_validate(const char* subject) const;
};

struct FaultConfig {
  /// Root seed of the fault RNG tree; independent of the workload stream.
  std::uint64_t seed = 0x46415553;  // "FAUS"

  // --- drive hardware faults ---
  /// Mean time between drive failures (per drive); 0 disables.
  Seconds drive_mtbf{};
  /// Mean time to repair a transiently failed drive.
  Seconds drive_mttr{3600.0};
  /// Fraction of drive faults that are permanent (drive never repaired).
  double permanent_fraction = 0.0;

  // --- mount/load failures ---
  /// Probability a single load attempt fails to thread; 0 disables.
  double mount_failure_prob = 0.0;
  BackoffPolicy mount_retry{2, Seconds{5.0}, 2.0};
  /// Give-up threshold: total failed attempts on one cartridge before its
  /// requests complete as unavailable.
  std::uint32_t max_mount_attempts_per_tape = 8;

  // --- media read errors ---
  /// Probability-per-GB of a read error while streaming; 0 disables.
  double media_error_per_gb = 0.0;
  BackoffPolicy media_retry{2, Seconds{2.0}, 2.0};
  /// Errors on one cartridge before it is marked Degraded.
  std::uint32_t degraded_after = 2;
  /// Errors on one cartridge before it is marked Lost.
  std::uint32_t lost_after = 5;
  /// Error-rate multiplier applied to Degraded cartridges.
  double degraded_error_multiplier = 4.0;

  // --- robot arm jams ---
  /// Probability a robot move jams; 0 disables.
  double robot_jam_prob = 0.0;
  /// Extra time to clear a jam (added to the affected move).
  Seconds robot_jam_clear{60.0};

  // --- latent media decay ---
  /// Mean time between silent damage events per cartridge; 0 disables.
  /// Each event counts toward degraded_after/lost_after only once observed
  /// by a read or a scrub.
  Seconds latent_decay_mtbf{};

  /// True when any fault class is active. The scheduler only builds an
  /// injector (and only pays any overhead) when this returns true.
  [[nodiscard]] bool enabled() const {
    return drive_mtbf.count() > 0.0 || mount_failure_prob > 0.0 ||
           media_error_per_gb > 0.0 || robot_jam_prob > 0.0 ||
           latent_decay_mtbf.count() > 0.0;
  }

  [[nodiscard]] Status try_validate() const;
};

}  // namespace tapesim::fault
