// Fault-model configuration: which failures exist and how often.
//
// All rates default to zero, which disables the corresponding fault class
// entirely — a default-constructed FaultConfig is the exact no-fault
// simulator (`enabled()` is false and the scheduler never instantiates an
// injector, so the event sequence is bit-identical to a build without this
// subsystem).
//
// Failure classes, mirroring what operators of real tape silos report:
//   * Drive hardware faults: exponential MTBF/MTTR (alternating renewal);
//     a configurable fraction of faults is permanent (drive never returns).
//   * Mount/load failures: per-attempt Bernoulli; the load time is spent,
//     the cartridge fails to thread, and the scheduler retries with backoff.
//   * Media read errors: per-GB error rate; repeated errors escalate a
//     cartridge Good -> Degraded (error rate multiplied) -> Lost.
//   * Robot arm jams: per-move Bernoulli adding a fixed clear time.
//   * Latent media decay: cartridges silently accumulate sector damage on a
//     per-cartridge renewal timeline, independent of reads. Damage counts
//     toward the Degraded/Lost escalation thresholds only when *observed*
//     (a foreground read runs into it, or a scrub pass verifies the tape),
//     so the true damage and the detected health of a cartridge diverge.
//   * Library outages: correlated whole-library events (power feed, HVAC,
//     site disaster) on a per-library renewal timeline. One onset downs
//     every drive and the robot in the library atomically; a configurable
//     fraction of outages is a permanent disaster that loses every resident
//     cartridge and triggers a disaster-recovery re-replication surge.
#pragma once

#include <cstdint>

#include "util/error.hpp"
#include "util/units.hpp"

namespace tapesim::fault {

/// Truncated exponential backoff for retry loops.
struct BackoffPolicy {
  /// Retries after the first attempt; 0 means fail immediately.
  std::uint32_t max_retries = 2;
  /// Delay before the first retry.
  Seconds initial_delay{5.0};
  /// Growth factor per subsequent retry.
  double multiplier = 2.0;

  /// Delay before retry number `retry` (0-based): initial * multiplier^retry.
  [[nodiscard]] Seconds delay(std::uint32_t retry) const {
    double d = initial_delay.count();
    for (std::uint32_t i = 0; i < retry; ++i) d *= multiplier;
    return Seconds{d};
  }

  [[nodiscard]] Status try_validate(const char* subject) const;
};

/// Library-level fault domain: correlated outages on a per-library
/// alternating-renewal timeline. Defaults disable the class entirely; a
/// default-constructed OutageConfig costs nothing (no substream draws, no
/// extra branches on the hot path beyond one `enabled()` check).
struct OutageConfig {
  /// Mean time between library outages (per library); 0 disables.
  Seconds library_mtbf{};
  /// Mean time to restore a transiently downed library.
  Seconds library_mttr{4.0 * 3600.0};
  /// Fraction of outages that are a permanent site disaster: the library
  /// never returns and every resident cartridge is lost.
  double disaster_fraction = 0.0;
  /// Duty-cycle fraction granted to disaster-recovery re-replication
  /// traffic (the surge after a disaster), so DR does not starve
  /// foreground reads. In (0, 1].
  double dr_bandwidth_fraction = 0.5;
  /// Concurrent copy jobs allowed while DR work is outstanding (raises the
  /// normal repair cap if larger; never lowers it).
  std::uint32_t dr_max_concurrent = 2;

  [[nodiscard]] bool enabled() const { return library_mtbf.count() > 0.0; }

  [[nodiscard]] Status try_validate() const;
};

/// Fail-slow (gray-failure) fault family: components that keep answering
/// but at a fraction of spec. Drives enter degraded-throughput episodes on
/// a per-drive alternating-renewal timeline (healthy gap ~ Exp(mtbf),
/// episode length ~ Exp(duration), severity drawn per episode as a rate
/// multiplier in [severity_min, severity_max]); robots get analogous
/// exchange-slowdown episodes per library. A deterministic *planted*
/// episode is available for benches that need a known ground truth.
/// Defaults disable the class entirely.
struct FailSlowConfig {
  // --- drive degraded-throughput episodes ---
  /// Mean healthy time between drive slow episodes (per drive); 0 disables.
  Seconds drive_slow_mtbf{};
  /// Mean length of one drive slow episode.
  Seconds drive_slow_duration{4.0 * 3600.0};
  /// Per-episode severity: the effective transfer rate is spec * s with s
  /// drawn uniformly from [severity_min, severity_max] (strictly inside
  /// (0, 1) — a multiplier of 0 would be fail-stop, 1 would be a no-op).
  double drive_severity_min = 0.25;
  double drive_severity_max = 0.5;
  /// When true, random episodes ramp linearly from full speed at onset down
  /// to the drawn severity at episode end (progressive wear) instead of
  /// dropping to the severity instantly.
  bool progressive = false;

  // --- robot exchange slowdown episodes ---
  /// Mean healthy time between robot slow episodes (per library); 0 disables.
  Seconds robot_slow_mtbf{};
  /// Mean length of one robot slow episode.
  Seconds robot_slow_duration{2.0 * 3600.0};
  /// Per-episode robot severity bounds (exchange time divides by s).
  double robot_severity_min = 0.3;
  double robot_severity_max = 0.6;

  // --- planted episode (deterministic ground truth for benches) ---
  /// Drive index slowed by a deterministic episode; -1 disables.
  std::int32_t planted_drive = -1;
  /// Planted episode onset (sim time) and length.
  Seconds planted_at{};
  Seconds planted_duration{};
  /// Constant severity of the planted episode (no ramp), in (0, 1).
  double planted_severity = 0.5;

  [[nodiscard]] bool enabled() const {
    return drive_slow_mtbf.count() > 0.0 || robot_slow_mtbf.count() > 0.0 ||
           planted_drive >= 0;
  }

  [[nodiscard]] Status try_validate() const;
};

/// Metadata-server crashes: the control plane (catalog + journal) halts on
/// a Poisson arrival timeline and must replay its way back. Crashes are
/// observed lazily at admission boundaries (never via standing events) on
/// the injector's "crash" substream; each crash also consumes one uniform
/// draw deciding how much of the unsynced journal suffix physically landed
/// before the power went (the torn tail). Defaults disable the class; the
/// simulator additionally requires the catalog journal to be enabled when
/// crashes are (a crash without a log would lose the whole catalog).
struct CrashConfig {
  /// Mean time between metadata-server crashes; 0 disables.
  Seconds metadata_mtbf{};
  /// When false, the unsynced journal suffix survives crashes intact
  /// (every pending record replays); the torn-tail draw is still consumed
  /// so timelines match the torn run draw-for-draw.
  bool torn_tail = true;

  [[nodiscard]] bool enabled() const { return metadata_mtbf.count() > 0.0; }

  [[nodiscard]] Status try_validate() const;
};

/// Deterministic fault burst: a single time window during which the mount
/// and/or media error rates are raised to the burst values (never
/// lowered). The trigger for metastable-failure experiments: a burst
/// colliding with a flash crowd seeds the recovery storm that the
/// governor must keep from becoming self-sustaining. Defaults disable the
/// class; a disabled burst adds zero draws and zero branches beyond one
/// `enabled()` check, so timelines stay bit-identical.
struct BurstConfig {
  /// Burst window start (sim time).
  Seconds at{};
  /// Burst window length; 0 disables the class entirely.
  Seconds duration{};
  /// Mount failure probability during the window (used when above the
  /// base rate).
  double mount_failure_prob = 0.0;
  /// Media error rate per GB during the window (used when above the base
  /// rate).
  double media_error_per_gb = 0.0;

  [[nodiscard]] bool enabled() const {
    return duration.count() > 0.0 &&
           (mount_failure_prob > 0.0 || media_error_per_gb > 0.0);
  }

  /// True when `now` falls inside the burst window.
  [[nodiscard]] bool active(Seconds now) const {
    return enabled() && now >= at && now < at + duration;
  }

  [[nodiscard]] Status try_validate() const;
};

struct FaultConfig {
  /// Root seed of the fault RNG tree; independent of the workload stream.
  std::uint64_t seed = 0x46415553;  // "FAUS"

  // --- drive hardware faults ---
  /// Mean time between drive failures (per drive); 0 disables.
  Seconds drive_mtbf{};
  /// Mean time to repair a transiently failed drive.
  Seconds drive_mttr{3600.0};
  /// Fraction of drive faults that are permanent (drive never repaired).
  double permanent_fraction = 0.0;

  // --- mount/load failures ---
  /// Probability a single load attempt fails to thread; 0 disables.
  double mount_failure_prob = 0.0;
  BackoffPolicy mount_retry{2, Seconds{5.0}, 2.0};
  /// Give-up threshold: total failed attempts on one cartridge before its
  /// requests complete as unavailable.
  std::uint32_t max_mount_attempts_per_tape = 8;

  // --- media read errors ---
  /// Probability-per-GB of a read error while streaming; 0 disables.
  double media_error_per_gb = 0.0;
  BackoffPolicy media_retry{2, Seconds{2.0}, 2.0};
  /// Errors on one cartridge before it is marked Degraded.
  std::uint32_t degraded_after = 2;
  /// Errors on one cartridge before it is marked Lost.
  std::uint32_t lost_after = 5;
  /// Error-rate multiplier applied to Degraded cartridges.
  double degraded_error_multiplier = 4.0;

  // --- robot arm jams ---
  /// Probability a robot move jams; 0 disables.
  double robot_jam_prob = 0.0;
  /// Extra time to clear a jam (added to the affected move).
  Seconds robot_jam_clear{60.0};

  // --- latent media decay ---
  /// Mean time between silent damage events per cartridge; 0 disables.
  /// Each event counts toward degraded_after/lost_after only once observed
  /// by a read or a scrub.
  Seconds latent_decay_mtbf{};

  // --- library outages ---
  OutageConfig outage{};

  // --- fail-slow episodes ---
  FailSlowConfig failslow{};

  // --- metadata-server crashes ---
  CrashConfig crash{};

  // --- deterministic fault burst (metastability trigger) ---
  BurstConfig burst{};

  /// True when any fault class is active. The scheduler only builds an
  /// injector (and only pays any overhead) when this returns true.
  [[nodiscard]] bool enabled() const {
    return drive_mtbf.count() > 0.0 || mount_failure_prob > 0.0 ||
           media_error_per_gb > 0.0 || robot_jam_prob > 0.0 ||
           latent_decay_mtbf.count() > 0.0 || outage.enabled() ||
           failslow.enabled() || crash.enabled() || burst.enabled();
  }

  [[nodiscard]] Status try_validate() const;
};

}  // namespace tapesim::fault
