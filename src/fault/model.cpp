#include "fault/model.hpp"

namespace tapesim::fault {

Status BackoffPolicy::try_validate(const char* subject) const {
  StatusBuilder check(subject);
  check.require(initial_delay.count() >= 0.0, "initial delay must be >= 0");
  check.require(multiplier >= 1.0, "backoff multiplier must be >= 1");
  return check.take();
}

Status OutageConfig::try_validate() const {
  StatusBuilder check("OutageConfig");
  check.require(library_mtbf.count() >= 0.0, "library MTBF must be >= 0");
  check.require(library_mtbf.count() == 0.0 || library_mttr.count() > 0.0,
                "library MTTR must be positive when outages are enabled");
  check.require(disaster_fraction >= 0.0 && disaster_fraction <= 1.0,
                "disaster fraction must be in [0, 1]");
  check.require(dr_bandwidth_fraction > 0.0 && dr_bandwidth_fraction <= 1.0,
                "DR bandwidth fraction must be in (0, 1]");
  check.require(dr_max_concurrent > 0,
                "DR concurrency must allow at least one job");
  return check.take();
}

Status FailSlowConfig::try_validate() const {
  StatusBuilder check("FailSlowConfig");
  check.require(drive_slow_mtbf.count() >= 0.0,
                "drive slow MTBF must be >= 0");
  check.require(drive_slow_mtbf.count() == 0.0 ||
                    drive_slow_duration.count() > 0.0,
                "drive slow duration must be positive when episodes are "
                "enabled");
  check.require(drive_severity_min > 0.0 &&
                    drive_severity_min <= drive_severity_max &&
                    drive_severity_max < 1.0,
                "drive severity bounds must satisfy 0 < min <= max < 1");
  check.require(robot_slow_mtbf.count() >= 0.0,
                "robot slow MTBF must be >= 0");
  check.require(robot_slow_mtbf.count() == 0.0 ||
                    robot_slow_duration.count() > 0.0,
                "robot slow duration must be positive when episodes are "
                "enabled");
  check.require(robot_severity_min > 0.0 &&
                    robot_severity_min <= robot_severity_max &&
                    robot_severity_max < 1.0,
                "robot severity bounds must satisfy 0 < min <= max < 1");
  check.require(planted_drive < 0 || planted_at.count() >= 0.0,
                "planted episode onset must be >= 0");
  check.require(planted_drive < 0 || planted_duration.count() > 0.0,
                "planted episode duration must be positive");
  check.require(planted_drive < 0 ||
                    (planted_severity > 0.0 && planted_severity < 1.0),
                "planted severity must be in (0, 1)");
  return check.take();
}

Status CrashConfig::try_validate() const {
  StatusBuilder check("CrashConfig");
  check.require(metadata_mtbf.count() >= 0.0,
                "metadata-server MTBF must be >= 0");
  return check.take();
}

Status BurstConfig::try_validate() const {
  StatusBuilder check("BurstConfig");
  check.require(at.count() >= 0.0, "burst onset must be >= 0");
  check.require(duration.count() >= 0.0, "burst duration must be >= 0");
  check.require(mount_failure_prob >= 0.0 && mount_failure_prob < 1.0,
                "burst mount failure probability must be in [0, 1)");
  check.require(media_error_per_gb >= 0.0,
                "burst media error rate must be >= 0");
  return check.take();
}

Status FaultConfig::try_validate() const {
  StatusBuilder check("FaultConfig");
  check.require(drive_mtbf.count() >= 0.0, "drive MTBF must be >= 0");
  check.require(drive_mtbf.count() == 0.0 || drive_mttr.count() > 0.0,
                "drive MTTR must be positive when faults are enabled");
  check.require(permanent_fraction >= 0.0 && permanent_fraction <= 1.0,
                "permanent fraction must be in [0, 1]");
  check.require(mount_failure_prob >= 0.0 && mount_failure_prob < 1.0,
                "mount failure probability must be in [0, 1)");
  check.require(max_mount_attempts_per_tape > 0,
                "need at least one mount attempt per tape");
  check.require(media_error_per_gb >= 0.0,
                "media error rate must be >= 0");
  check.require(degraded_after > 0, "degraded threshold must be positive");
  check.require(lost_after > degraded_after,
                "lost threshold must exceed the degraded threshold");
  check.require(degraded_error_multiplier >= 1.0,
                "degraded error multiplier must be >= 1");
  check.require(robot_jam_prob >= 0.0 && robot_jam_prob < 1.0,
                "robot jam probability must be in [0, 1)");
  check.require(robot_jam_prob == 0.0 || robot_jam_clear.count() > 0.0,
                "robot jam clear time must be positive when jams are enabled");
  check.require(latent_decay_mtbf.count() >= 0.0,
                "latent decay MTBF must be >= 0");
  check.merge(mount_retry.try_validate("FaultConfig mount retry"));
  check.merge(media_retry.try_validate("FaultConfig media retry"));
  check.merge(outage.try_validate());
  check.merge(failslow.try_validate());
  check.merge(crash.try_validate());
  check.merge(burst.try_validate());
  return check.take();
}

}  // namespace tapesim::fault
