// Deterministic fault injector.
//
// The injector is a pure oracle: it owns the fault RNG tree and the failure
// timelines, but never touches the engine or the tape system. The scheduler
// asks questions ("will this transfer be interrupted?", "does this mount
// attempt fail?") and acts on the answers; the injector stays reusable by
// any future scheduler.
//
// Determinism discipline: every device has its own substream, forked from
// a per-class `split()` of the root seed. A drive's failure timeline
// therefore never depends on what any other device drew, nor on the order
// in which the scheduler happens to query devices — runs are reproducible
// under scheduling refactors, and independent of the workload RNG stream.
//
// Drive failures are an alternating renewal process (exponential time to
// failure with mean MTBF, exponential repair with mean MTTR), advanced
// lazily: outage windows are only materialised when a query reaches them,
// so an idle simulator schedules no standing fault events and the event
// loop can never be kept alive (or wedged) by the fault model.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "fault/model.hpp"
#include "tape/specs.hpp"
#include "tape/system.hpp"
#include "util/ids.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace tapesim::fault {

/// Running totals of injected faults, for reports and benchmarks.
struct FaultCounters {
  std::uint64_t drive_failures = 0;
  std::uint64_t permanent_drive_failures = 0;
  std::uint64_t mount_failures = 0;
  std::uint64_t media_errors = 0;
  std::uint64_t robot_jams = 0;
  std::uint64_t degraded_cartridges = 0;  ///< Good -> Degraded escalations.
  std::uint64_t lost_cartridges = 0;      ///< -> Lost escalations.
};

class FaultInjector {
 public:
  /// `config` must validate; sizes the per-device streams from `spec`.
  FaultInjector(const FaultConfig& config, const tape::SystemSpec& spec);

  [[nodiscard]] const FaultConfig& config() const { return config_; }
  [[nodiscard]] const FaultCounters& counters() const { return counters_; }

  // --- drive hardware timeline ---

  /// Is drive `d` up at time `at`?
  [[nodiscard]] bool drive_online(DriveId d, Seconds at);

  /// Whether the current outage of `d` (it must be in one) is permanent.
  [[nodiscard]] bool outage_is_permanent(DriveId d, Seconds at);

  /// If an activity on `d` spanning [at, at + duration) is interrupted by a
  /// failure, the offset from `at` at which it strikes; nullopt when the
  /// activity completes first. A failure exactly at completion time does
  /// not interrupt.
  [[nodiscard]] std::optional<Seconds> failure_within(DriveId d, Seconds at,
                                                      Seconds duration);

  /// Earliest time >= `now` at which `d` is online: `now` itself if it is
  /// already up, the repair time if it is in a transient outage, nullopt if
  /// the outage is permanent.
  [[nodiscard]] std::optional<Seconds> next_online_at(DriveId d, Seconds now);

  /// Called when the scheduler actually fails the drive, for counting.
  void note_drive_failure(bool permanent);

  // --- mount/load failures ---

  /// Draws whether one load attempt on `d` fails to thread.
  [[nodiscard]] bool mount_attempt_fails(DriveId d);

  // --- media read errors ---

  /// If a transfer of `amount` from cartridge `t` hits a read error, the
  /// fraction of the transfer completed when it strikes (in (0, 1));
  /// nullopt for a clean read. `health` scales the error rate for
  /// degraded media. The error position follows the conditional
  /// distribution of the first event of a Poisson process truncated to the
  /// transfer, so short and long transfers are treated consistently.
  [[nodiscard]] std::optional<double> media_error(TapeId t, Bytes amount,
                                                  tape::CartridgeHealth health);

  /// Records one read error against `t` and returns the health the
  /// cartridge should now have (escalating through the configured
  /// thresholds). The caller applies it to the tape system.
  [[nodiscard]] tape::CartridgeHealth record_media_error(TapeId t);

  [[nodiscard]] std::uint32_t media_errors_on(TapeId t) const;

  // --- robot arm jams ---

  /// Extra delay for one robot move in library `lib`: the configured clear
  /// time if the move jams, zero otherwise.
  [[nodiscard]] Seconds robot_jam_delay(LibraryId lib);

 private:
  /// Lazy alternating-renewal outage timeline of one drive. The window
  /// [fail_at, repair_at) is the next (or current) outage; repair_at is
  /// +infinity for a permanent failure.
  struct DriveTimeline {
    Rng rng;
    Seconds fail_at{};
    Seconds repair_at{};
    bool permanent = false;
    bool started = false;
  };

  /// Materialises outage windows until `t` falls before repair_at.
  void advance(DriveTimeline& tl, Seconds t);
  DriveTimeline& timeline(DriveId d);

  FaultConfig config_;
  FaultCounters counters_;
  std::vector<DriveTimeline> drives_;
  std::vector<Rng> mount_rngs_;    ///< One per drive.
  std::vector<Rng> media_rngs_;    ///< One per tape.
  std::vector<Rng> robot_rngs_;    ///< One per library.
  std::vector<std::uint32_t> media_error_counts_;  ///< One per tape.
};

}  // namespace tapesim::fault
