// Deterministic fault injector.
//
// The injector is a pure oracle: it owns the fault RNG tree and the failure
// timelines, but never touches the engine or the tape system. The scheduler
// asks questions ("will this transfer be interrupted?", "does this mount
// attempt fail?") and acts on the answers; the injector stays reusable by
// any future scheduler.
//
// Determinism discipline: every device has its own substream, forked from
// a per-class `split()` of the root seed. A drive's failure timeline
// therefore never depends on what any other device drew, nor on the order
// in which the scheduler happens to query devices — runs are reproducible
// under scheduling refactors, and independent of the workload RNG stream.
//
// Drive failures are an alternating renewal process (exponential time to
// failure with mean MTBF, exponential repair with mean MTTR), advanced
// lazily: outage windows are only materialised when a query reaches them,
// so an idle simulator schedules no standing fault events and the event
// loop can never be kept alive (or wedged) by the fault model.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "fault/model.hpp"
#include "tape/specs.hpp"
#include "tape/system.hpp"
#include "util/ids.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace tapesim::fault {

/// Running totals of injected faults, for reports and benchmarks.
struct FaultCounters {
  std::uint64_t drive_failures = 0;
  std::uint64_t permanent_drive_failures = 0;
  std::uint64_t mount_failures = 0;
  std::uint64_t media_errors = 0;
  std::uint64_t robot_jams = 0;
  std::uint64_t degraded_cartridges = 0;  ///< Good -> Degraded escalations.
  std::uint64_t lost_cartridges = 0;      ///< -> Lost escalations.
  std::uint64_t latent_events = 0;   ///< Silent damage events materialised.
  std::uint64_t latent_observed = 0; ///< Damage events surfaced by observation.
  std::uint64_t library_outages = 0;    ///< Library outage onsets registered.
  std::uint64_t library_disasters = 0;  ///< Of those, permanent disasters.
  std::uint64_t slow_episodes = 0;       ///< Drive fail-slow episodes.
  std::uint64_t robot_slow_episodes = 0; ///< Robot slowdown episodes.
  double slow_drive_seconds = 0.0;  ///< Summed drive episode durations (s).
  std::uint64_t metadata_crashes = 0;  ///< Metadata-server crash arrivals.
};

class FaultInjector {
 public:
  /// `config` must validate; sizes the per-device streams from `spec`.
  FaultInjector(const FaultConfig& config, const tape::SystemSpec& spec);

  [[nodiscard]] const FaultConfig& config() const { return config_; }
  [[nodiscard]] const FaultCounters& counters() const { return counters_; }

  // --- drive hardware timeline (library outages folded in) ---
  //
  // All drive-level queries fold the drive's own hardware timeline with its
  // library's outage timeline: a drive in a downed library answers exactly
  // like a failed drive, so the scheduler's interrupt/boundary machinery
  // handles correlated outages without special cases. Use
  // drive_timeline_online() to ask about the drive's own hardware only.

  /// Is drive `d` up at time `at` (own hardware up AND library up)?
  [[nodiscard]] bool drive_online(DriveId d, Seconds at);

  /// Drive `d`'s own hardware state at `at`, ignoring its library:
  /// distinguishes a genuine drive fault from a correlated library outage.
  [[nodiscard]] bool drive_timeline_online(DriveId d, Seconds at);

  /// Whether the current outage of `d` (it must be in one) is permanent:
  /// the library was destroyed, or the drive's own fault never repairs.
  /// A transient library outage over a healthy drive is not permanent.
  [[nodiscard]] bool outage_is_permanent(DriveId d, Seconds at);

  /// If an activity on `d` spanning [at, at + duration) is interrupted by a
  /// failure — the drive's own or a correlated library onset, whichever
  /// strikes first — the offset from `at` at which it strikes; nullopt when
  /// the activity completes first. A failure exactly at completion time
  /// does not interrupt.
  [[nodiscard]] std::optional<Seconds> failure_within(DriveId d, Seconds at,
                                                      Seconds duration);

  /// Earliest time >= `now` at which `d` is online (own hardware AND
  /// library simultaneously up): `now` itself if it is already up, the
  /// next such instant for transient outages, nullopt if any pending
  /// outage is permanent.
  [[nodiscard]] std::optional<Seconds> next_online_at(DriveId d, Seconds now);

  /// Called when the scheduler actually fails the drive, for counting.
  void note_drive_failure(bool permanent);

  // --- library outage timeline ---

  /// Is library `lib` up at time `at`? Always true when outages are
  /// disabled (no draws consumed).
  [[nodiscard]] bool library_up(LibraryId lib, Seconds at);

  /// Whether the current outage of `lib` (it must be in one) is a
  /// permanent site disaster.
  [[nodiscard]] bool outage_is_disaster(LibraryId lib, Seconds at);

  /// Onset time of the current outage of `lib` (it must be in one).
  [[nodiscard]] Seconds outage_started_at(LibraryId lib, Seconds at);

  /// Earliest time >= `now` at which `lib` is up: `now` itself if it is
  /// up, the restore time for a transient outage, nullopt after a
  /// disaster.
  [[nodiscard]] std::optional<Seconds> library_up_at(LibraryId lib,
                                                     Seconds now);

  /// Called when the scheduler registers the outage, for counting.
  void note_library_outage(bool disaster);

  // --- mount/load failures ---

  /// Draws whether one load attempt on `d` fails to thread. `now` locates
  /// the attempt against the deterministic burst window (BurstConfig);
  /// callers without a clock pass the default, which is never inside a
  /// burst.
  [[nodiscard]] bool mount_attempt_fails(DriveId d,
                                         Seconds now = Seconds{-1.0});

  // --- media read errors ---

  /// If a transfer of `amount` from cartridge `t` hits a read error, the
  /// fraction of the transfer completed when it strikes (in (0, 1));
  /// nullopt for a clean read. `health` scales the error rate for
  /// degraded media. The error position follows the conditional
  /// distribution of the first event of a Poisson process truncated to the
  /// transfer, so short and long transfers are treated consistently.
  [[nodiscard]] std::optional<double> media_error(
      TapeId t, Bytes amount, tape::CartridgeHealth health,
      Seconds now = Seconds{-1.0});

  /// Records one read error against `t` and returns the health the
  /// cartridge should now have (escalating through the configured
  /// thresholds). The caller applies it to the tape system.
  [[nodiscard]] tape::CartridgeHealth record_media_error(TapeId t);

  [[nodiscard]] std::uint32_t media_errors_on(TapeId t) const;

  // --- latent media decay ---

  /// Silent damage events cartridge `t` has accumulated by `at` but that no
  /// read or scrub has observed yet. Advances the decay timeline lazily;
  /// always 0 when decay is disabled.
  [[nodiscard]] std::uint32_t undetected_damage(TapeId t, Seconds at);

  /// Position (fraction of a transfer, in [0, 1)) at which a read runs
  /// into already-accrued latent damage. Only meaningful when
  /// undetected_damage(t, at) > 0; consumes one draw from the tape's decay
  /// stream (never touched when decay is disabled).
  [[nodiscard]] double latent_hit_position(TapeId t);

  /// An observation of cartridge `t` (a read running into damaged sectors,
  /// or a scrub verifying the whole tape): every undetected damage event
  /// accrued by `at` surfaces into the error count and escalates health
  /// through the configured thresholds. `found` (optional) receives how
  /// many events surfaced. Returns the health the cartridge should now
  /// have; the caller applies it to the tape system.
  [[nodiscard]] tape::CartridgeHealth observe_damage(
      TapeId t, Seconds at, std::uint32_t* found = nullptr);

  /// Latent damage events surfaced on `t` so far (observed, cumulative).
  [[nodiscard]] std::uint32_t latent_observed_on(TapeId t) const;

  // --- robot arm jams ---

  /// Extra delay for one robot move in library `lib`: the configured clear
  /// time if the move jams, zero otherwise.
  [[nodiscard]] Seconds robot_jam_delay(LibraryId lib);

  // --- metadata-server crashes ---

  /// One crash arrival with its torn-tail draw: `at` is the crash instant,
  /// `torn` the uniform [0, 1) value picking how much of the unsynced
  /// journal suffix survived.
  struct CrashEvent {
    Seconds at{};
    double torn = 0.0;
  };

  /// Consumes and returns the earliest unobserved crash arrival at or
  /// before `now`; nullopt when none is due (or crashes are disabled — no
  /// draws consumed). Crash arrivals form a Poisson process on their own
  /// substream, observed lazily at admission boundaries; each arrival
  /// consumes exactly two draws (gap + torn tail) regardless of journal
  /// state, so the timeline is independent of fsync policy.
  [[nodiscard]] std::optional<CrashEvent> next_metadata_crash(Seconds now);

  // --- fail-slow episodes ---
  //
  // Fail-slow components stay online: nothing here interacts with the
  // fail-stop timelines above. The scheduler samples the multiplier at the
  // start of each activity and holds it for the activity's duration (a
  // piecewise-constant approximation of the episode profile).

  /// Effective transfer-rate multiplier of drive `d` at `at`, in (0, 1].
  /// 1.0 (with no draws consumed) when fail-slow is disabled. Random and
  /// planted episodes compose by taking the harsher multiplier.
  [[nodiscard]] double drive_rate_multiplier(DriveId d, Seconds at);

  /// Exchange-speed multiplier of library `lib`'s robot at `at`, in
  /// (0, 1]; the move's base time divides by it.
  [[nodiscard]] double robot_rate_multiplier(LibraryId lib, Seconds at);

  /// Ground truth: is drive `d` inside a slow episode (random or planted)
  /// at `at`? Unlike drive_rate_multiplier() this is true from the exact
  /// onset even under a progressive ramp (where the multiplier starts at 1).
  [[nodiscard]] bool drive_is_slow(DriveId d, Seconds at);

  /// Onset of the slow episode `d` is in at `at` (it must be in one). With
  /// overlapping random and planted episodes, the earlier onset.
  [[nodiscard]] Seconds drive_slow_since(DriveId d, Seconds at);

  /// End of the slow episode `d` is in at `at` (it must be in one). With
  /// overlapping episodes, the later end.
  [[nodiscard]] Seconds drive_slow_until(DriveId d, Seconds at);

  /// Future peek: onset of the first slow episode of `d` intersecting
  /// [at, at + horizon), nullopt when none does. Walks window renewals on
  /// timeline *copies* like next_online_at(), so no real window is
  /// consumed ahead of time.
  [[nodiscard]] std::optional<Seconds> drive_slow_within(DriveId d, Seconds at,
                                                         Seconds horizon);

 private:
  /// Lazy alternating-renewal outage timeline of one device (a drive's
  /// hardware, or a whole library). The window [fail_at, repair_at) is the
  /// next (or current) outage; repair_at is +infinity for a permanent
  /// failure (a drive that never repairs, a library destroyed by a site
  /// disaster).
  struct RenewalTimeline {
    Rng rng;
    Seconds fail_at{};
    Seconds repair_at{};
    bool permanent = false;
    bool started = false;
  };

  /// Lazy alternating-renewal timeline of one component's fail-slow
  /// episodes: [begin_at, end_at) is the next (or current) slow window,
  /// `severity` its drawn rate multiplier. Windows are materialised (and
  /// counted) lazily, exactly like the fail-stop timelines.
  struct SlowTimeline {
    Rng rng;
    Seconds begin_at{};
    Seconds end_at{};
    double severity = 1.0;
    bool started = false;
  };

  /// Lazy renewal timeline of one cartridge's silent decay: `next_at` is
  /// the next damage event; `accrued` counts materialised events,
  /// `observed` the prefix already surfaced into media_error_counts_.
  struct DecayTimeline {
    Rng rng;
    Seconds next_at{};
    std::uint32_t accrued = 0;
    std::uint32_t observed = 0;
    bool started = false;
  };

  /// Materialises outage windows until `t` falls before repair_at.
  /// Parameterised so drive and library timelines share one renewal core.
  void advance(RenewalTimeline& tl, Seconds t, Seconds mtbf, Seconds mttr,
               double permanent_fraction);
  void advance_drive(RenewalTimeline& tl, Seconds t);
  void advance_library(RenewalTimeline& tl, Seconds t);
  RenewalTimeline& timeline(DriveId d);
  RenewalTimeline& library_timeline(LibraryId lib);
  [[nodiscard]] LibraryId lib_of(DriveId d) const;
  /// Grows the per-library state vectors to cover `index`. Lazy growth is
  /// deterministic because fork() is index-addressed and const on the
  /// stored base streams, so a library added late draws exactly what it
  /// would have drawn had the fleet started larger.
  void ensure_library(std::uint32_t index);
  /// Materialises decay events of `t` up to `at`.
  DecayTimeline& decay(TapeId t, Seconds at);
  /// Materialises slow windows until `t` falls before end_at. `robot`
  /// selects which episode counters and knobs apply; `count` is false only
  /// for future-peeking walks on timeline copies, whose windows will be
  /// counted when the real timeline reaches them.
  void advance_slow(SlowTimeline& tl, Seconds t, bool robot,
                    bool count = true);
  /// Multiplier of a slow window at `t` (it must be inside the window),
  /// applying the progressive ramp for drive episodes when configured.
  [[nodiscard]] double slow_multiplier(const SlowTimeline& tl, Seconds t,
                                       bool robot) const;
  /// Whether the planted episode covers drive `d` at `t`; counts the
  /// episode on first contact.
  [[nodiscard]] bool planted_covers(DriveId d, Seconds t);
  SlowTimeline& slow_timeline(DriveId d);
  SlowTimeline& robot_slow_timeline(LibraryId lib);
  /// Health implied by an observed error count, per the thresholds.
  [[nodiscard]] tape::CartridgeHealth health_for(std::uint32_t count) const;

  FaultConfig config_;
  FaultCounters counters_;
  std::uint32_t drives_per_library_ = 0;
  Rng robot_base_;   ///< Stored so per-library vectors can grow lazily.
  Rng outage_base_;  ///< Stored so per-library vectors can grow lazily.
  Rng robotslow_base_;  ///< Stored so per-library vectors can grow lazily.
  std::vector<RenewalTimeline> drives_;
  std::vector<Rng> mount_rngs_;    ///< One per drive.
  std::vector<Rng> media_rngs_;    ///< One per tape.
  std::vector<Rng> robot_rngs_;    ///< One per library, grown on demand.
  std::vector<RenewalTimeline> outages_;  ///< One per library, grown on demand.
  std::vector<std::uint32_t> media_error_counts_;  ///< One per tape.
  std::vector<DecayTimeline> decay_;               ///< One per tape.
  std::vector<SlowTimeline> slow_drives_;  ///< One per drive.
  std::vector<SlowTimeline> slow_robots_;  ///< One per library, on demand.
  bool planted_counted_ = false;  ///< Planted episode counted on first hit.
  Rng crash_rng_;                 ///< Metadata crash arrivals + torn draws.
  Seconds next_crash_at_{};       ///< Next unobserved crash arrival.
  bool crash_started_ = false;
};

}  // namespace tapesim::fault
