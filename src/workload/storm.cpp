#include "workload/storm.hpp"

#include <cmath>
#include <stdexcept>
#include <string>

#include "util/assert.hpp"

namespace tapesim::workload {

namespace {

/// Exponential draw with the given mean via inverse CDF.
double exponential(Rng& rng, double mean) {
  return -std::log(1.0 - rng.uniform()) * mean;
}

Priority draw_priority(Rng& rng, double batch_fraction) {
  return rng.uniform() < batch_fraction ? Priority::kBatch
                                        : Priority::kForeground;
}

}  // namespace

double StormConfig::mean_rate() const {
  // Stationary probability of each state is proportional to its mean
  // sojourn time.
  const double calm = mean_calm_duration.count();
  const double burst = mean_burst_duration.count();
  return (base_rate * calm + burst_rate * burst) / (calm + burst);
}

void StormConfig::validate() const {
  auto require = [](bool ok, const char* what) {
    if (!ok) throw std::invalid_argument(std::string{"StormConfig: "} + what);
  };
  require(base_rate > 0.0, "base rate must be positive");
  require(burst_rate >= base_rate, "burst rate must not be below base rate");
  require(mean_burst_duration > Seconds{0.0}, "burst duration must be positive");
  require(mean_calm_duration > Seconds{0.0}, "calm duration must be positive");
  require(batch_fraction >= 0.0 && batch_fraction <= 1.0,
          "batch fraction must be a probability");
}

std::vector<TimedRequest> storm_arrivals(const RequestSampler& sampler,
                                         const StormConfig& config,
                                         std::uint32_t count, Rng& rng) {
  config.validate();
  std::vector<TimedRequest> arrivals;
  arrivals.reserve(count);

  double clock = 0.0;
  bool burst = false;
  double next_switch = exponential(rng, config.mean_calm_duration.count());
  for (std::uint32_t i = 0; i < count; ++i) {
    for (;;) {
      const double rate = burst ? config.burst_rate : config.base_rate;
      const double candidate = clock + exponential(rng, 1.0 / rate);
      if (candidate <= next_switch) {
        clock = candidate;
        break;
      }
      // The modulating chain flips before the candidate arrival. Because
      // the exponential is memoryless, discarding the partial draw and
      // redrawing at the new state's rate from the switch instant is an
      // exact simulation of the MMPP, not an approximation.
      clock = next_switch;
      burst = !burst;
      const double mean = burst ? config.mean_burst_duration.count()
                                : config.mean_calm_duration.count();
      next_switch = clock + exponential(rng, mean);
    }
    arrivals.push_back(TimedRequest{Seconds{clock}, sampler.sample(rng),
                                    draw_priority(rng, config.batch_fraction)});
  }
  return arrivals;
}

std::vector<TimedRequest> steady_arrivals(const RequestSampler& sampler,
                                          double rate, double batch_fraction,
                                          std::uint32_t count, Rng& rng) {
  TAPESIM_ASSERT_MSG(rate > 0.0, "arrival rate must be positive");
  TAPESIM_ASSERT_MSG(batch_fraction >= 0.0 && batch_fraction <= 1.0,
                     "batch fraction must be a probability");
  std::vector<TimedRequest> arrivals;
  arrivals.reserve(count);
  double clock = 0.0;
  for (std::uint32_t i = 0; i < count; ++i) {
    clock += exponential(rng, 1.0 / rate);
    arrivals.push_back(TimedRequest{Seconds{clock}, sampler.sample(rng),
                                    draw_priority(rng, batch_fraction)});
  }
  return arrivals;
}

}  // namespace tapesim::workload
