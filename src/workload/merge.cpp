#include "workload/merge.hpp"

#include <stdexcept>

namespace tapesim::workload {

Workload merge_workloads(const Workload& base, const Workload& extension,
                         double extension_weight) {
  if (!(extension_weight > 0.0 && extension_weight < 1.0)) {
    throw std::invalid_argument("extension weight must be in (0, 1)");
  }
  const std::uint32_t object_shift = base.object_count();
  const std::uint32_t request_shift = base.request_count();

  std::vector<ObjectInfo> objects;
  objects.reserve(base.object_count() + extension.object_count());
  for (const ObjectInfo& o : base.objects()) objects.push_back(o);
  for (const ObjectInfo& o : extension.objects()) {
    objects.push_back(ObjectInfo{ObjectId{o.id.value() + object_shift},
                                 o.size});
  }

  std::vector<Request> requests;
  requests.reserve(base.request_count() + extension.request_count());
  for (const Request& r : base.requests()) {
    Request copy = r;
    copy.probability *= 1.0 - extension_weight;
    requests.push_back(std::move(copy));
  }
  for (const Request& r : extension.requests()) {
    Request copy;
    copy.id = RequestId{r.id.value() + request_shift};
    copy.probability = r.probability * extension_weight;
    copy.objects.reserve(r.objects.size());
    for (const ObjectId o : r.objects) {
      copy.objects.push_back(ObjectId{o.value() + object_shift});
    }
    requests.push_back(std::move(copy));
  }

  Workload merged{std::move(objects), std::move(requests)};
  merged.validate();
  return merged;
}

}  // namespace tapesim::workload
