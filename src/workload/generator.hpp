// Synthetic workload generation (Section 6 "Simulation Settings").
//
//  * 30,000 objects; sizes follow a power law within a predefined range.
//  * 300 predefined requests; objects-per-request follows a power law in
//    [100, 150]; the objects of a request are chosen uniformly at random
//    (the same object may appear in several requests).
//  * Request popularity is Zipf: P_r = c * r^-alpha, alpha in [0, 1].
#pragma once

#include <cstdint>

#include "util/distributions.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"
#include "workload/model.hpp"

namespace tapesim::workload {

struct WorkloadConfig {
  std::uint32_t num_objects = 30'000;
  std::uint32_t num_requests = 300;

  std::uint32_t min_objects_per_request = 100;
  std::uint32_t max_objects_per_request = 150;
  /// Power-law shape for objects-per-request.
  double objects_per_request_alpha = 1.5;

  /// Object size power law: bounded Pareto on [min, max] with this shape.
  double object_size_alpha = 1.2;
  Bytes min_object_size{500ULL * 1000 * 1000};        // 0.5 GB
  Bytes max_object_size{32ULL * 1000 * 1000 * 1000};  // 32 GB

  /// Zipf skew of request popularity (0 = uniform, 1 = most skewed).
  double zipf_alpha = 0.3;

  /// Latent co-access structure (paper assumption 1: "objects form clusters
  /// and a cluster of objects have high chance to be retrieved together").
  /// Objects are partitioned into `object_groups` random groups; each
  /// request draws a `request_locality` fraction of its objects from one
  /// home group and the rest uniformly from everywhere. locality 0 (or one
  /// group) degenerates to fully uniform choice — under which *no* placement
  /// can co-locate a request (~70% of each request's objects would be
  /// shared with dozens of unrelated requests), contradicting assumption 1.
  /// The sensitivity of every scheme to this knob is itself an experiment
  /// (bench_ablation_locality).
  std::uint32_t object_groups = 200;
  double request_locality = 0.9;

  /// Table-1-era defaults yielding an average request size near the 213 GB
  /// the paper quotes for Figure 6.
  [[nodiscard]] static WorkloadConfig paper_default() {
    return WorkloadConfig{};
  }

  /// Returns a copy whose object-size range is rescaled (keeping the
  /// max/min ratio and the shape) so the *expected* request size equals
  /// `target`. This is how the paper sweeps Figure 7: "the request size is
  /// changed by changing the object size".
  [[nodiscard]] WorkloadConfig with_average_request_size(Bytes target) const;

  /// Analytic expected objects-per-request under this config.
  [[nodiscard]] double expected_objects_per_request() const;
  /// Analytic expected object size under this config.
  [[nodiscard]] Bytes expected_object_size() const;
  /// Analytic expected request size (product of the two).
  [[nodiscard]] Bytes expected_request_size() const;

  void validate() const;
};

/// Generates the full workload. Deterministic given (config, rng state).
[[nodiscard]] Workload generate_workload(const WorkloadConfig& config,
                                         Rng& rng);

/// Draws simulated request ids by popularity (the "200 repeats" loop).
class RequestSampler {
 public:
  explicit RequestSampler(const Workload& workload);

  [[nodiscard]] RequestId sample(Rng& rng) const;

 private:
  DiscreteDistribution dist_;
};

}  // namespace tapesim::workload
