#include "workload/generator.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/assert.hpp"

namespace tapesim::workload {

void WorkloadConfig::validate() const {
  auto require = [](bool ok, const char* what) {
    if (!ok) throw std::invalid_argument(std::string{"WorkloadConfig: "} + what);
  };
  require(num_objects > 0, "need objects");
  require(num_requests > 0, "need requests");
  require(min_objects_per_request >= 1, "requests ask for >= 1 object");
  require(max_objects_per_request >= min_objects_per_request,
          "objects-per-request range inverted");
  require(max_objects_per_request <= num_objects,
          "a request cannot ask for more objects than exist");
  require(min_object_size.count() > 0, "objects must be non-empty");
  require(max_object_size >= min_object_size, "size range inverted");
  require(object_size_alpha > 0.0, "size power-law shape must be positive");
  require(objects_per_request_alpha > 0.0, "count shape must be positive");
  require(zipf_alpha >= 0.0, "zipf alpha must be >= 0");
  require(request_locality >= 0.0 && request_locality <= 1.0,
          "request locality is a fraction");
}

double WorkloadConfig::expected_objects_per_request() const {
  if (min_objects_per_request == max_objects_per_request) {
    return static_cast<double>(min_objects_per_request);
  }
  return BoundedParetoDistribution(
             static_cast<double>(min_objects_per_request),
             static_cast<double>(max_objects_per_request),
             objects_per_request_alpha)
      .mean();
}

Bytes WorkloadConfig::expected_object_size() const {
  if (min_object_size == max_object_size) return min_object_size;
  const double mean = BoundedParetoDistribution(min_object_size.as_double(),
                                                max_object_size.as_double(),
                                                object_size_alpha)
                          .mean();
  return Bytes{static_cast<Bytes::value_type>(mean)};
}

Bytes WorkloadConfig::expected_request_size() const {
  return Bytes{static_cast<Bytes::value_type>(
      expected_object_size().as_double() * expected_objects_per_request())};
}

WorkloadConfig WorkloadConfig::with_average_request_size(Bytes target) const {
  WorkloadConfig scaled = *this;
  const double current = expected_request_size().as_double();
  TAPESIM_ASSERT(current > 0.0);
  const double factor = target.as_double() / current;
  scaled.min_object_size = Bytes{static_cast<Bytes::value_type>(
      std::max(1.0, min_object_size.as_double() * factor))};
  scaled.max_object_size = Bytes{static_cast<Bytes::value_type>(
      std::max(1.0, max_object_size.as_double() * factor))};
  return scaled;
}

Workload generate_workload(const WorkloadConfig& config, Rng& rng) {
  config.validate();

  // Independent substreams: tweaking the request structure never perturbs
  // the object sizes and vice versa.
  Rng size_rng = rng.fork(0x5153);
  Rng count_rng = rng.fork(0x434E);
  Rng pick_rng = rng.fork(0x504B);

  std::vector<ObjectInfo> objects;
  objects.reserve(config.num_objects);
  if (config.min_object_size == config.max_object_size) {
    for (std::uint32_t i = 0; i < config.num_objects; ++i) {
      objects.push_back(ObjectInfo{ObjectId{i}, config.min_object_size});
    }
  } else {
    const BoundedParetoDistribution size_dist(
        config.min_object_size.as_double(), config.max_object_size.as_double(),
        config.object_size_alpha);
    for (std::uint32_t i = 0; i < config.num_objects; ++i) {
      const auto size =
          static_cast<Bytes::value_type>(std::round(size_dist.sample(size_rng)));
      objects.push_back(ObjectInfo{ObjectId{i}, Bytes{size}});
    }
  }

  const ZipfDistribution popularity(config.num_requests, config.zipf_alpha);

  // Latent co-access groups: a random partition of the object ids.
  const std::uint32_t group_count =
      std::max<std::uint32_t>(1, std::min(config.object_groups,
                                          config.num_objects));
  std::vector<std::uint32_t> permutation(config.num_objects);
  for (std::uint32_t i = 0; i < config.num_objects; ++i) permutation[i] = i;
  Rng group_rng = rng.fork(0x4752);
  shuffle(permutation, group_rng);
  std::vector<std::vector<std::uint32_t>> groups(group_count);
  for (std::uint32_t i = 0; i < config.num_objects; ++i) {
    groups[i % group_count].push_back(permutation[i]);
  }

  std::vector<Request> requests;
  requests.reserve(config.num_requests);
  std::vector<bool> chosen(config.num_objects, false);
  for (std::uint32_t r = 0; r < config.num_requests; ++r) {
    Request req;
    req.id = RequestId{r};
    req.probability = popularity.probabilities()[r];

    std::uint32_t count = config.min_objects_per_request;
    if (config.max_objects_per_request > config.min_objects_per_request) {
      const BoundedParetoDistribution count_dist(
          static_cast<double>(config.min_objects_per_request),
          static_cast<double>(config.max_objects_per_request),
          config.objects_per_request_alpha);
      count = static_cast<std::uint32_t>(
          std::llround(count_dist.sample(count_rng)));
      count = std::clamp(count, config.min_objects_per_request,
                         config.max_objects_per_request);
    }

    // Local picks from the request's home group, then uniform strays.
    const auto& home =
        groups[pick_rng.uniform_below(group_count)];
    auto local_target = static_cast<std::uint32_t>(
        std::llround(config.request_locality * static_cast<double>(count)));
    local_target = std::min<std::uint32_t>(
        {local_target, count, static_cast<std::uint32_t>(home.size())});

    req.objects.reserve(count);
    const auto local_picks = sample_without_replacement(
        static_cast<std::uint32_t>(home.size()), local_target, pick_rng);
    for (const std::uint32_t idx : local_picks) {
      req.objects.push_back(ObjectId{home[idx]});
      chosen[home[idx]] = true;
    }
    while (req.objects.size() < count) {
      const auto candidate = static_cast<std::uint32_t>(
          pick_rng.uniform_below(config.num_objects));
      if (chosen[candidate]) continue;
      chosen[candidate] = true;
      req.objects.push_back(ObjectId{candidate});
    }
    for (const ObjectId o : req.objects) chosen[o.index()] = false;
    requests.push_back(std::move(req));
  }

  Workload workload{std::move(objects), std::move(requests)};
  workload.validate();
  return workload;
}

RequestSampler::RequestSampler(const Workload& workload)
    : dist_([&] {
        std::vector<double> weights;
        weights.reserve(workload.request_count());
        for (const Request& r : workload.requests())
          weights.push_back(r.probability);
        return weights;
      }()) {}

RequestId RequestSampler::sample(Rng& rng) const {
  return RequestId{static_cast<std::uint32_t>(dist_.sample(rng))};
}

}  // namespace tapesim::workload
