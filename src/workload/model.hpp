// The workload model: objects, requests, and derived access statistics.
//
// Section 3 of the paper: a set of N_obj objects of varying sizes; a set of
// N_req requests, each asking for one or more whole objects; per-request
// access probabilities known a priori (Zipf over request rank); the same
// object may appear in several requests. Object probability is derived as
// P(O) = sum of P(R) over all requests R containing O (placement Step 1).
#pragma once

#include <cstdint>
#include <vector>

#include "util/assert.hpp"
#include "util/ids.hpp"
#include "util/units.hpp"

namespace tapesim::workload {

struct ObjectInfo {
  ObjectId id;
  Bytes size;
};

struct Request {
  RequestId id;
  /// Access probability (all requests sum to 1).
  double probability = 0.0;
  /// Distinct objects this request retrieves, in no particular order.
  std::vector<ObjectId> objects;
  /// User-facing class consulted by the overload shedder; placement and the
  /// baseline simulator ignore it.
  Priority priority = Priority::kForeground;
};

class Workload {
 public:
  Workload(std::vector<ObjectInfo> objects, std::vector<Request> requests);

  [[nodiscard]] const std::vector<ObjectInfo>& objects() const {
    return objects_;
  }
  [[nodiscard]] const std::vector<Request>& requests() const {
    return requests_;
  }
  [[nodiscard]] std::uint32_t object_count() const {
    return static_cast<std::uint32_t>(objects_.size());
  }
  [[nodiscard]] std::uint32_t request_count() const {
    return static_cast<std::uint32_t>(requests_.size());
  }

  [[nodiscard]] const ObjectInfo& object(ObjectId id) const {
    TAPESIM_ASSERT(id.valid() && id.index() < objects_.size());
    return objects_[id.index()];
  }
  [[nodiscard]] const Request& request(RequestId id) const {
    TAPESIM_ASSERT(id.valid() && id.index() < requests_.size());
    return requests_[id.index()];
  }
  [[nodiscard]] Bytes object_size(ObjectId id) const {
    TAPESIM_ASSERT(id.valid() && id.index() < objects_.size());
    return objects_[id.index()].size;
  }

  /// Derived P(O) = Σ_{R ∋ O} P(R).
  [[nodiscard]] double object_probability(ObjectId id) const {
    return object_probability_[id.index()];
  }
  [[nodiscard]] const std::vector<double>& object_probabilities() const {
    return object_probability_;
  }

  /// Probability density used by the placement sort: P(O) / size(O).
  [[nodiscard]] double probability_density(ObjectId id) const;

  /// Object "load" used by tape load balancing: P(O) * size(O).
  [[nodiscard]] double object_load(ObjectId id) const;

  /// Total bytes a request retrieves (objects within a request are
  /// distinct, so a plain sum).
  [[nodiscard]] Bytes request_bytes(RequestId id) const;

  [[nodiscard]] Bytes total_object_bytes() const { return total_bytes_; }
  /// Probability-weighted mean request size (what the paper's x-axes call
  /// "average request size").
  [[nodiscard]] Bytes mean_request_bytes() const;

  /// Structural checks: object ids dense, request objects valid & distinct,
  /// probabilities normalized. Aborts on violation.
  void validate() const;

 private:
  std::vector<ObjectInfo> objects_;
  std::vector<Request> requests_;
  std::vector<double> object_probability_;
  Bytes total_bytes_{};
};

}  // namespace tapesim::workload
