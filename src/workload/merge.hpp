// Combining workload generations.
//
// The paper's conclusion notes that real systems move objects to tape
// periodically, with only local knowledge at each round. To study that
// (bench_incremental), successive generations of objects/requests are
// merged into one cumulative workload: object and request ids of the
// extension are shifted past the base's, and request probabilities are
// re-weighted so the combined distribution sums to one.
#pragma once

#include "workload/model.hpp"

namespace tapesim::workload {

/// Merges `extension` behind `base`. The extension's requests receive
/// `extension_weight` of the total probability mass (base keeps the rest);
/// weight must lie in (0, 1).
[[nodiscard]] Workload merge_workloads(const Workload& base,
                                       const Workload& extension,
                                       double extension_weight);

}  // namespace tapesim::workload
