// Flash-crowd ("storm") arrival generation.
//
// A two-state Markov-modulated Poisson process (MMPP-2): arrivals follow a
// Poisson process whose rate switches between a calm base rate and a burst
// rate; the time spent in each state is exponentially distributed. This is
// the standard parsimonious model for bursty restore traffic — a steady
// trickle of user recalls punctuated by flash crowds (a dataset republished,
// a mass-restore after an outage) during which the arrival rate jumps by an
// order of magnitude while tape service times stay minutes-long.
//
// Each arrival also carries a user priority drawn from `batch_fraction`, so
// the overload shedder in sched/overload has two classes to discriminate.
#pragma once

#include <cstdint>
#include <vector>

#include "util/ids.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"
#include "workload/generator.hpp"

namespace tapesim::workload {

/// One timed request arrival with its user class.
struct TimedRequest {
  Seconds time;
  RequestId request;
  Priority priority = Priority::kForeground;
};

struct StormConfig {
  /// Calm-state arrival rate (requests/second).
  double base_rate = 1.0 / 600.0;
  /// Burst-state arrival rate; the flash crowd.
  double burst_rate = 1.0 / 30.0;
  /// Mean sojourn in the burst state (seconds).
  Seconds mean_burst_duration{1800.0};
  /// Mean sojourn in the calm state (seconds).
  Seconds mean_calm_duration{14'400.0};
  /// Fraction of arrivals carrying Priority::kBatch.
  double batch_fraction = 0.5;

  /// Long-run average arrival rate of the MMPP (rate weighted by the
  /// stationary distribution of the modulating chain).
  [[nodiscard]] double mean_rate() const;

  void validate() const;
};

/// Draws `count` MMPP arrivals with request ids sampled by popularity and
/// priorities drawn iid from `batch_fraction`. Deterministic given the rng
/// state; arrivals are returned sorted by time (they are generated in
/// order). The modulating chain starts in the calm state.
[[nodiscard]] std::vector<TimedRequest> storm_arrivals(
    const RequestSampler& sampler, const StormConfig& config,
    std::uint32_t count, Rng& rng);

/// Constant-rate Poisson arrivals with priorities — the storm's calm
/// baseline, used for steady-state estimator validation.
[[nodiscard]] std::vector<TimedRequest> steady_arrivals(
    const RequestSampler& sampler, double rate, double batch_fraction,
    std::uint32_t count, Rng& rng);

}  // namespace tapesim::workload
