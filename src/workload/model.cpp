#include "workload/model.hpp"

#include <cmath>
#include <unordered_set>

#include "util/assert.hpp"

namespace tapesim::workload {

Workload::Workload(std::vector<ObjectInfo> objects,
                   std::vector<Request> requests)
    : objects_(std::move(objects)), requests_(std::move(requests)) {
  object_probability_.assign(objects_.size(), 0.0);
  for (const Request& r : requests_) {
    for (const ObjectId o : r.objects) {
      TAPESIM_ASSERT(o.valid() && o.index() < objects_.size());
      object_probability_[o.index()] += r.probability;
    }
  }
  for (const ObjectInfo& o : objects_) total_bytes_ += o.size;
}

double Workload::probability_density(ObjectId id) const {
  const ObjectInfo& o = objects_[id.index()];
  TAPESIM_ASSERT(o.size.count() > 0);
  return object_probability_[id.index()] / o.size.as_double();
}

double Workload::object_load(ObjectId id) const {
  return object_probability_[id.index()] *
         objects_[id.index()].size.as_double();
}

Bytes Workload::request_bytes(RequestId id) const {
  Bytes total{};
  for (const ObjectId o : requests_[id.index()].objects) {
    total += objects_[o.index()].size;
  }
  return total;
}

Bytes Workload::mean_request_bytes() const {
  double weighted = 0.0;
  for (const Request& r : requests_) {
    weighted += r.probability * request_bytes(r.id).as_double();
  }
  return Bytes{static_cast<Bytes::value_type>(weighted)};
}

void Workload::validate() const {
  for (std::size_t i = 0; i < objects_.size(); ++i) {
    TAPESIM_ASSERT_MSG(objects_[i].id.index() == i, "object ids must be dense");
    TAPESIM_ASSERT_MSG(objects_[i].size.count() > 0,
                       "objects must be non-empty");
  }
  double prob_sum = 0.0;
  std::unordered_set<std::uint32_t> seen;
  for (std::size_t i = 0; i < requests_.size(); ++i) {
    const Request& r = requests_[i];
    TAPESIM_ASSERT_MSG(r.id.index() == i, "request ids must be dense");
    TAPESIM_ASSERT_MSG(!r.objects.empty(), "requests ask for >= 1 object");
    TAPESIM_ASSERT_MSG(r.probability >= 0.0, "probabilities are nonnegative");
    prob_sum += r.probability;
    seen.clear();
    for (const ObjectId o : r.objects) {
      TAPESIM_ASSERT_MSG(o.valid() && o.index() < objects_.size(),
                         "request references unknown object");
      TAPESIM_ASSERT_MSG(seen.insert(o.value()).second,
                         "request lists an object twice");
    }
  }
  TAPESIM_ASSERT_MSG(std::abs(prob_sum - 1.0) < 1e-9,
                     "request probabilities must sum to 1");
}

}  // namespace tapesim::workload
