#include "tape/specs.hpp"

#include <sstream>
#include <stdexcept>

namespace tapesim::tape {

namespace {

/// Shared exception boundary: every throwing validate() forwards here.
void throw_if_invalid(const Status& status) {
  if (!status.ok()) throw std::invalid_argument(status.message());
}

}  // namespace

Status DriveSpec::try_validate() const {
  StatusBuilder check("DriveSpec");
  check.require(transfer_rate.count() > 0.0, "transfer rate must be positive");
  check.require(load_thread_time.count() >= 0.0, "load time must be >= 0");
  check.require(unload_time.count() >= 0.0, "unload time must be >= 0");
  check.require(max_rewind_time.count() > 0.0, "max rewind must be positive");
  check.require(avg_first_file_access.count() > 0.0,
                "average first-file access must be positive");
  return check.take();
}

void DriveSpec::validate() const { throw_if_invalid(try_validate()); }

Status LibrarySpec::try_validate() const {
  StatusBuilder check("LibrarySpec");
  check.require(drives_per_library > 0, "need at least one drive");
  check.require(tapes_per_library >= drives_per_library,
                "need at least as many tapes as drives");
  check.require(tape_capacity.count() > 0, "tape capacity must be positive");
  check.require(cell_to_drive_time.count() >= 0.0, "robot move must be >= 0");
  check.merge(drive.try_validate());
  return check.take();
}

void LibrarySpec::validate() const { throw_if_invalid(try_validate()); }

Status SystemSpec::try_validate() const {
  StatusBuilder check("SystemSpec");
  check.require(num_libraries > 0, "need at least one library");
  check.merge(library.try_validate());
  return check.take();
}

void SystemSpec::validate() const { throw_if_invalid(try_validate()); }

SystemSpec SystemSpec::paper_default() {
  return SystemSpec{};  // all defaults follow Table 1
}

std::string SystemSpec::describe() const {
  std::ostringstream ss;
  ss << num_libraries << " libraries x " << library.drives_per_library
     << " drives, " << library.tapes_per_library << " tapes/library @ "
     << library.tape_capacity << ", drive "
     << library.drive.transfer_rate;
  return ss.str();
}

}  // namespace tapesim::tape
