#include "tape/specs.hpp"

#include <sstream>
#include <stdexcept>

namespace tapesim::tape {

void DriveSpec::validate() const {
  auto require = [](bool ok, const char* what) {
    if (!ok) throw std::invalid_argument(std::string{"DriveSpec: "} + what);
  };
  require(transfer_rate.count() > 0.0, "transfer rate must be positive");
  require(load_thread_time.count() >= 0.0, "load time must be >= 0");
  require(unload_time.count() >= 0.0, "unload time must be >= 0");
  require(max_rewind_time.count() > 0.0, "max rewind must be positive");
  require(avg_first_file_access.count() > 0.0,
          "average first-file access must be positive");
}

void LibrarySpec::validate() const {
  auto require = [](bool ok, const char* what) {
    if (!ok) throw std::invalid_argument(std::string{"LibrarySpec: "} + what);
  };
  require(drives_per_library > 0, "need at least one drive");
  require(tapes_per_library >= drives_per_library,
          "need at least as many tapes as drives");
  require(tape_capacity.count() > 0, "tape capacity must be positive");
  require(cell_to_drive_time.count() >= 0.0, "robot move must be >= 0");
  drive.validate();
}

void SystemSpec::validate() const {
  if (num_libraries == 0)
    throw std::invalid_argument("SystemSpec: need at least one library");
  library.validate();
}

SystemSpec SystemSpec::paper_default() {
  return SystemSpec{};  // all defaults follow Table 1
}

std::string SystemSpec::describe() const {
  std::ostringstream ss;
  ss << num_libraries << " libraries x " << library.drives_per_library
     << " drives, " << library.tapes_per_library << " tapes/library @ "
     << library.tape_capacity << ", drive "
     << library.drive.transfer_rate;
  return ss.str();
}

}  // namespace tapesim::tape
