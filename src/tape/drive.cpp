#include "tape/drive.hpp"

#include "util/assert.hpp"

namespace tapesim::tape {

const char* to_string(DriveState s) {
  switch (s) {
    case DriveState::kEmpty: return "empty";
    case DriveState::kIdle: return "idle";
    case DriveState::kLoading: return "loading";
    case DriveState::kLocating: return "locating";
    case DriveState::kTransferring: return "transferring";
    case DriveState::kRewinding: return "rewinding";
    case DriveState::kUnloading: return "unloading";
    case DriveState::kFailed: return "failed";
  }
  return "?";
}

TapeDrive::TapeDrive(DriveId id, const DriveSpec& spec, Bytes tape_capacity)
    : id_(id), spec_(spec), motion_(spec, tape_capacity) {
  spec_.validate();
}

void TapeDrive::transition(DriveState to) {
  const DriveState from = state_;
  state_ = to;
  if (observer_ != nullptr) observer_->on_transition(*this, from, to);
}

Seconds TapeDrive::start_load(TapeId t) {
  TAPESIM_ASSERT_MSG(state_ == DriveState::kEmpty,
                     "load requires an empty drive");
  TAPESIM_ASSERT_MSG(t.valid(), "cannot load an invalid tape id");
  mounted_ = t;
  transition(DriveState::kLoading);
  return spec_.load_thread_time;
}

void TapeDrive::finish_load() {
  TAPESIM_ASSERT(state_ == DriveState::kLoading);
  head_ = Bytes{0};
  transition(DriveState::kIdle);
  stats_.loading += spec_.load_thread_time;
  ++stats_.mounts;
}

void TapeDrive::setup_mounted(TapeId t) {
  TAPESIM_ASSERT_MSG(state_ == DriveState::kEmpty,
                     "setup mount requires an empty drive");
  TAPESIM_ASSERT_MSG(t.valid(), "cannot mount an invalid tape id");
  mounted_ = t;
  head_ = Bytes{0};
  transition(DriveState::kIdle);
}

Seconds TapeDrive::start_locate(Bytes target) {
  TAPESIM_ASSERT_MSG(state_ == DriveState::kIdle,
                     "locate requires an idle, mounted drive");
  pending_target_ = target;
  transition(DriveState::kLocating);
  return motion_.locate_time(head_, target);
}

void TapeDrive::finish_locate() {
  TAPESIM_ASSERT(state_ == DriveState::kLocating);
  stats_.locating += motion_.locate_time(head_, pending_target_);
  head_ = pending_target_;
  transition(DriveState::kIdle);
}

Seconds TapeDrive::start_transfer(Bytes amount, double rate_multiplier) {
  TAPESIM_ASSERT_MSG(state_ == DriveState::kIdle,
                     "transfer requires an idle, mounted drive");
  TAPESIM_ASSERT_MSG(head_ + amount <= motion_.capacity(),
                     "transfer would run off the end of the tape");
  TAPESIM_ASSERT_MSG(rate_multiplier > 0.0 && rate_multiplier <= 1.0,
                     "rate multiplier must be in (0, 1]");
  pending_target_ = head_ + amount;
  effective_rate_ = BytesPerSecond{spec_.transfer_rate.count() *
                                   rate_multiplier};
  transition(DriveState::kTransferring);
  return duration_for(amount, effective_rate_);
}

void TapeDrive::finish_transfer() {
  TAPESIM_ASSERT(state_ == DriveState::kTransferring);
  const Bytes amount = pending_target_ - head_;
  stats_.transferring += duration_for(amount, effective_rate_);
  stats_.bytes_read += amount;
  ++stats_.objects_read;
  head_ = pending_target_;
  transition(DriveState::kIdle);
}

Seconds TapeDrive::start_rewind() {
  TAPESIM_ASSERT_MSG(state_ == DriveState::kIdle,
                     "rewind requires an idle, mounted drive");
  transition(DriveState::kRewinding);
  return motion_.rewind_time(head_);
}

void TapeDrive::finish_rewind() {
  TAPESIM_ASSERT(state_ == DriveState::kRewinding);
  stats_.rewinding += motion_.rewind_time(head_);
  head_ = Bytes{0};
  transition(DriveState::kIdle);
}

Seconds TapeDrive::start_unload() {
  TAPESIM_ASSERT_MSG(state_ == DriveState::kIdle,
                     "unload requires an idle drive");
  TAPESIM_ASSERT_MSG(head_ == Bytes{0}, "must rewind before unloading");
  transition(DriveState::kUnloading);
  return spec_.unload_time;
}

TapeId TapeDrive::finish_unload() {
  TAPESIM_ASSERT(state_ == DriveState::kUnloading);
  stats_.unloading += spec_.unload_time;
  const TapeId t = mounted_;
  mounted_ = TapeId{};
  transition(DriveState::kEmpty);
  return t;
}

namespace {

/// Bytes streamed in `elapsed` at `rate`, capped at `limit`.
Bytes bytes_streamed(Seconds elapsed, BytesPerSecond rate, Bytes limit) {
  const double raw = elapsed.count() * rate.count();
  const auto streamed = Bytes{static_cast<Bytes::value_type>(
      raw < 0.0 ? 0.0 : raw)};
  return streamed < limit ? streamed : limit;
}

}  // namespace

void TapeDrive::fail(Seconds elapsed) {
  TAPESIM_ASSERT_MSG(state_ != DriveState::kFailed, "drive already failed");
  TAPESIM_ASSERT_MSG(elapsed.count() >= 0.0, "negative activity time");
  switch (state_) {
    case DriveState::kLoading:
      stats_.loading += elapsed;
      break;
    case DriveState::kLocating:
      stats_.locating += elapsed;
      break;
    case DriveState::kTransferring: {
      stats_.transferring += elapsed;
      head_ += bytes_streamed(elapsed, effective_rate_,
                              pending_target_ - head_);
      break;
    }
    case DriveState::kRewinding:
      stats_.rewinding += elapsed;
      break;
    case DriveState::kUnloading:
      stats_.unloading += elapsed;
      break;
    case DriveState::kEmpty:
    case DriveState::kIdle:
      TAPESIM_ASSERT_MSG(elapsed.count() == 0.0,
                         "inactive drive cannot have partial activity time");
      break;
    case DriveState::kFailed:
      break;  // unreachable; asserted above
  }
  ++stats_.failures;
  transition(DriveState::kFailed);
}

void TapeDrive::abort_transfer(Seconds elapsed) {
  TAPESIM_ASSERT_MSG(state_ == DriveState::kTransferring,
                     "abort_transfer requires an active transfer");
  TAPESIM_ASSERT_MSG(elapsed.count() >= 0.0, "negative activity time");
  stats_.transferring += elapsed;
  head_ += bytes_streamed(elapsed, effective_rate_,
                          pending_target_ - head_);
  transition(DriveState::kIdle);
}

TapeId TapeDrive::fail_load() {
  TAPESIM_ASSERT_MSG(state_ == DriveState::kLoading,
                     "fail_load requires an in-flight load");
  stats_.loading += spec_.load_thread_time;
  const TapeId t = mounted_;
  mounted_ = TapeId{};
  transition(DriveState::kEmpty);
  return t;
}

TapeId TapeDrive::eject_failed() {
  TAPESIM_ASSERT_MSG(state_ == DriveState::kFailed,
                     "eject_failed requires a failed drive");
  TAPESIM_ASSERT_MSG(mounted_.valid(), "no cartridge stuck in the drive");
  const TapeId t = mounted_;
  mounted_ = TapeId{};
  head_ = Bytes{0};
  return t;  // no transition: the drive remains failed
}

void TapeDrive::repair(Seconds downtime) {
  TAPESIM_ASSERT_MSG(state_ == DriveState::kFailed,
                     "repair requires a failed drive");
  TAPESIM_ASSERT_MSG(downtime.count() >= 0.0, "negative downtime");
  stats_.downtime += downtime;
  transition(mounted_.valid() ? DriveState::kIdle : DriveState::kEmpty);
}

}  // namespace tapesim::tape
