#include "tape/system.hpp"

#include "util/assert.hpp"

namespace tapesim::tape {

const char* to_string(CartridgeHealth h) {
  switch (h) {
    case CartridgeHealth::kGood: return "good";
    case CartridgeHealth::kDegraded: return "degraded";
    case CartridgeHealth::kLost: return "lost";
  }
  return "?";
}

const char* to_string(LibraryState s) {
  switch (s) {
    case LibraryState::kUp: return "up";
    case LibraryState::kDown: return "down";
    case LibraryState::kDestroyed: return "destroyed";
  }
  return "?";
}

TapeSystem::TapeSystem(const SystemSpec& spec, sim::Engine& engine)
    : spec_(spec) {
  spec_.validate();
  libraries_.reserve(spec_.num_libraries);
  for (std::uint32_t lib = 0; lib < spec_.num_libraries; ++lib) {
    libraries_.emplace_back(
        LibraryId{lib}, spec_.library, engine,
        DriveId{lib * spec_.library.drives_per_library},
        TapeId{lib * spec_.library.tapes_per_library});
  }
  tape_on_drive_.assign(spec_.total_tapes(), DriveId{});
  cartridge_health_.assign(spec_.total_tapes(), CartridgeHealth::kGood);
  mount_counts_.assign(spec_.total_tapes(), 0);
  library_states_.assign(spec_.num_libraries, LibraryState::kUp);
  library_down_since_.assign(spec_.num_libraries, Seconds{});
  library_downtime_.assign(spec_.num_libraries, Seconds{});
}

TapeLibrary& TapeSystem::library(LibraryId id) {
  TAPESIM_ASSERT(id.valid() && id.index() < libraries_.size());
  return libraries_[id.index()];
}

const TapeLibrary& TapeSystem::library(LibraryId id) const {
  TAPESIM_ASSERT(id.valid() && id.index() < libraries_.size());
  return libraries_[id.index()];
}

LibraryId TapeSystem::library_of_drive(DriveId d) const {
  TAPESIM_ASSERT(d.valid() && d.value() < spec_.total_drives());
  return LibraryId{d.value() / spec_.library.drives_per_library};
}

LibraryId TapeSystem::library_of_tape(TapeId t) const {
  TAPESIM_ASSERT(t.valid() && t.value() < spec_.total_tapes());
  return LibraryId{t.value() / spec_.library.tapes_per_library};
}

TapeDrive& TapeSystem::drive(DriveId d) {
  return library(library_of_drive(d)).drive(d);
}

const TapeDrive& TapeSystem::drive(DriveId d) const {
  return library(library_of_drive(d)).drive(d);
}

std::optional<DriveId> TapeSystem::drive_holding(TapeId t) const {
  TAPESIM_ASSERT(t.valid() && t.index() < tape_on_drive_.size());
  const DriveId d = tape_on_drive_[t.index()];
  if (!d.valid()) return std::nullopt;
  return d;
}

void TapeSystem::note_mounted(TapeId t, DriveId d) {
  TAPESIM_ASSERT_MSG(library_of_tape(t) == library_of_drive(d),
                     "tapes never leave their own library");
  TAPESIM_ASSERT_MSG(!tape_on_drive_[t.index()].valid(),
                     "tape already mounted somewhere");
  tape_on_drive_[t.index()] = d;
  ++mount_counts_[t.index()];
}

std::uint32_t TapeSystem::mount_count(TapeId t) const {
  TAPESIM_ASSERT(t.valid() && t.index() < mount_counts_.size());
  return mount_counts_[t.index()];
}

void TapeSystem::note_unmounted(TapeId t) {
  TAPESIM_ASSERT_MSG(tape_on_drive_[t.index()].valid(),
                     "tape was not mounted");
  tape_on_drive_[t.index()] = DriveId{};
}

void TapeSystem::setup_mount(TapeId t, DriveId d) {
  TapeDrive& dr = drive(d);
  TAPESIM_ASSERT_MSG(dr.empty(), "setup_mount needs an empty drive");
  dr.setup_mounted(t);
  note_mounted(t, d);
}

CartridgeHealth TapeSystem::cartridge_health(TapeId t) const {
  TAPESIM_ASSERT(t.valid() && t.index() < cartridge_health_.size());
  return cartridge_health_[t.index()];
}

LibraryState TapeSystem::library_state(LibraryId lib) const {
  TAPESIM_ASSERT(lib.valid() && lib.index() < library_states_.size());
  return library_states_[lib.index()];
}

void TapeSystem::fail_library(LibraryId lib, LibraryState to, Seconds at) {
  TAPESIM_ASSERT(lib.valid() && lib.index() < library_states_.size());
  TAPESIM_ASSERT_MSG(to != LibraryState::kUp, "fail_library cannot restore");
  TAPESIM_ASSERT_MSG(library_states_[lib.index()] == LibraryState::kUp,
                     "library outage registered twice");
  library_states_[lib.index()] = to;
  library_down_since_[lib.index()] = at;
}

Seconds TapeSystem::restore_library(LibraryId lib, Seconds at) {
  TAPESIM_ASSERT(lib.valid() && lib.index() < library_states_.size());
  TAPESIM_ASSERT_MSG(library_states_[lib.index()] == LibraryState::kDown,
                     "only transiently downed libraries restore");
  const Seconds window = at - library_down_since_[lib.index()];
  TAPESIM_ASSERT_MSG(window.count() >= 0.0, "outage window runs backwards");
  library_states_[lib.index()] = LibraryState::kUp;
  library_downtime_[lib.index()] += window;
  return window;
}

Seconds TapeSystem::library_downtime(LibraryId lib) const {
  TAPESIM_ASSERT(lib.valid() && lib.index() < library_downtime_.size());
  return library_downtime_[lib.index()];
}

void TapeSystem::set_cartridge_health(TapeId t, CartridgeHealth h) {
  TAPESIM_ASSERT(t.valid() && t.index() < cartridge_health_.size());
  const CartridgeHealth from = cartridge_health_[t.index()];
  TAPESIM_ASSERT_MSG(h >= from, "cartridge health never improves");
  if (h == from) return;
  cartridge_health_[t.index()] = h;
  if (cartridge_observer_ != nullptr)
    cartridge_observer_->on_cartridge_health(t, from, h);
}

}  // namespace tapesim::tape
