// A tape library: d drives, t storage cells, one robot arm.
//
// The robot is a FIFO sim::Resource — all cartridge moves within one
// library serialize through it, which is exactly the contention the paper's
// placement scheme is designed around. Robots of different libraries are
// independent resources and therefore operate in parallel.
#pragma once

#include <memory>
#include <vector>

#include "sim/engine.hpp"
#include "sim/resource.hpp"
#include "tape/drive.hpp"
#include "tape/specs.hpp"
#include "util/ids.hpp"

namespace tapesim::tape {

class TapeLibrary {
 public:
  /// `first_drive` / `first_tape` are the global ids of this library's
  /// first drive and first storage cell (the system assigns dense ranges).
  TapeLibrary(LibraryId id, const LibrarySpec& spec, sim::Engine& engine,
              DriveId first_drive, TapeId first_tape);

  TapeLibrary(const TapeLibrary&) = delete;
  TapeLibrary& operator=(const TapeLibrary&) = delete;
  TapeLibrary(TapeLibrary&&) = default;

  [[nodiscard]] LibraryId id() const { return id_; }
  [[nodiscard]] const LibrarySpec& spec() const { return spec_; }

  [[nodiscard]] std::uint32_t drive_count() const {
    return spec_.drives_per_library;
  }
  [[nodiscard]] std::uint32_t tape_count() const {
    return spec_.tapes_per_library;
  }

  /// Global id of the local drive at `index` (0-based).
  [[nodiscard]] DriveId drive_id(std::uint32_t index) const;
  /// Global id of the local tape at `slot` (0-based).
  [[nodiscard]] TapeId tape_id(std::uint32_t slot) const;

  [[nodiscard]] bool owns_drive(DriveId d) const;
  [[nodiscard]] bool owns_tape(TapeId t) const;

  [[nodiscard]] TapeDrive& drive(DriveId d);
  [[nodiscard]] const TapeDrive& drive(DriveId d) const;
  [[nodiscard]] std::vector<TapeDrive>& drives() { return drives_; }
  [[nodiscard]] const std::vector<TapeDrive>& drives() const {
    return drives_;
  }

  /// The robot arm; acquire it for every cartridge exchange.
  [[nodiscard]] sim::Resource& robot() { return *robot_; }
  [[nodiscard]] const sim::Resource& robot() const { return *robot_; }

  /// One-way robot move between a cell and a drive.
  [[nodiscard]] Seconds robot_move_time() const {
    return spec_.cell_to_drive_time;
  }
  /// Full exchange move: carry the old cartridge back to its cell, then
  /// fetch the new one to the drive.
  [[nodiscard]] Seconds robot_exchange_time() const {
    return spec_.cell_to_drive_time + spec_.cell_to_drive_time;
  }

 private:
  LibraryId id_;
  LibrarySpec spec_;
  DriveId first_drive_;
  TapeId first_tape_;
  std::vector<TapeDrive> drives_;
  // unique_ptr keeps the Resource address stable across library moves
  // (waiting callbacks capture `this` of the resource indirectly).
  std::unique_ptr<sim::Resource> robot_;
};

}  // namespace tapesim::tape
