// Hardware specifications for drives, libraries, and the whole system.
//
// Defaults reproduce Table 1 of the paper: IBM LTO Gen-3 drives in
// StorageTek L80 libraries. Every experiment harness starts from
// `SystemSpec::paper_default()` and overrides what its sweep varies.
#pragma once

#include <cstdint>
#include <string>

#include "util/error.hpp"
#include "util/units.hpp"

namespace tapesim::tape {

/// One tape drive (IBM LTO Gen-3 by default).
struct DriveSpec {
  /// Native streaming transfer rate (80 MB/s for LTO-3).
  BytesPerSecond transfer_rate{80.0e6};
  /// "Tape load and thread to ready" — cartridge insertion to readiness.
  Seconds load_thread_time{19.0};
  /// Cartridge unload time after rewind.
  Seconds unload_time{19.0};
  /// Rewind from end-of-tape to beginning (Table 1 "maximum rewind").
  Seconds max_rewind_time{98.0};
  /// Table 1 "average file access time (first file)": expected locate time
  /// to a uniformly random position from the beginning of tape. Used to
  /// calibrate the linear positioning rate (locate over half the tape).
  Seconds avg_first_file_access{72.0};

  /// Validates physical plausibility; returns the first violation as a
  /// recoverable error instead of throwing or aborting.
  [[nodiscard]] Status try_validate() const;
  /// Throwing wrapper for construction boundaries; std::invalid_argument
  /// carries try_validate()'s message.
  void validate() const;
};

/// One tape library (StorageTek L80 by default): d drives, t tapes, one
/// robot arm performing all cartridge moves sequentially.
struct LibrarySpec {
  std::uint32_t drives_per_library = 8;
  std::uint32_t tapes_per_library = 80;
  Bytes tape_capacity{400ULL * 1000 * 1000 * 1000};  // 400 GB
  /// Average robot move between a storage cell and a drive (one way).
  Seconds cell_to_drive_time{7.6};
  DriveSpec drive;

  [[nodiscard]] Status try_validate() const;
  void validate() const;
};

/// The full parallel tape storage system: n identical libraries.
struct SystemSpec {
  std::uint32_t num_libraries = 3;
  LibrarySpec library;

  /// Table 1 configuration, verbatim.
  [[nodiscard]] static SystemSpec paper_default();

  [[nodiscard]] Status try_validate() const;
  void validate() const;

  [[nodiscard]] std::uint32_t total_drives() const {
    return num_libraries * library.drives_per_library;
  }
  [[nodiscard]] std::uint32_t total_tapes() const {
    return num_libraries * library.tapes_per_library;
  }
  [[nodiscard]] Bytes total_capacity() const {
    return Bytes{total_tapes() * library.tape_capacity.count()};
  }
  /// Upper bound on retrieval bandwidth: all drives streaming at once.
  [[nodiscard]] BytesPerSecond aggregate_transfer_rate() const {
    return BytesPerSecond{static_cast<double>(total_drives()) *
                          library.drive.transfer_rate.count()};
  }

  [[nodiscard]] std::string describe() const;
};

}  // namespace tapesim::tape
