// The full parallel tape storage system: n independent libraries plus the
// global id spaces and the tape-location bookkeeping shared by all of them.
//
// Global numbering is dense: drive g = lib*d + i, tape g = lib*t + j, so
// per-id state lives in flat vectors.
#pragma once

#include <optional>
#include <vector>

#include "sim/engine.hpp"
#include "tape/library.hpp"
#include "tape/specs.hpp"
#include "util/ids.hpp"

namespace tapesim::tape {

/// Media condition of a cartridge. Read errors escalate Good -> Degraded
/// (higher error rate, still readable) -> Lost (data unrecoverable; the
/// scheduler completes its requests as unavailable instead of wedging).
enum class CartridgeHealth : std::uint8_t {
  kGood,
  kDegraded,
  kLost,
};

[[nodiscard]] const char* to_string(CartridgeHealth h);

/// Operational state of a whole library (the correlated fault domain: one
/// outage downs every drive, the robot, and access to every resident
/// cartridge atomically). kDown is transient — the library returns at its
/// restore time; kDestroyed is a permanent site disaster.
enum class LibraryState : std::uint8_t {
  kUp,
  kDown,
  kDestroyed,
};

[[nodiscard]] const char* to_string(LibraryState s);

/// Observer for cartridge health escalations; the default is a no-op.
class CartridgeObserver {
 public:
  virtual ~CartridgeObserver() = default;
  virtual void on_cartridge_health(TapeId t, CartridgeHealth from,
                                   CartridgeHealth to) {
    (void)t;
    (void)from;
    (void)to;
  }
};

class TapeSystem {
 public:
  TapeSystem(const SystemSpec& spec, sim::Engine& engine);

  TapeSystem(const TapeSystem&) = delete;
  TapeSystem& operator=(const TapeSystem&) = delete;

  [[nodiscard]] const SystemSpec& spec() const { return spec_; }
  [[nodiscard]] std::uint32_t num_libraries() const {
    return spec_.num_libraries;
  }

  [[nodiscard]] TapeLibrary& library(LibraryId id);
  [[nodiscard]] const TapeLibrary& library(LibraryId id) const;
  [[nodiscard]] std::vector<TapeLibrary>& libraries() { return libraries_; }
  [[nodiscard]] const std::vector<TapeLibrary>& libraries() const {
    return libraries_;
  }

  [[nodiscard]] LibraryId library_of_drive(DriveId d) const;
  [[nodiscard]] LibraryId library_of_tape(TapeId t) const;

  [[nodiscard]] TapeDrive& drive(DriveId d);
  [[nodiscard]] const TapeDrive& drive(DriveId d) const;

  /// The drive currently holding `t`, or nullopt if the tape is in its cell.
  [[nodiscard]] std::optional<DriveId> drive_holding(TapeId t) const;
  [[nodiscard]] bool is_mounted(TapeId t) const {
    return drive_holding(t).has_value();
  }

  /// Bookkeeping calls made by the scheduler when mounts complete/begin.
  void note_mounted(TapeId t, DriveId d);
  void note_unmounted(TapeId t);

  /// Lifetime mounts of cartridge `t` (incl. setup mounts) — mechanical
  /// wear input to health scoring.
  [[nodiscard]] std::uint32_t mount_count(TapeId t) const;

  /// Instantly mounts `t` on empty drive `d` (simulation setup only — the
  /// paper mounts the initial batches "during startup time" outside the
  /// measured window). The drive becomes idle with the head at BOT.
  void setup_mount(TapeId t, DriveId d);

  /// Media condition bookkeeping, driven by the fault model.
  [[nodiscard]] CartridgeHealth cartridge_health(TapeId t) const;
  /// Health only escalates (Good -> Degraded -> Lost); attempts to improve
  /// it are rejected. Notifies the observer on every actual change.
  void set_cartridge_health(TapeId t, CartridgeHealth h);
  [[nodiscard]] bool cartridge_lost(TapeId t) const {
    return cartridge_health(t) == CartridgeHealth::kLost;
  }

  /// Attaches a cartridge-health observer (not owned); nullptr detaches.
  void set_cartridge_observer(CartridgeObserver* observer) {
    cartridge_observer_ = observer;
  }

  // --- library operational state (driven by the fault model) ---

  [[nodiscard]] LibraryState library_state(LibraryId lib) const;
  [[nodiscard]] bool library_up(LibraryId lib) const {
    return library_state(lib) == LibraryState::kUp;
  }
  /// Marks `lib` down (transient) or destroyed at `at`. Only an up library
  /// can fail; partial-time accounting of in-flight drive work stays with
  /// the scheduler (TapeDrive::fail/repair).
  void fail_library(LibraryId lib, LibraryState to, Seconds at);
  /// Brings a transiently downed library back at `at`; returns the length
  /// of the outage window just closed and accumulates it into
  /// library_downtime(). Destroyed libraries never restore.
  Seconds restore_library(LibraryId lib, Seconds at);
  /// Total downtime of closed outage windows of `lib` so far.
  [[nodiscard]] Seconds library_downtime(LibraryId lib) const;

 private:
  SystemSpec spec_;
  std::vector<TapeLibrary> libraries_;
  /// Indexed by global tape id; holds the mounting drive or invalid.
  std::vector<DriveId> tape_on_drive_;
  /// Indexed by global tape id.
  std::vector<CartridgeHealth> cartridge_health_;
  /// Indexed by global tape id; lifetime mount count.
  std::vector<std::uint32_t> mount_counts_;
  /// Indexed by library id.
  std::vector<LibraryState> library_states_;
  /// Indexed by library id; onset of the currently open outage window.
  std::vector<Seconds> library_down_since_;
  /// Indexed by library id; accumulated closed-window downtime.
  std::vector<Seconds> library_downtime_;
  CartridgeObserver* cartridge_observer_ = nullptr;
};

}  // namespace tapesim::tape
