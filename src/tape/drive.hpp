// Tape drive state machine.
//
// The drive is a passive state holder: the retrieval scheduler calls
// start_*() to begin an activity (getting back its duration), schedules an
// engine event, and calls the matching finish_*() when it fires. The state
// machine rejects illegal transitions (e.g. locating on an empty drive), so
// scheduler bugs abort immediately instead of silently corrupting results.
#pragma once

#include <cstdint>

#include "tape/linear_motion.hpp"
#include "tape/specs.hpp"
#include "util/ids.hpp"
#include "util/units.hpp"

namespace tapesim::tape {

enum class DriveState : std::uint8_t {
  kEmpty,         ///< No cartridge mounted.
  kIdle,          ///< Cartridge mounted, head parked somewhere, no activity.
  kLoading,       ///< Threading a newly inserted cartridge.
  kLocating,      ///< Positioning the head.
  kTransferring,  ///< Streaming data to the disk cache.
  kRewinding,     ///< Rewinding prior to unload.
  kUnloading,     ///< Ejecting the cartridge.
  kFailed,        ///< Offline after a hardware fault; awaiting repair.
};

[[nodiscard]] const char* to_string(DriveState s);

/// Cumulative per-drive activity accounting, used by the metrics layer.
struct DriveStats {
  Seconds loading{};
  Seconds locating{};
  Seconds transferring{};
  Seconds rewinding{};
  Seconds unloading{};
  std::uint64_t mounts = 0;
  std::uint64_t objects_read = 0;
  Bytes bytes_read{};
  /// Hardware faults this drive suffered (transient + permanent).
  std::uint64_t failures = 0;
  /// Time spent offline across *completed* repairs. A drive that is still
  /// failed (or permanently dead) has its open downtime excluded, matching
  /// the tracer's still-open fault span.
  Seconds downtime{};

  [[nodiscard]] Seconds total_active() const {
    return loading + locating + transferring + rewinding + unloading;
  }
};

class TapeDrive;

/// Observer for drive state transitions; the default is a no-op. The
/// observability layer implements this to turn the state machine's
/// activity periods into per-drive spans.
class DriveObserver {
 public:
  virtual ~DriveObserver() = default;
  /// Called after every state change, with the transition endpoints. For
  /// transitions out of kUnloading the cartridge has already left the
  /// drive; capture `drive.mounted()` on the way in if you need it.
  virtual void on_transition(const TapeDrive& drive, DriveState from,
                             DriveState to) {
    (void)drive;
    (void)from;
    (void)to;
  }
};

class TapeDrive {
 public:
  TapeDrive(DriveId id, const DriveSpec& spec, Bytes tape_capacity);

  [[nodiscard]] DriveId id() const { return id_; }
  [[nodiscard]] DriveState state() const { return state_; }
  [[nodiscard]] bool empty() const { return state_ == DriveState::kEmpty; }
  [[nodiscard]] bool idle() const { return state_ == DriveState::kIdle; }
  [[nodiscard]] bool failed() const { return state_ == DriveState::kFailed; }
  /// The mounted cartridge; invalid id when empty.
  [[nodiscard]] TapeId mounted() const { return mounted_; }
  /// Current head position from beginning of tape.
  [[nodiscard]] Bytes head() const { return head_; }
  [[nodiscard]] const LinearMotionModel& motion() const { return motion_; }
  [[nodiscard]] const DriveSpec& spec() const { return spec_; }
  [[nodiscard]] const DriveStats& stats() const { return stats_; }

  // --- state transitions; each start returns the activity duration ---

  /// Begin threading `t` (robot has inserted it). Drive must be empty.
  Seconds start_load(TapeId t);
  void finish_load();

  /// Setup-only: mounts `t` instantly without consuming simulated time or
  /// touching the activity statistics (the paper mounts the initial
  /// batches "during startup time", outside the measured window).
  void setup_mounted(TapeId t);

  /// Begin positioning the head to `target`. Drive must be idle.
  Seconds start_locate(Bytes target);
  void finish_locate();

  /// Begin streaming `amount` from the current head position. Must be idle.
  /// `rate_multiplier` (in (0, 1]) scales the spec transfer rate for this
  /// one transfer — the fault layer's fail-slow episodes; the effective
  /// rate is held for the transfer so interrupted-transfer byte accounting
  /// (fail / abort_transfer) stays exact.
  Seconds start_transfer(Bytes amount, double rate_multiplier = 1.0);
  void finish_transfer();

  /// Begin rewinding to BOT. Must be idle. Duration depends on head position.
  Seconds start_rewind();
  void finish_rewind();

  /// Begin ejecting. Must be idle with head at BOT (i.e. rewound).
  Seconds start_unload();
  /// Completes the eject; returns the cartridge that was removed.
  TapeId finish_unload();

  // --- fault-model transitions (src/fault drives these) ---

  /// Hardware fault `elapsed` seconds into the current activity (0 when
  /// idle/empty). The partial activity time is charged to the interrupted
  /// phase — a transfer additionally advances the head by the bytes already
  /// streamed, though they never count as read (the scheduler discards and
  /// re-reads them elsewhere). Any mounted cartridge stays stuck in the
  /// drive until `eject_failed()`.
  void fail(Seconds elapsed);

  /// Media read error `elapsed` seconds into a transfer: charges the partial
  /// transfer time, advances the head past the bytes streamed before the
  /// error, and returns to idle so the scheduler can retry. The aborted
  /// bytes are not counted as read.
  void abort_transfer(Seconds elapsed);

  /// Mount attempt failed at the end of the load window: the full load time
  /// was physically spent (and is charged) but the cartridge never threaded.
  /// Returns the cartridge so the scheduler can retry or shelve it.
  TapeId fail_load();

  /// Robot pulls the stuck cartridge out of a failed drive. The drive stays
  /// failed; only the cartridge is freed for failover elsewhere.
  TapeId eject_failed();

  /// Repair completes after `downtime` offline. Back to idle if a cartridge
  /// is still mounted (head position preserved), else empty.
  void repair(Seconds downtime);

  /// Attaches a transition observer (not owned); nullptr detaches.
  void set_observer(DriveObserver* observer) { observer_ = observer; }

 private:
  /// Applies a state change and notifies the observer, if any.
  void transition(DriveState to);

  DriveId id_;
  DriveSpec spec_;
  LinearMotionModel motion_;
  DriveState state_ = DriveState::kEmpty;
  TapeId mounted_{};
  Bytes head_{};
  Bytes pending_target_{};  // locate destination / transfer end
  /// Rate of the in-flight transfer (spec rate x fail-slow multiplier).
  BytesPerSecond effective_rate_{};
  DriveStats stats_;
  DriveObserver* observer_ = nullptr;
};

}  // namespace tapesim::tape
