// Tape drive state machine.
//
// The drive is a passive state holder: the retrieval scheduler calls
// start_*() to begin an activity (getting back its duration), schedules an
// engine event, and calls the matching finish_*() when it fires. The state
// machine rejects illegal transitions (e.g. locating on an empty drive), so
// scheduler bugs abort immediately instead of silently corrupting results.
#pragma once

#include <cstdint>

#include "tape/linear_motion.hpp"
#include "tape/specs.hpp"
#include "util/ids.hpp"
#include "util/units.hpp"

namespace tapesim::tape {

enum class DriveState : std::uint8_t {
  kEmpty,         ///< No cartridge mounted.
  kIdle,          ///< Cartridge mounted, head parked somewhere, no activity.
  kLoading,       ///< Threading a newly inserted cartridge.
  kLocating,      ///< Positioning the head.
  kTransferring,  ///< Streaming data to the disk cache.
  kRewinding,     ///< Rewinding prior to unload.
  kUnloading,     ///< Ejecting the cartridge.
};

[[nodiscard]] const char* to_string(DriveState s);

/// Cumulative per-drive activity accounting, used by the metrics layer.
struct DriveStats {
  Seconds loading{};
  Seconds locating{};
  Seconds transferring{};
  Seconds rewinding{};
  Seconds unloading{};
  std::uint64_t mounts = 0;
  std::uint64_t objects_read = 0;
  Bytes bytes_read{};

  [[nodiscard]] Seconds total_active() const {
    return loading + locating + transferring + rewinding + unloading;
  }
};

class TapeDrive;

/// Observer for drive state transitions; the default is a no-op. The
/// observability layer implements this to turn the state machine's
/// activity periods into per-drive spans.
class DriveObserver {
 public:
  virtual ~DriveObserver() = default;
  /// Called after every state change, with the transition endpoints. For
  /// transitions out of kUnloading the cartridge has already left the
  /// drive; capture `drive.mounted()` on the way in if you need it.
  virtual void on_transition(const TapeDrive& drive, DriveState from,
                             DriveState to) {
    (void)drive;
    (void)from;
    (void)to;
  }
};

class TapeDrive {
 public:
  TapeDrive(DriveId id, const DriveSpec& spec, Bytes tape_capacity);

  [[nodiscard]] DriveId id() const { return id_; }
  [[nodiscard]] DriveState state() const { return state_; }
  [[nodiscard]] bool empty() const { return state_ == DriveState::kEmpty; }
  [[nodiscard]] bool idle() const { return state_ == DriveState::kIdle; }
  /// The mounted cartridge; invalid id when empty.
  [[nodiscard]] TapeId mounted() const { return mounted_; }
  /// Current head position from beginning of tape.
  [[nodiscard]] Bytes head() const { return head_; }
  [[nodiscard]] const LinearMotionModel& motion() const { return motion_; }
  [[nodiscard]] const DriveSpec& spec() const { return spec_; }
  [[nodiscard]] const DriveStats& stats() const { return stats_; }

  // --- state transitions; each start returns the activity duration ---

  /// Begin threading `t` (robot has inserted it). Drive must be empty.
  Seconds start_load(TapeId t);
  void finish_load();

  /// Setup-only: mounts `t` instantly without consuming simulated time or
  /// touching the activity statistics (the paper mounts the initial
  /// batches "during startup time", outside the measured window).
  void setup_mounted(TapeId t);

  /// Begin positioning the head to `target`. Drive must be idle.
  Seconds start_locate(Bytes target);
  void finish_locate();

  /// Begin streaming `amount` from the current head position. Must be idle.
  Seconds start_transfer(Bytes amount);
  void finish_transfer();

  /// Begin rewinding to BOT. Must be idle. Duration depends on head position.
  Seconds start_rewind();
  void finish_rewind();

  /// Begin ejecting. Must be idle with head at BOT (i.e. rewound).
  Seconds start_unload();
  /// Completes the eject; returns the cartridge that was removed.
  TapeId finish_unload();

  /// Attaches a transition observer (not owned); nullptr detaches.
  void set_observer(DriveObserver* observer) { observer_ = observer; }

 private:
  /// Applies a state change and notifies the observer, if any.
  void transition(DriveState to);

  DriveId id_;
  DriveSpec spec_;
  LinearMotionModel motion_;
  DriveState state_ = DriveState::kEmpty;
  TapeId mounted_{};
  Bytes head_{};
  Bytes pending_target_{};  // locate destination / transfer end
  DriveStats stats_;
  DriveObserver* observer_ = nullptr;
};

}  // namespace tapesim::tape
