#include "tape/linear_motion.hpp"

#include "util/assert.hpp"

namespace tapesim::tape {

LinearMotionModel::LinearMotionModel(const DriveSpec& drive,
                                     Bytes tape_capacity)
    : capacity_(tape_capacity),
      locate_rate_(tape_capacity.as_double() /
                   (2.0 * drive.avg_first_file_access.count())),
      rewind_rate_(tape_capacity.as_double() / drive.max_rewind_time.count()) {
  TAPESIM_ASSERT(capacity_.count() > 0);
}

Seconds LinearMotionModel::locate_time(Bytes from, Bytes to) const {
  TAPESIM_ASSERT_MSG(from <= capacity_ && to <= capacity_,
                     "position beyond end of tape");
  return duration_for(Bytes::distance(from, to), locate_rate_);
}

Seconds LinearMotionModel::rewind_time(Bytes position) const {
  TAPESIM_ASSERT_MSG(position <= capacity_, "position beyond end of tape");
  return duration_for(position, rewind_rate_);
}

Seconds LinearMotionModel::average_first_access() const {
  return duration_for(Bytes{capacity_.count() / 2}, locate_rate_);
}

Seconds LinearMotionModel::max_rewind() const {
  return duration_for(capacity_, rewind_rate_);
}

}  // namespace tapesim::tape
