// Linear head-positioning model (Johnson & Miller, VLDB'98).
//
// Positioning time is proportional to the distance between the current head
// position and the target position. Two rates are calibrated from Table 1:
//
//   locate_rate = capacity / (2 * avg_first_file_access)
//     The spec's "average file access time (first file)" is the expected
//     locate time from beginning-of-tape to a uniformly random position,
//     i.e. the time to cover half the tape: 400 GB / (2 * 72 s).
//
//   rewind_rate = capacity / max_rewind_time
//     "Maximum rewind" covers the whole tape: 400 GB / 98 s. Rewind is
//     faster than locate because the drive does not need to read-verify.
#pragma once

#include "tape/specs.hpp"
#include "util/units.hpp"

namespace tapesim::tape {

class LinearMotionModel {
 public:
  LinearMotionModel(const DriveSpec& drive, Bytes tape_capacity);

  /// Time to position the head from `from` to `to` (either direction).
  [[nodiscard]] Seconds locate_time(Bytes from, Bytes to) const;

  /// Time to rewind from `position` to beginning-of-tape.
  [[nodiscard]] Seconds rewind_time(Bytes position) const;

  /// Expected locate time from BOT to a uniformly random position; by
  /// construction equals DriveSpec::avg_first_file_access.
  [[nodiscard]] Seconds average_first_access() const;

  /// Rewind time from end-of-tape; equals DriveSpec::max_rewind_time.
  [[nodiscard]] Seconds max_rewind() const;

  [[nodiscard]] BytesPerSecond locate_rate() const { return locate_rate_; }
  [[nodiscard]] BytesPerSecond rewind_rate() const { return rewind_rate_; }
  [[nodiscard]] Bytes capacity() const { return capacity_; }

 private:
  Bytes capacity_;
  BytesPerSecond locate_rate_;
  BytesPerSecond rewind_rate_;
};

}  // namespace tapesim::tape
