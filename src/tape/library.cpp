#include "tape/library.hpp"

#include <memory>
#include <string>

#include "util/assert.hpp"

namespace tapesim::tape {

TapeLibrary::TapeLibrary(LibraryId id, const LibrarySpec& spec,
                         sim::Engine& engine, DriveId first_drive,
                         TapeId first_tape)
    : id_(id), spec_(spec), first_drive_(first_drive), first_tape_(first_tape) {
  spec_.validate();
  drives_.reserve(spec_.drives_per_library);
  for (std::uint32_t i = 0; i < spec_.drives_per_library; ++i) {
    drives_.emplace_back(DriveId{first_drive_.value() + i}, spec_.drive,
                         spec_.tape_capacity);
  }
  robot_ = std::make_unique<sim::Resource>(
      engine, "robot[lib" + std::to_string(id_.value()) + "]");
}

DriveId TapeLibrary::drive_id(std::uint32_t index) const {
  TAPESIM_ASSERT(index < spec_.drives_per_library);
  return DriveId{first_drive_.value() + index};
}

TapeId TapeLibrary::tape_id(std::uint32_t slot) const {
  TAPESIM_ASSERT(slot < spec_.tapes_per_library);
  return TapeId{first_tape_.value() + slot};
}

bool TapeLibrary::owns_drive(DriveId d) const {
  return d.valid() && d.value() >= first_drive_.value() &&
         d.value() < first_drive_.value() + spec_.drives_per_library;
}

bool TapeLibrary::owns_tape(TapeId t) const {
  return t.valid() && t.value() >= first_tape_.value() &&
         t.value() < first_tape_.value() + spec_.tapes_per_library;
}

TapeDrive& TapeLibrary::drive(DriveId d) {
  TAPESIM_ASSERT_MSG(owns_drive(d), "drive does not belong to this library");
  return drives_[d.value() - first_drive_.value()];
}

const TapeDrive& TapeLibrary::drive(DriveId d) const {
  TAPESIM_ASSERT_MSG(owns_drive(d), "drive does not belong to this library");
  return drives_[d.value() - first_drive_.value()];
}

}  // namespace tapesim::tape
