// An in-memory B+-tree.
//
// The paper's simulator is "integrated with an indexing database that
// stores object locations as well as other object properties". This is that
// database's storage engine: a textbook B+-tree with fixed fanout, parent-
// less recursive insert/erase (split, borrow, merge), a linked leaf level
// for ordered scans, and a structural validator the property tests run
// against a std::map oracle.
//
// Keys are unique and totally ordered by std::less<Key>. Values are stored
// in the leaves only.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <utility>

#include "util/assert.hpp"

namespace tapesim::catalog {

template <typename Key, typename Value, std::size_t Fanout = 64>
class BPlusTree {
  static_assert(Fanout >= 4, "fanout must allow splitting");

  // A leaf holds up to kLeafMax (key,value) pairs; an internal node holds up
  // to Fanout children separated by Fanout-1 keys.
  static constexpr std::size_t kLeafMax = Fanout - 1;
  static constexpr std::size_t kLeafMin = kLeafMax / 2;
  static constexpr std::size_t kChildMax = Fanout;
  static constexpr std::size_t kChildMin = (Fanout + 1) / 2;

  struct Node {
    bool leaf;
    std::uint32_t count = 0;  // keys in use
    explicit Node(bool is_leaf) : leaf(is_leaf) {}
  };

  struct LeafNode : Node {
    std::array<Key, kLeafMax> keys;
    std::array<Value, kLeafMax> values;
    LeafNode* next = nullptr;
    LeafNode() : Node(true) {}
  };

  struct InternalNode : Node {
    std::array<Key, kChildMax - 1> keys;
    std::array<Node*, kChildMax> children{};
    InternalNode() : Node(false) {}
  };

 public:
  BPlusTree() = default;
  ~BPlusTree() { clear(); }

  BPlusTree(const BPlusTree&) = delete;
  BPlusTree& operator=(const BPlusTree&) = delete;
  BPlusTree(BPlusTree&& other) noexcept { swap(other); }
  BPlusTree& operator=(BPlusTree&& other) noexcept {
    if (this != &other) {
      clear();
      swap(other);
    }
    return *this;
  }

  /// Inserts (key, value). Returns false (and leaves the tree unchanged)
  /// if the key already exists.
  bool insert(const Key& key, Value value) {
    if (root_ == nullptr) {
      auto* leaf = new LeafNode();
      leaf->keys[0] = key;
      leaf->values[0] = std::move(value);
      leaf->count = 1;
      root_ = leaf;
      first_leaf_ = leaf;
      size_ = 1;
      return true;
    }
    bool inserted = false;
    auto split = insert_rec(root_, key, std::move(value), inserted);
    if (split) {
      auto* new_root = new InternalNode();
      new_root->keys[0] = split->first;
      new_root->children[0] = root_;
      new_root->children[1] = split->second;
      new_root->count = 1;
      root_ = new_root;
    }
    if (inserted) ++size_;
    return inserted;
  }

  /// Returns a pointer to the value for `key`, or nullptr.
  [[nodiscard]] Value* find(const Key& key) {
    Node* n = root_;
    if (n == nullptr) return nullptr;
    while (!n->leaf) {
      auto* in = static_cast<InternalNode*>(n);
      n = in->children[child_index(in, key)];
    }
    auto* leaf = static_cast<LeafNode*>(n);
    const std::size_t i = leaf_lower_bound(leaf, key);
    if (i < leaf->count && !(key < leaf->keys[i]) && !(leaf->keys[i] < key)) {
      return &leaf->values[i];
    }
    return nullptr;
  }
  [[nodiscard]] const Value* find(const Key& key) const {
    return const_cast<BPlusTree*>(this)->find(key);
  }
  [[nodiscard]] bool contains(const Key& key) const {
    return find(key) != nullptr;
  }

  /// Removes `key`. Returns false if absent.
  bool erase(const Key& key) {
    if (root_ == nullptr) return false;
    bool erased = false;
    erase_rec(root_, key, erased);
    if (erased) --size_;
    if (!root_->leaf && root_->count == 0) {
      auto* old = static_cast<InternalNode*>(root_);
      root_ = old->children[0];
      delete old;
    } else if (root_->leaf && root_->count == 0) {
      delete static_cast<LeafNode*>(root_);
      root_ = nullptr;
      first_leaf_ = nullptr;
    }
    return erased;
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  void clear() {
    destroy(root_);
    root_ = nullptr;
    first_leaf_ = nullptr;
    size_ = 0;
  }

  /// Forward iterator over (key, value) pairs in key order.
  class const_iterator {
   public:
    const_iterator() = default;
    const_iterator(const LeafNode* leaf, std::size_t index)
        : leaf_(leaf), index_(index) {}

    [[nodiscard]] const Key& key() const { return leaf_->keys[index_]; }
    [[nodiscard]] const Value& value() const { return leaf_->values[index_]; }
    std::pair<const Key&, const Value&> operator*() const {
      return {key(), value()};
    }
    const_iterator& operator++() {
      if (++index_ >= leaf_->count) {
        leaf_ = leaf_->next;
        index_ = 0;
      }
      return *this;
    }
    friend bool operator==(const const_iterator& a, const const_iterator& b) {
      return a.leaf_ == b.leaf_ && (a.leaf_ == nullptr || a.index_ == b.index_);
    }

   private:
    const LeafNode* leaf_ = nullptr;
    std::size_t index_ = 0;
  };

  [[nodiscard]] const_iterator begin() const {
    return size_ == 0 ? end() : const_iterator{first_leaf_, 0};
  }
  [[nodiscard]] const_iterator end() const { return const_iterator{}; }

  /// First element with key >= `key`.
  [[nodiscard]] const_iterator lower_bound(const Key& key) const {
    const Node* n = root_;
    if (n == nullptr) return end();
    while (!n->leaf) {
      auto* in = static_cast<const InternalNode*>(n);
      n = in->children[child_index(in, key)];
    }
    auto* leaf = static_cast<const LeafNode*>(n);
    const std::size_t i = leaf_lower_bound(leaf, key);
    if (i < leaf->count) return const_iterator{leaf, i};
    return leaf->next != nullptr ? const_iterator{leaf->next, 0} : end();
  }

  /// Checks all structural invariants; aborts on violation. O(n).
  void validate() const {
    if (root_ == nullptr) {
      TAPESIM_ASSERT(size_ == 0 && first_leaf_ == nullptr);
      return;
    }
    std::size_t counted = 0;
    const LeafNode* leftmost = nullptr;
    const int depth = validate_rec(root_, nullptr, nullptr, true, counted,
                                   leftmost);
    (void)depth;
    TAPESIM_ASSERT_MSG(counted == size_, "size bookkeeping diverged");
    TAPESIM_ASSERT_MSG(leftmost == first_leaf_, "leaf chain head diverged");
    // Leaf chain must enumerate exactly `size_` keys in strict order.
    std::size_t chained = 0;
    const Key* prev = nullptr;
    for (const LeafNode* l = first_leaf_; l != nullptr; l = l->next) {
      for (std::size_t i = 0; i < l->count; ++i) {
        if (prev != nullptr) TAPESIM_ASSERT(*prev < l->keys[i]);
        prev = &l->keys[i];
        ++chained;
      }
    }
    TAPESIM_ASSERT_MSG(chained == size_, "leaf chain missed entries");
  }

 private:
  void swap(BPlusTree& other) noexcept {
    std::swap(root_, other.root_);
    std::swap(first_leaf_, other.first_leaf_);
    std::swap(size_, other.size_);
  }

  static std::size_t leaf_lower_bound(const LeafNode* leaf, const Key& key) {
    std::size_t lo = 0;
    std::size_t hi = leaf->count;
    while (lo < hi) {
      const std::size_t mid = (lo + hi) / 2;
      if (leaf->keys[mid] < key) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  /// Index of the child an access for `key` must descend into.
  static std::size_t child_index(const InternalNode* n, const Key& key) {
    std::size_t lo = 0;
    std::size_t hi = n->count;
    while (lo < hi) {
      const std::size_t mid = (lo + hi) / 2;
      if (n->keys[mid] < key || (!(key < n->keys[mid]))) {
        // key >= keys[mid] → go right of separator mid
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  using SplitResult = std::optional<std::pair<Key, Node*>>;

  SplitResult insert_rec(Node* node, const Key& key, Value&& value,
                         bool& inserted) {
    if (node->leaf) {
      auto* leaf = static_cast<LeafNode*>(node);
      const std::size_t pos = leaf_lower_bound(leaf, key);
      if (pos < leaf->count && !(key < leaf->keys[pos]) &&
          !(leaf->keys[pos] < key)) {
        inserted = false;
        return std::nullopt;
      }
      inserted = true;
      if (leaf->count < kLeafMax) {
        leaf_insert_at(leaf, pos, key, std::move(value));
        return std::nullopt;
      }
      // Split: left keeps ceil((kLeafMax+1)/2) of the kLeafMax+1 entries.
      auto* right = new LeafNode();
      const std::size_t total = kLeafMax + 1;
      const std::size_t left_n = (total + 1) / 2;
      // Conceptually insert, then cut at left_n. Do it without a temp array.
      if (pos < left_n) {
        // New entry lands in the left leaf.
        for (std::size_t i = left_n - 1; i < kLeafMax; ++i) {
          right->keys[i - (left_n - 1)] = std::move(leaf->keys[i]);
          right->values[i - (left_n - 1)] = std::move(leaf->values[i]);
        }
        right->count = static_cast<std::uint32_t>(kLeafMax - (left_n - 1));
        leaf->count = static_cast<std::uint32_t>(left_n - 1);
        leaf_insert_at(leaf, pos, key, std::move(value));
      } else {
        for (std::size_t i = left_n; i < kLeafMax; ++i) {
          right->keys[i - left_n] = std::move(leaf->keys[i]);
          right->values[i - left_n] = std::move(leaf->values[i]);
        }
        right->count = static_cast<std::uint32_t>(kLeafMax - left_n);
        leaf->count = static_cast<std::uint32_t>(left_n);
        leaf_insert_at(right, pos - left_n, key, std::move(value));
      }
      right->next = leaf->next;
      leaf->next = right;
      return std::make_pair(right->keys[0], static_cast<Node*>(right));
    }

    auto* in = static_cast<InternalNode*>(node);
    const std::size_t ci = child_index(in, key);
    auto split = insert_rec(in->children[ci], key, std::move(value), inserted);
    if (!split) return std::nullopt;
    // Insert (split->first, split->second) after child ci.
    if (in->count < kChildMax - 1) {
      internal_insert_at(in, ci, split->first, split->second);
      return std::nullopt;
    }
    // Split the internal node. Gather the would-be sequence implicitly.
    // Simpler approach: materialize into temporaries (bounded by Fanout).
    std::array<Key, kChildMax> keys;      // kChildMax-1 existing + 1 new
    std::array<Node*, kChildMax + 1> kids;
    for (std::size_t i = 0; i < ci; ++i) keys[i] = in->keys[i];
    keys[ci] = split->first;
    for (std::size_t i = ci; i < in->count; ++i) keys[i + 1] = in->keys[i];
    for (std::size_t i = 0; i <= ci; ++i) kids[i] = in->children[i];
    kids[ci + 1] = split->second;
    for (std::size_t i = ci + 1; i <= in->count; ++i)
      kids[i + 1] = in->children[i];

    const std::size_t total_keys = in->count + 1;        // == kChildMax
    const std::size_t mid = total_keys / 2;              // key promoted up
    auto* right = new InternalNode();
    in->count = static_cast<std::uint32_t>(mid);
    for (std::size_t i = 0; i < mid; ++i) in->keys[i] = keys[i];
    for (std::size_t i = 0; i <= mid; ++i) in->children[i] = kids[i];
    right->count = static_cast<std::uint32_t>(total_keys - mid - 1);
    for (std::size_t i = 0; i < right->count; ++i)
      right->keys[i] = keys[mid + 1 + i];
    for (std::size_t i = 0; i <= right->count; ++i)
      right->children[i] = kids[mid + 1 + i];
    return std::make_pair(keys[mid], static_cast<Node*>(right));
  }

  static void leaf_insert_at(LeafNode* leaf, std::size_t pos, const Key& key,
                             Value&& value) {
    for (std::size_t i = leaf->count; i > pos; --i) {
      leaf->keys[i] = std::move(leaf->keys[i - 1]);
      leaf->values[i] = std::move(leaf->values[i - 1]);
    }
    leaf->keys[pos] = key;
    leaf->values[pos] = std::move(value);
    ++leaf->count;
  }

  static void internal_insert_at(InternalNode* in, std::size_t ci,
                                 const Key& key, Node* right_child) {
    for (std::size_t i = in->count; i > ci; --i) {
      in->keys[i] = std::move(in->keys[i - 1]);
      in->children[i + 1] = in->children[i];
    }
    in->keys[ci] = key;
    in->children[ci + 1] = right_child;
    ++in->count;
  }

  /// Returns true if `node` underflowed and the parent must rebalance.
  bool erase_rec(Node* node, const Key& key, bool& erased) {
    if (node->leaf) {
      auto* leaf = static_cast<LeafNode*>(node);
      const std::size_t pos = leaf_lower_bound(leaf, key);
      if (pos >= leaf->count || key < leaf->keys[pos] ||
          leaf->keys[pos] < key) {
        erased = false;
        return false;
      }
      erased = true;
      for (std::size_t i = pos + 1; i < leaf->count; ++i) {
        leaf->keys[i - 1] = std::move(leaf->keys[i]);
        leaf->values[i - 1] = std::move(leaf->values[i]);
      }
      --leaf->count;
      return leaf->count < kLeafMin;
    }

    auto* in = static_cast<InternalNode*>(node);
    const std::size_t ci = child_index(in, key);
    const bool underflow = erase_rec(in->children[ci], key, erased);
    if (!underflow) return false;
    rebalance_child(in, ci);
    return in->count + 1 < kChildMin;
  }

  void rebalance_child(InternalNode* parent, std::size_t ci) {
    Node* child = parent->children[ci];
    Node* left_n = ci > 0 ? parent->children[ci - 1] : nullptr;
    Node* right_n = ci < parent->count ? parent->children[ci + 1] : nullptr;

    if (child->leaf) {
      auto* leaf = static_cast<LeafNode*>(child);
      auto* lleaf = static_cast<LeafNode*>(left_n);
      auto* rleaf = static_cast<LeafNode*>(right_n);
      if (lleaf != nullptr && lleaf->count > kLeafMin) {
        // Borrow the largest entry from the left sibling.
        for (std::size_t i = leaf->count; i > 0; --i) {
          leaf->keys[i] = std::move(leaf->keys[i - 1]);
          leaf->values[i] = std::move(leaf->values[i - 1]);
        }
        leaf->keys[0] = std::move(lleaf->keys[lleaf->count - 1]);
        leaf->values[0] = std::move(lleaf->values[lleaf->count - 1]);
        ++leaf->count;
        --lleaf->count;
        parent->keys[ci - 1] = leaf->keys[0];
        return;
      }
      if (rleaf != nullptr && rleaf->count > kLeafMin) {
        // Borrow the smallest entry from the right sibling.
        leaf->keys[leaf->count] = std::move(rleaf->keys[0]);
        leaf->values[leaf->count] = std::move(rleaf->values[0]);
        ++leaf->count;
        for (std::size_t i = 1; i < rleaf->count; ++i) {
          rleaf->keys[i - 1] = std::move(rleaf->keys[i]);
          rleaf->values[i - 1] = std::move(rleaf->values[i]);
        }
        --rleaf->count;
        parent->keys[ci] = rleaf->keys[0];
        return;
      }
      // Merge with a sibling (prefer left so the chain fix is local).
      if (lleaf != nullptr) {
        merge_leaves(parent, ci - 1, lleaf, leaf);
      } else {
        TAPESIM_ASSERT(rleaf != nullptr);
        merge_leaves(parent, ci, leaf, rleaf);
      }
      return;
    }

    auto* inode = static_cast<InternalNode*>(child);
    auto* left_sib = static_cast<InternalNode*>(left_n);
    auto* right_sib = static_cast<InternalNode*>(right_n);
    if (left_sib != nullptr && left_sib->count + 1 > kChildMin) {
      // Rotate right through the parent separator.
      for (std::size_t i = inode->count; i > 0; --i)
        inode->keys[i] = std::move(inode->keys[i - 1]);
      for (std::size_t i = inode->count + 1; i > 0; --i)
        inode->children[i] = inode->children[i - 1];
      inode->keys[0] = std::move(parent->keys[ci - 1]);
      inode->children[0] = left_sib->children[left_sib->count];
      ++inode->count;
      parent->keys[ci - 1] = std::move(left_sib->keys[left_sib->count - 1]);
      --left_sib->count;
      return;
    }
    if (right_sib != nullptr && right_sib->count + 1 > kChildMin) {
      // Rotate left through the parent separator.
      inode->keys[inode->count] = std::move(parent->keys[ci]);
      inode->children[inode->count + 1] = right_sib->children[0];
      ++inode->count;
      parent->keys[ci] = std::move(right_sib->keys[0]);
      for (std::size_t i = 1; i < right_sib->count; ++i)
        right_sib->keys[i - 1] = std::move(right_sib->keys[i]);
      for (std::size_t i = 1; i <= right_sib->count; ++i)
        right_sib->children[i - 1] = right_sib->children[i];
      --right_sib->count;
      return;
    }
    if (left_sib != nullptr) {
      merge_internals(parent, ci - 1, left_sib, inode);
    } else {
      TAPESIM_ASSERT(right_sib != nullptr);
      merge_internals(parent, ci, inode, right_sib);
    }
  }

  /// Merges `right` into `left`; separator at parent->keys[sep] disappears.
  void merge_leaves(InternalNode* parent, std::size_t sep, LeafNode* left,
                    LeafNode* right) {
    for (std::size_t i = 0; i < right->count; ++i) {
      left->keys[left->count + i] = std::move(right->keys[i]);
      left->values[left->count + i] = std::move(right->values[i]);
    }
    left->count += right->count;
    left->next = right->next;
    remove_parent_slot(parent, sep);
    delete right;
  }

  void merge_internals(InternalNode* parent, std::size_t sep,
                       InternalNode* left, InternalNode* right) {
    left->keys[left->count] = std::move(parent->keys[sep]);
    ++left->count;
    for (std::size_t i = 0; i < right->count; ++i)
      left->keys[left->count + i] = std::move(right->keys[i]);
    for (std::size_t i = 0; i <= right->count; ++i)
      left->children[left->count + i] = right->children[i];
    left->count += right->count;
    remove_parent_slot(parent, sep);
    delete right;
  }

  static void remove_parent_slot(InternalNode* parent, std::size_t sep) {
    for (std::size_t i = sep + 1; i < parent->count; ++i) {
      parent->keys[i - 1] = std::move(parent->keys[i]);
      parent->children[i] = parent->children[i + 1];
    }
    --parent->count;
  }

  void destroy(Node* n) {
    if (n == nullptr) return;
    if (n->leaf) {
      delete static_cast<LeafNode*>(n);
      return;
    }
    auto* in = static_cast<InternalNode*>(n);
    for (std::size_t i = 0; i <= in->count; ++i) destroy(in->children[i]);
    delete in;
  }

  /// Returns subtree depth; checks key bounds and occupancy.
  int validate_rec(const Node* n, const Key* lo, const Key* hi, bool is_root,
                   std::size_t& counted, const LeafNode*& leftmost) const {
    if (n->leaf) {
      auto* leaf = static_cast<const LeafNode*>(n);
      if (!is_root) TAPESIM_ASSERT(leaf->count >= kLeafMin);
      TAPESIM_ASSERT(leaf->count <= kLeafMax);
      for (std::size_t i = 0; i < leaf->count; ++i) {
        if (i > 0) TAPESIM_ASSERT(leaf->keys[i - 1] < leaf->keys[i]);
        if (lo != nullptr) TAPESIM_ASSERT(!(leaf->keys[i] < *lo));
        if (hi != nullptr) TAPESIM_ASSERT(leaf->keys[i] < *hi);
      }
      counted += leaf->count;
      if (leftmost == nullptr) leftmost = leaf;
      return 1;
    }
    auto* in = static_cast<const InternalNode*>(n);
    if (!is_root) TAPESIM_ASSERT(in->count + 1 >= kChildMin);
    TAPESIM_ASSERT(is_root ? in->count >= 1 : true);
    TAPESIM_ASSERT(in->count <= kChildMax - 1);
    int depth = -1;
    for (std::size_t i = 0; i <= in->count; ++i) {
      const Key* clo = i == 0 ? lo : &in->keys[i - 1];
      const Key* chi = i == in->count ? hi : &in->keys[i];
      const int d =
          validate_rec(in->children[i], clo, chi, false, counted, leftmost);
      if (depth == -1) depth = d;
      TAPESIM_ASSERT_MSG(depth == d, "leaves at different depths");
    }
    for (std::size_t i = 1; i < in->count; ++i)
      TAPESIM_ASSERT(in->keys[i - 1] < in->keys[i]);
    return depth + 1;
  }

  Node* root_ = nullptr;
  LeafNode* first_leaf_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace tapesim::catalog
