// The object indexing database.
//
// Maps every object to its physical location (library, tape, byte offset)
// and size. The retrieval scheduler resolves each incoming request through
// this catalog, exactly as the paper's simulator does ("given a request,
// the corresponding tapes are identified based on the object indexing
// database"). Primary index: B+-tree on object id. Secondary index: per-
// tape extent lists, kept sorted by offset for seek-order optimization.
//
// Redundancy: an object may carry additional replica records (each on a
// distinct tape). The catalog also tracks per-tape media health, synced
// from the fault model's cartridge escalations, so the scheduler and the
// background repair process can ask for the best surviving copy.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "catalog/btree.hpp"
#include "util/ids.hpp"
#include "util/units.hpp"

namespace tapesim::catalog {

/// Media condition of one tape as the catalog tracks it (mirrors
/// tape::CartridgeHealth without depending on the tape module): every copy
/// on the tape shares this health.
enum class ReplicaHealth : std::uint8_t {
  kGood,
  kDegraded,  ///< Elevated error rate; copy at risk but readable.
  kLost,      ///< Data unrecoverable; copies on this tape do not count.
};

[[nodiscard]] const char* to_string(ReplicaHealth h);

/// Full location record for one object.
struct ObjectRecord {
  ObjectId object;
  Bytes size;
  LibraryId library;
  TapeId tape;
  Bytes offset;  ///< Distance of the object's first byte from BOT.

  [[nodiscard]] Bytes end_offset() const { return offset + size; }

  friend bool operator==(const ObjectRecord&, const ObjectRecord&) = default;
};

/// One object's extent on a tape, as stored in the secondary index.
struct TapeExtent {
  ObjectId object;
  Bytes offset;
  Bytes size;

  friend bool operator==(const TapeExtent&, const TapeExtent&) = default;
};

class ObjectCatalog {
 public:
  /// `total_tapes` sizes the secondary index (global tape id space).
  explicit ObjectCatalog(std::uint32_t total_tapes);

  /// Registers an object's location. Returns false if the object id is
  /// already present (each object is placed exactly once — no striping).
  bool insert(const ObjectRecord& record);

  /// Registers an additional copy of an already-inserted object. The
  /// primary record must exist, the sizes must agree, and the copy must
  /// live on a tape distinct from every existing copy. Returns false when
  /// any precondition fails (nothing is modified).
  bool insert_replica(const ObjectRecord& record);

  /// Primary lookup; nullptr when absent.
  [[nodiscard]] const ObjectRecord* lookup(ObjectId id) const;
  [[nodiscard]] bool contains(ObjectId id) const {
    return lookup(id) != nullptr;
  }

  /// Extra copies of `id` in insertion order (primary excluded); empty when
  /// the object has none. Invalidated by insert_replica().
  [[nodiscard]] std::span<const ObjectRecord> replicas(ObjectId id) const;
  /// Total copies of `id` (primary + replicas); 0 when absent.
  [[nodiscard]] std::size_t copy_count(ObjectId id) const;
  [[nodiscard]] bool has_replicas() const { return replica_total_ > 0; }
  [[nodiscard]] std::size_t replica_count() const { return replica_total_; }

  /// Per-tape media health, synced from fault escalations. Health only
  /// escalates (Good -> Degraded -> Lost); attempts to improve are ignored.
  void set_tape_health(TapeId tape, ReplicaHealth health);
  [[nodiscard]] ReplicaHealth tape_health(TapeId tape) const;

  /// Marks `tape` retired: its objects were evacuated elsewhere, so its
  /// copies no longer count as live and best_replica skips them. One-way,
  /// like health escalation. The extent records stay (the physical bytes
  /// are still on the cartridge); the scheduler just never routes to them.
  void retire_tape(TapeId tape);
  [[nodiscard]] bool tape_retired(TapeId tape) const;

  /// The best surviving copy of `id`: copies on Lost or retired tapes, on
  /// tapes in `exclude`, and in libraries in `exclude_libraries` (downed
  /// fault domains) are skipped; Good health beats Degraded, and the
  /// primary wins ties (then replica insertion order). nullptr when no copy
  /// survives. The pointer is invalidated by the next insert of `id`.
  [[nodiscard]] const ObjectRecord* best_replica(
      ObjectId id, std::span<const TapeId> exclude = {},
      std::span<const LibraryId> exclude_libraries = {}) const;

  /// All extents on `tape`, sorted by offset. Invalidated by insert().
  [[nodiscard]] std::span<const TapeExtent> extents_on(TapeId tape) const;

  /// Bytes occupied on `tape`.
  [[nodiscard]] Bytes used_on(TapeId tape) const;

  [[nodiscard]] std::size_t object_count() const { return primary_.size(); }
  [[nodiscard]] std::uint32_t tape_count() const {
    return static_cast<std::uint32_t>(by_tape_.size());
  }

  /// Visits every primary record in ascending object-id order (B+-tree
  /// iteration); snapshot capture and state comparison walk this.
  template <typename Visitor>
  void for_each_primary(Visitor&& visit) const {
    for (const auto& [key, rec] : primary_) visit(rec);
  }

  /// Field-by-field state equality: primaries, per-object replica lists
  /// (insertion order included — best_replica tie-breaks on it), per-tape
  /// extents and usage, health, and retirements. The crash-recovery
  /// invariant ("replayed catalog exactly equals the never-crashed
  /// catalog") is asserted through this.
  [[nodiscard]] bool equals(const ObjectCatalog& other) const;

  /// Verifies global consistency: extents sorted, non-overlapping, within
  /// `tape_capacity`; primary and secondary agree. Aborts on violation.
  void validate(Bytes tape_capacity) const;

 private:
  /// Keeps a tape's extent list sorted after an insertion at the back.
  void restore_order(TapeId tape);

  BPlusTree<std::uint32_t, ObjectRecord, 64> primary_;
  std::vector<std::vector<TapeExtent>> by_tape_;
  std::vector<Bytes> used_;
  /// Extra copies keyed by object id value; absent for unreplicated objects.
  std::unordered_map<std::uint32_t, std::vector<ObjectRecord>> replicas_;
  std::size_t replica_total_ = 0;
  std::vector<ReplicaHealth> health_;  ///< by tape index
  std::vector<bool> retired_;          ///< by tape index
};

}  // namespace tapesim::catalog
