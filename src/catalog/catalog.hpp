// The object indexing database.
//
// Maps every object to its physical location (library, tape, byte offset)
// and size. The retrieval scheduler resolves each incoming request through
// this catalog, exactly as the paper's simulator does ("given a request,
// the corresponding tapes are identified based on the object indexing
// database"). Primary index: B+-tree on object id. Secondary index: per-
// tape extent lists, kept sorted by offset for seek-order optimization.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "catalog/btree.hpp"
#include "util/ids.hpp"
#include "util/units.hpp"

namespace tapesim::catalog {

/// Full location record for one object.
struct ObjectRecord {
  ObjectId object;
  Bytes size;
  LibraryId library;
  TapeId tape;
  Bytes offset;  ///< Distance of the object's first byte from BOT.

  [[nodiscard]] Bytes end_offset() const { return offset + size; }
};

/// One object's extent on a tape, as stored in the secondary index.
struct TapeExtent {
  ObjectId object;
  Bytes offset;
  Bytes size;
};

class ObjectCatalog {
 public:
  /// `total_tapes` sizes the secondary index (global tape id space).
  explicit ObjectCatalog(std::uint32_t total_tapes);

  /// Registers an object's location. Returns false if the object id is
  /// already present (each object is placed exactly once — no striping).
  bool insert(const ObjectRecord& record);

  /// Primary lookup; nullptr when absent.
  [[nodiscard]] const ObjectRecord* lookup(ObjectId id) const;
  [[nodiscard]] bool contains(ObjectId id) const {
    return lookup(id) != nullptr;
  }

  /// All extents on `tape`, sorted by offset. Invalidated by insert().
  [[nodiscard]] std::span<const TapeExtent> extents_on(TapeId tape) const;

  /// Bytes occupied on `tape`.
  [[nodiscard]] Bytes used_on(TapeId tape) const;

  [[nodiscard]] std::size_t object_count() const { return primary_.size(); }
  [[nodiscard]] std::uint32_t tape_count() const {
    return static_cast<std::uint32_t>(by_tape_.size());
  }

  /// Verifies global consistency: extents sorted, non-overlapping, within
  /// `tape_capacity`; primary and secondary agree. Aborts on violation.
  void validate(Bytes tape_capacity) const;

 private:
  /// Keeps a tape's extent list sorted after an insertion at the back.
  void restore_order(TapeId tape);

  BPlusTree<std::uint32_t, ObjectRecord, 64> primary_;
  std::vector<std::vector<TapeExtent>> by_tape_;
  std::vector<Bytes> used_;
};

}  // namespace tapesim::catalog
