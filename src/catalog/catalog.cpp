#include "catalog/catalog.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace tapesim::catalog {

const char* to_string(ReplicaHealth h) {
  switch (h) {
    case ReplicaHealth::kGood: return "good";
    case ReplicaHealth::kDegraded: return "degraded";
    case ReplicaHealth::kLost: return "lost";
  }
  return "?";
}

ObjectCatalog::ObjectCatalog(std::uint32_t total_tapes)
    : by_tape_(total_tapes),
      used_(total_tapes),
      health_(total_tapes, ReplicaHealth::kGood),
      retired_(total_tapes, false) {}

bool ObjectCatalog::insert(const ObjectRecord& record) {
  TAPESIM_ASSERT_MSG(record.object.valid(), "object id must be valid");
  TAPESIM_ASSERT_MSG(record.tape.valid() &&
                         record.tape.index() < by_tape_.size(),
                     "tape id out of range");
  if (!primary_.insert(record.object.value(), record)) return false;
  by_tape_[record.tape.index()].push_back(
      TapeExtent{record.object, record.offset, record.size});
  restore_order(record.tape);
  used_[record.tape.index()] += record.size;
  return true;
}

bool ObjectCatalog::insert_replica(const ObjectRecord& record) {
  TAPESIM_ASSERT_MSG(record.object.valid(), "object id must be valid");
  TAPESIM_ASSERT_MSG(record.tape.valid() &&
                         record.tape.index() < by_tape_.size(),
                     "tape id out of range");
  const ObjectRecord* primary = lookup(record.object);
  if (primary == nullptr) return false;
  if (primary->size != record.size) return false;
  if (primary->tape == record.tape) return false;
  auto it = replicas_.find(record.object.value());
  if (it != replicas_.end()) {
    for (const auto& copy : it->second) {
      if (copy.tape == record.tape) return false;
    }
  }
  replicas_[record.object.value()].push_back(record);
  ++replica_total_;
  by_tape_[record.tape.index()].push_back(
      TapeExtent{record.object, record.offset, record.size});
  restore_order(record.tape);
  used_[record.tape.index()] += record.size;
  return true;
}

std::span<const ObjectRecord> ObjectCatalog::replicas(ObjectId id) const {
  auto it = replicas_.find(id.value());
  if (it == replicas_.end()) return {};
  return it->second;
}

std::size_t ObjectCatalog::copy_count(ObjectId id) const {
  if (!contains(id)) return 0;
  return 1 + replicas(id).size();
}

void ObjectCatalog::set_tape_health(TapeId tape, ReplicaHealth health) {
  TAPESIM_ASSERT(tape.valid() && tape.index() < health_.size());
  auto& slot = health_[tape.index()];
  if (health > slot) slot = health;  // escalate-only
}

ReplicaHealth ObjectCatalog::tape_health(TapeId tape) const {
  TAPESIM_ASSERT(tape.valid() && tape.index() < health_.size());
  return health_[tape.index()];
}

void ObjectCatalog::retire_tape(TapeId tape) {
  TAPESIM_ASSERT(tape.valid() && tape.index() < retired_.size());
  retired_[tape.index()] = true;
}

bool ObjectCatalog::tape_retired(TapeId tape) const {
  TAPESIM_ASSERT(tape.valid() && tape.index() < retired_.size());
  return retired_[tape.index()];
}

const ObjectRecord* ObjectCatalog::best_replica(
    ObjectId id, std::span<const TapeId> exclude,
    std::span<const LibraryId> exclude_libraries) const {
  const ObjectRecord* best = nullptr;
  auto excluded = [&](TapeId t) {
    return std::find(exclude.begin(), exclude.end(), t) != exclude.end();
  };
  auto excluded_library = [&](LibraryId l) {
    return std::find(exclude_libraries.begin(), exclude_libraries.end(), l) !=
           exclude_libraries.end();
  };
  auto consider = [&](const ObjectRecord& copy) {
    if (excluded(copy.tape)) return;
    if (excluded_library(copy.library)) return;
    if (retired_[copy.tape.index()]) return;
    ReplicaHealth h = tape_health(copy.tape);
    if (h == ReplicaHealth::kLost) return;
    // Good beats Degraded; earlier copy (primary first) wins ties.
    if (best == nullptr || h < tape_health(best->tape)) best = &copy;
  };
  if (const ObjectRecord* primary = lookup(id)) consider(*primary);
  for (const auto& copy : replicas(id)) consider(copy);
  return best;
}

void ObjectCatalog::restore_order(TapeId tape) {
  auto& extents = by_tape_[tape.index()];
  // Placements append mostly in offset order; a single insertion-sort step
  // keeps this amortized O(1) for that common case.
  for (std::size_t i = extents.size(); i > 1; --i) {
    if (extents[i - 2].offset <= extents[i - 1].offset) break;
    std::swap(extents[i - 2], extents[i - 1]);
  }
}

const ObjectRecord* ObjectCatalog::lookup(ObjectId id) const {
  return primary_.find(id.value());
}

std::span<const TapeExtent> ObjectCatalog::extents_on(TapeId tape) const {
  TAPESIM_ASSERT(tape.valid() && tape.index() < by_tape_.size());
  return by_tape_[tape.index()];
}

Bytes ObjectCatalog::used_on(TapeId tape) const {
  TAPESIM_ASSERT(tape.valid() && tape.index() < used_.size());
  return used_[tape.index()];
}

bool ObjectCatalog::equals(const ObjectCatalog& other) const {
  if (primary_.size() != other.primary_.size()) return false;
  if (replica_total_ != other.replica_total_) return false;
  if (used_ != other.used_) return false;
  if (health_ != other.health_) return false;
  if (retired_ != other.retired_) return false;
  if (by_tape_ != other.by_tape_) return false;
  bool equal = true;
  for_each_primary([&](const ObjectRecord& rec) {
    if (!equal) return;
    const ObjectRecord* theirs = other.lookup(rec.object);
    if (theirs == nullptr || !(*theirs == rec)) {
      equal = false;
      return;
    }
    const std::span<const ObjectRecord> mine = replicas(rec.object);
    const std::span<const ObjectRecord> peers = other.replicas(rec.object);
    if (mine.size() != peers.size() ||
        !std::equal(mine.begin(), mine.end(), peers.begin())) {
      equal = false;
    }
  });
  return equal;
}

void ObjectCatalog::validate(Bytes tape_capacity) const {
  std::size_t secondary_total = 0;
  for (std::uint32_t t = 0; t < by_tape_.size(); ++t) {
    const auto& extents = by_tape_[t];
    Bytes used{};
    for (std::size_t i = 0; i < extents.size(); ++i) {
      const auto& e = extents[i];
      TAPESIM_ASSERT_MSG(e.offset + e.size <= tape_capacity,
                         "extent beyond tape capacity");
      if (i > 0) {
        TAPESIM_ASSERT_MSG(
            extents[i - 1].offset + extents[i - 1].size <= e.offset,
            "overlapping extents on one tape");
      }
      const ObjectRecord* rec = lookup(e.object);
      TAPESIM_ASSERT_MSG(rec != nullptr, "secondary entry missing primary");
      bool matched = rec->tape == TapeId{t} && rec->offset == e.offset &&
                     rec->size == e.size;
      if (!matched) {
        for (const auto& copy : replicas(e.object)) {
          if (copy.tape == TapeId{t} && copy.offset == e.offset &&
              copy.size == e.size) {
            matched = true;
            break;
          }
        }
      }
      TAPESIM_ASSERT_MSG(matched, "extent matches no copy of its object");
      used += e.size;
    }
    TAPESIM_ASSERT_MSG(used == used_[t], "per-tape usage bookkeeping drifted");
    secondary_total += extents.size();
  }
  TAPESIM_ASSERT_MSG(secondary_total == primary_.size() + replica_total_,
                     "primary/secondary index cardinality mismatch");
  primary_.validate();
}

}  // namespace tapesim::catalog
