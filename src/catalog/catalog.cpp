#include "catalog/catalog.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace tapesim::catalog {

ObjectCatalog::ObjectCatalog(std::uint32_t total_tapes)
    : by_tape_(total_tapes), used_(total_tapes) {}

bool ObjectCatalog::insert(const ObjectRecord& record) {
  TAPESIM_ASSERT_MSG(record.object.valid(), "object id must be valid");
  TAPESIM_ASSERT_MSG(record.tape.valid() &&
                         record.tape.index() < by_tape_.size(),
                     "tape id out of range");
  if (!primary_.insert(record.object.value(), record)) return false;
  by_tape_[record.tape.index()].push_back(
      TapeExtent{record.object, record.offset, record.size});
  restore_order(record.tape);
  used_[record.tape.index()] += record.size;
  return true;
}

void ObjectCatalog::restore_order(TapeId tape) {
  auto& extents = by_tape_[tape.index()];
  // Placements append mostly in offset order; a single insertion-sort step
  // keeps this amortized O(1) for that common case.
  for (std::size_t i = extents.size(); i > 1; --i) {
    if (extents[i - 2].offset <= extents[i - 1].offset) break;
    std::swap(extents[i - 2], extents[i - 1]);
  }
}

const ObjectRecord* ObjectCatalog::lookup(ObjectId id) const {
  return primary_.find(id.value());
}

std::span<const TapeExtent> ObjectCatalog::extents_on(TapeId tape) const {
  TAPESIM_ASSERT(tape.valid() && tape.index() < by_tape_.size());
  return by_tape_[tape.index()];
}

Bytes ObjectCatalog::used_on(TapeId tape) const {
  TAPESIM_ASSERT(tape.valid() && tape.index() < used_.size());
  return used_[tape.index()];
}

void ObjectCatalog::validate(Bytes tape_capacity) const {
  std::size_t secondary_total = 0;
  for (std::uint32_t t = 0; t < by_tape_.size(); ++t) {
    const auto& extents = by_tape_[t];
    Bytes used{};
    for (std::size_t i = 0; i < extents.size(); ++i) {
      const auto& e = extents[i];
      TAPESIM_ASSERT_MSG(e.offset + e.size <= tape_capacity,
                         "extent beyond tape capacity");
      if (i > 0) {
        TAPESIM_ASSERT_MSG(
            extents[i - 1].offset + extents[i - 1].size <= e.offset,
            "overlapping extents on one tape");
      }
      const ObjectRecord* rec = lookup(e.object);
      TAPESIM_ASSERT_MSG(rec != nullptr, "secondary entry missing primary");
      TAPESIM_ASSERT(rec->tape == TapeId{t});
      TAPESIM_ASSERT(rec->offset == e.offset && rec->size == e.size);
      used += e.size;
    }
    TAPESIM_ASSERT_MSG(used == used_[t], "per-tape usage bookkeeping drifted");
    secondary_total += extents.size();
  }
  TAPESIM_ASSERT_MSG(secondary_total == primary_.size(),
                     "primary/secondary index cardinality mismatch");
  primary_.validate();
}

}  // namespace tapesim::catalog
