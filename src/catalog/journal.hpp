// Durable control plane: a write-ahead log for the object catalog.
//
// The catalog's in-memory state (placements, replicas, health, retirements)
// is assumed instantly durable by PRs 1-8; this header drops that
// assumption. Every catalog mutation is appended to a simulated log device
// as a typed record, made durable per a configurable fsync policy:
//
//   * kSync: every append hits stable storage before it returns.
//   * kGroupCommit: appends batch; the batch syncs when its time window
//     closes or it reaches a size cap, whichever comes first.
//   * kAsync: appends are acknowledged immediately and written back a
//     fixed delay later.
//
// Periodic checkpoints capture a logical snapshot of the full catalog and
// truncate the log prefix the snapshot covers, bounding replay length.
//
// The journal is a *passive* ledger: it never touches the engine, never
// blocks the mutation it records, and consumes no RNG draws — durability
// times are modeled retroactively, so a simulator with the journal enabled
// schedules exactly the same events as one without (the crash-off
// bit-identity requirement). On a simulated metadata-server crash the
// owner calls crash_cut(): records unsynced at the crash instant form the
// torn tail — a uniform draw (supplied by the fault injector's crash
// substream) picks how many of them physically landed before the power
// went; the rest are lost and surface through take_lost() for
// reconciliation against tape reality. replay() then rebuilds a catalog
// from snapshot + surviving log, idempotently.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "catalog/catalog.hpp"
#include "util/error.hpp"
#include "util/units.hpp"

namespace tapesim::catalog {

/// When an appended record reaches stable storage.
enum class FsyncPolicy : std::uint8_t {
  kSync,         ///< Durable at append time (fsync per record).
  kGroupCommit,  ///< Durable when the open batch's window/size cap closes.
  kAsync,        ///< Durable a fixed writeback delay after append.
};

[[nodiscard]] const char* to_string(FsyncPolicy p);

/// Journal + checkpoint + recovery-cost knobs. Defaults disable the
/// subsystem entirely: a default-constructed JournalConfig builds no
/// journal and the simulator is bit-identical to a build without one.
struct JournalConfig {
  bool enabled = false;
  FsyncPolicy fsync = FsyncPolicy::kSync;
  /// Group commit: a batch syncs this long after its first record.
  Seconds group_window{0.05};
  /// Group commit: a batch syncs immediately at this size.
  std::uint32_t group_max_records = 64;
  /// Async: acknowledged records hit stable storage this long later.
  Seconds async_flush{30.0};
  /// Snapshot + truncate cadence (observed lazily at admission
  /// boundaries); 0 checkpoints only at recovery.
  Seconds checkpoint_interval{4.0 * 3600.0};
  /// Recovery cost model: fixed restart cost, per-record replay cost, and
  /// per-record cost of reconciling a lost mutation against tape reality
  /// (a scrub-style rediscovery is far slower than a log replay).
  Seconds recovery_base{30.0};
  Seconds replay_per_record{0.002};
  Seconds reconcile_per_record{5.0};

  [[nodiscard]] Status try_validate() const;
};

/// The catalog mutation vocabulary, one tag per public mutator.
enum class MutationKind : std::uint8_t {
  kInsert,         ///< Primary placement (ObjectRecord payload).
  kInsertReplica,  ///< Additional copy (ObjectRecord payload).
  kSetTapeHealth,  ///< Escalate-only health transition (tape + health).
  kRetireTape,     ///< One-way retirement (tape).
};

[[nodiscard]] const char* to_string(MutationKind k);

/// One logged mutation. `durable_at` is +infinity while the record sits in
/// an unsynced batch; crash_cut() and the group/async writeback model
/// resolve it retroactively.
struct JournalRecord {
  std::uint64_t lsn = 0;
  MutationKind kind = MutationKind::kInsert;
  Seconds at{};
  Seconds durable_at{};
  ObjectRecord object{};  ///< Payload for kInsert / kInsertReplica.
  TapeId tape{};          ///< Payload for kSetTapeHealth / kRetireTape.
  ReplicaHealth health = ReplicaHealth::kGood;
};

/// Running totals of the journal ledger. Conservation invariant, checked
/// by the chaos soak and the crash bench: appends == records_truncated +
/// records_lost + live_records() at every quiescent point, and
/// records_lost == records_reconciled once every crash has been recovered.
struct JournalStats {
  std::uint64_t appends = 0;
  std::uint64_t fsyncs = 0;  ///< Stable-storage write operations modeled.
  std::uint64_t checkpoints = 0;
  std::uint64_t records_truncated = 0;  ///< Dropped by checkpoint truncation.
  std::uint64_t records_replayed = 0;   ///< Applied by replay() calls.
  std::uint64_t records_lost = 0;       ///< Torn-tail casualties.
  std::uint64_t records_reconciled = 0; ///< Lost records re-derived.
};

class Journal {
 public:
  /// `config` must validate and be enabled; `total_tapes` sizes rebuilt
  /// catalogs (global tape id space).
  Journal(const JournalConfig& config, std::uint32_t total_tapes);

  [[nodiscard]] const JournalConfig& config() const { return config_; }
  [[nodiscard]] const JournalStats& stats() const { return stats_; }

  // --- mutation logging (call after the catalog mutation succeeded) ---
  void log_insert(const ObjectRecord& rec, Seconds now);
  void log_insert_replica(const ObjectRecord& rec, Seconds now);
  void log_set_tape_health(TapeId tape, ReplicaHealth health, Seconds now);
  void log_retire_tape(TapeId tape, Seconds now);

  // --- checkpoints ---
  /// True when `now` is at least one checkpoint interval past the last
  /// snapshot (never true with a zero interval).
  [[nodiscard]] bool checkpoint_due(Seconds now) const;
  /// Syncs every pending record, captures a logical snapshot of `catalog`,
  /// and truncates the log the snapshot covers.
  void checkpoint(const ObjectCatalog& catalog, Seconds now);
  [[nodiscard]] Seconds snapshot_at() const { return snapshot_.taken_at; }
  [[nodiscard]] std::uint64_t snapshot_lsn() const { return snapshot_.lsn; }

  // --- crash + recovery ---
  struct CrashCut {
    std::uint64_t survivors = 0;  ///< Live log records after the cut.
    std::uint64_t lost = 0;       ///< Torn-tail records dropped.
  };
  /// Applies a metadata-server crash at `at`: records unsynced at the
  /// crash instant form the torn tail; `torn_draw` (uniform in [0, 1))
  /// picks how many of them physically landed before the crash. The rest
  /// move to the lost ledger. Records appended after `at` (mutations the
  /// recovered server performed) are untouched.
  CrashCut crash_cut(Seconds at, double torn_draw);
  /// Rebuilds a catalog from the snapshot plus every surviving log
  /// record, applied idempotently in LSN order.
  [[nodiscard]] ObjectCatalog replay();
  /// The lost mutations of the latest cut, for reconciliation against
  /// tape reality; counts them reconciled and clears the ledger.
  [[nodiscard]] std::vector<JournalRecord> take_lost();
  /// Applies one record to `c` idempotently (replay and the owner's
  /// reconciliation pass share this).
  static void apply(ObjectCatalog& c, const JournalRecord& rec);

  /// Records currently in the live log (appended, not truncated or lost).
  [[nodiscard]] std::uint64_t live_records() const { return log_.size(); }
  [[nodiscard]] std::span<const JournalRecord> records() const {
    return log_;
  }

 private:
  /// Logical image of the full catalog state as of one LSN.
  struct CatalogImage {
    std::uint64_t lsn = 0;
    Seconds taken_at{};
    std::vector<ObjectRecord> primaries;  ///< Ascending object id.
    /// Grouped by primary order, preserving per-object insertion order
    /// (best_replica tie-breaks on it).
    std::vector<ObjectRecord> replicas;
    std::vector<ReplicaHealth> health;  ///< By tape index.
    std::vector<bool> retired;          ///< By tape index.
  };

  void append(JournalRecord rec, Seconds now);
  /// Group commit: resolves the open batch if its window closed by `now`.
  void flush_group_window(Seconds now);
  /// Makes every pending record durable no later than `now` (checkpoint
  /// barrier).
  void sync_barrier(Seconds now);
  /// Re-derives the open-batch bookkeeping from the log tail (after a
  /// crash cut removed batch members).
  void rebuild_group_state();

  JournalConfig config_;
  JournalStats stats_;
  std::uint32_t total_tapes_ = 0;
  std::uint64_t next_lsn_ = 1;
  std::vector<JournalRecord> log_;  ///< Records after the last checkpoint.
  std::vector<JournalRecord> lost_;
  CatalogImage snapshot_;
  // Group-commit open batch: the last `batch_count_` log records, pending
  // since `batch_open_at_`.
  std::uint32_t batch_count_ = 0;
  Seconds batch_open_at_{};
};

}  // namespace tapesim::catalog
