#include "catalog/journal.hpp"

#include <limits>
#include <utility>

#include "util/assert.hpp"

namespace tapesim::catalog {

namespace {
constexpr Seconds kNever{std::numeric_limits<double>::infinity()};
}  // namespace

// Idempotent apply: inserts already present (covered by the snapshot, or
// re-derived by reconciliation) return false and are skipped; health and
// retirement are monotone by construction.
void Journal::apply(ObjectCatalog& c, const JournalRecord& rec) {
  switch (rec.kind) {
    case MutationKind::kInsert:
      (void)c.insert(rec.object);
      break;
    case MutationKind::kInsertReplica:
      (void)c.insert_replica(rec.object);
      break;
    case MutationKind::kSetTapeHealth:
      c.set_tape_health(rec.tape, rec.health);
      break;
    case MutationKind::kRetireTape:
      c.retire_tape(rec.tape);
      break;
  }
}

const char* to_string(FsyncPolicy p) {
  switch (p) {
    case FsyncPolicy::kSync: return "sync";
    case FsyncPolicy::kGroupCommit: return "group";
    case FsyncPolicy::kAsync: return "async";
  }
  return "?";
}

const char* to_string(MutationKind k) {
  switch (k) {
    case MutationKind::kInsert: return "insert";
    case MutationKind::kInsertReplica: return "insert_replica";
    case MutationKind::kSetTapeHealth: return "set_tape_health";
    case MutationKind::kRetireTape: return "retire_tape";
  }
  return "?";
}

Status JournalConfig::try_validate() const {
  StatusBuilder check("JournalConfig");
  check.require(group_window.count() > 0.0,
                "group-commit window must be positive");
  check.require(group_max_records > 0,
                "group-commit size cap must allow at least one record");
  check.require(async_flush.count() > 0.0,
                "async writeback delay must be positive");
  check.require(checkpoint_interval.count() >= 0.0,
                "checkpoint interval must be >= 0");
  check.require(recovery_base.count() >= 0.0,
                "recovery base cost must be >= 0");
  check.require(replay_per_record.count() >= 0.0,
                "per-record replay cost must be >= 0");
  check.require(reconcile_per_record.count() >= 0.0,
                "per-record reconcile cost must be >= 0");
  return check.take();
}

Journal::Journal(const JournalConfig& config, std::uint32_t total_tapes)
    : config_(config), total_tapes_(total_tapes) {
  TAPESIM_ASSERT_MSG(config_.enabled, "journal built while disabled");
  TAPESIM_ASSERT_MSG(config_.try_validate().ok(),
                     "journal config must validate");
  snapshot_.health.assign(total_tapes_, ReplicaHealth::kGood);
  snapshot_.retired.assign(total_tapes_, false);
}

void Journal::log_insert(const ObjectRecord& rec, Seconds now) {
  JournalRecord r;
  r.kind = MutationKind::kInsert;
  r.object = rec;
  append(r, now);
}

void Journal::log_insert_replica(const ObjectRecord& rec, Seconds now) {
  JournalRecord r;
  r.kind = MutationKind::kInsertReplica;
  r.object = rec;
  append(r, now);
}

void Journal::log_set_tape_health(TapeId tape, ReplicaHealth health,
                                  Seconds now) {
  JournalRecord r;
  r.kind = MutationKind::kSetTapeHealth;
  r.tape = tape;
  r.health = health;
  append(r, now);
}

void Journal::log_retire_tape(TapeId tape, Seconds now) {
  JournalRecord r;
  r.kind = MutationKind::kRetireTape;
  r.tape = tape;
  append(r, now);
}

void Journal::append(JournalRecord rec, Seconds now) {
  rec.lsn = next_lsn_++;
  rec.at = now;
  switch (config_.fsync) {
    case FsyncPolicy::kSync:
      rec.durable_at = now;
      ++stats_.fsyncs;
      log_.push_back(rec);
      break;
    case FsyncPolicy::kGroupCommit: {
      flush_group_window(now);
      rec.durable_at = kNever;
      log_.push_back(rec);
      if (batch_count_ == 0) batch_open_at_ = now;
      ++batch_count_;
      if (batch_count_ >= config_.group_max_records) {
        for (std::uint32_t i = 0; i < batch_count_; ++i) {
          log_[log_.size() - 1 - i].durable_at = now;
        }
        ++stats_.fsyncs;
        batch_count_ = 0;
      }
      break;
    }
    case FsyncPolicy::kAsync:
      rec.durable_at = now + config_.async_flush;
      ++stats_.fsyncs;
      log_.push_back(rec);
      break;
  }
  ++stats_.appends;
}

void Journal::flush_group_window(Seconds now) {
  if (batch_count_ == 0) return;
  const Seconds due = batch_open_at_ + config_.group_window;
  if (due > now) return;
  for (std::uint32_t i = 0; i < batch_count_; ++i) {
    log_[log_.size() - 1 - i].durable_at = due;
  }
  ++stats_.fsyncs;
  batch_count_ = 0;
}

void Journal::sync_barrier(Seconds now) {
  flush_group_window(now);
  if (batch_count_ > 0) {
    for (std::uint32_t i = 0; i < batch_count_; ++i) {
      log_[log_.size() - 1 - i].durable_at = now;
    }
    ++stats_.fsyncs;
    batch_count_ = 0;
  }
  // Async records still awaiting writeback land now (their fsync was
  // already counted at append).
  for (auto it = log_.rbegin(); it != log_.rend() && it->durable_at > now;
       ++it) {
    it->durable_at = now;
  }
}

void Journal::rebuild_group_state() {
  if (config_.fsync != FsyncPolicy::kGroupCommit) return;
  batch_count_ = 0;
  for (auto it = log_.rbegin(); it != log_.rend() && it->durable_at == kNever;
       ++it) {
    ++batch_count_;
    batch_open_at_ = it->at;
  }
}

bool Journal::checkpoint_due(Seconds now) const {
  if (config_.checkpoint_interval.count() <= 0.0) return false;
  return now >= snapshot_.taken_at + config_.checkpoint_interval;
}

void Journal::checkpoint(const ObjectCatalog& catalog, Seconds now) {
  sync_barrier(now);
  snapshot_.lsn = next_lsn_ - 1;
  snapshot_.taken_at = now;
  snapshot_.primaries.clear();
  snapshot_.replicas.clear();
  snapshot_.primaries.reserve(catalog.object_count());
  catalog.for_each_primary([&](const ObjectRecord& rec) {
    snapshot_.primaries.push_back(rec);
    for (const ObjectRecord& copy : catalog.replicas(rec.object)) {
      snapshot_.replicas.push_back(copy);
    }
  });
  snapshot_.health.resize(catalog.tape_count());
  snapshot_.retired.resize(catalog.tape_count());
  for (std::uint32_t t = 0; t < catalog.tape_count(); ++t) {
    snapshot_.health[t] = catalog.tape_health(TapeId{t});
    snapshot_.retired[t] = catalog.tape_retired(TapeId{t});
  }
  stats_.records_truncated += log_.size();
  log_.clear();
  batch_count_ = 0;
  ++stats_.checkpoints;
}

Journal::CrashCut Journal::crash_cut(Seconds at, double torn_draw) {
  TAPESIM_ASSERT_MSG(lost_.empty(),
                     "previous crash's lost records were never reconciled");
  flush_group_window(at);
  // [s, e): records appended by `at` but not yet on stable storage — the
  // only region a crash can touch. Durability is sequential, so the
  // unsynced set is contiguous.
  std::size_t e = log_.size();
  while (e > 0 && log_[e - 1].at > at) --e;
  std::size_t s = e;
  while (s > 0 && log_[s - 1].durable_at > at) --s;
  for (std::size_t i = 0; i < s; ++i) {
    TAPESIM_ASSERT_MSG(log_[i].durable_at <= at,
                       "unsynced log region must be contiguous");
  }
  const std::size_t n = e - s;
  auto survivors =
      static_cast<std::size_t>(torn_draw * static_cast<double>(n + 1));
  if (survivors > n) survivors = n;
  // The surviving prefix physically landed before the power went; it
  // replays like any synced record.
  for (std::size_t i = s; i < s + survivors; ++i) log_[i].durable_at = at;
  lost_.assign(log_.begin() + static_cast<std::ptrdiff_t>(s + survivors),
               log_.begin() + static_cast<std::ptrdiff_t>(e));
  log_.erase(log_.begin() + static_cast<std::ptrdiff_t>(s + survivors),
             log_.begin() + static_cast<std::ptrdiff_t>(e));
  stats_.records_lost += lost_.size();
  rebuild_group_state();
  return CrashCut{log_.size(), lost_.size()};
}

ObjectCatalog Journal::replay() {
  ObjectCatalog c(total_tapes_);
  for (const ObjectRecord& p : snapshot_.primaries) {
    const bool ok = c.insert(p);
    TAPESIM_ASSERT_MSG(ok, "snapshot primary failed to re-insert");
  }
  for (const ObjectRecord& r : snapshot_.replicas) {
    const bool ok = c.insert_replica(r);
    TAPESIM_ASSERT_MSG(ok, "snapshot replica failed to re-insert");
  }
  for (std::uint32_t t = 0; t < snapshot_.health.size(); ++t) {
    if (snapshot_.health[t] != ReplicaHealth::kGood) {
      c.set_tape_health(TapeId{t}, snapshot_.health[t]);
    }
    if (snapshot_.retired[t]) c.retire_tape(TapeId{t});
  }
  std::uint64_t last_lsn = snapshot_.lsn;
  for (const JournalRecord& rec : log_) {
    TAPESIM_ASSERT_MSG(rec.lsn > last_lsn, "replay saw a non-monotone LSN");
    last_lsn = rec.lsn;
    apply(c, rec);
  }
  stats_.records_replayed += log_.size();
  return c;
}

std::vector<JournalRecord> Journal::take_lost() {
  stats_.records_reconciled += lost_.size();
  return std::exchange(lost_, {});
}

}  // namespace tapesim::catalog
