#include "trace/outcome_log.hpp"

#include <ostream>

namespace tapesim::trace {

OutcomeLog::OutcomeLog(std::ostream& out) : out_(&out) {
  *out_ << kHeader << '\n';
}

void OutcomeLog::record(const metrics::RequestOutcome& outcome) {
  *out_ << outcome.request.value() << ',' << outcome.bytes.count() << ','
        << outcome.response.count() << ',' << outcome.switch_time.count()
        << ',' << outcome.seek.count() << ',' << outcome.transfer.count()
        << ',' << outcome.robot_wait.count() << ',' << outcome.tape_switches
        << ',' << outcome.tapes_touched << ',' << outcome.drives_used << ','
        << outcome.bandwidth().megabytes_per_second() << '\n';
  ++rows_;
}

}  // namespace tapesim::trace
