// Placement-plan serialization.
//
// A finished plan round-trips through two CSVs: the physical layout
// (tape,object,offset_bytes,size_bytes in on-tape order) and the mount
// policy (replacement policy, then one row per initial mount with its
// pinned flag). Loading reconstructs a validated plan against a workload
// and spec — enough to re-simulate someone else's placement byte-for-byte.
#pragma once

#include <iosfwd>
#include <string>

#include "core/plan.hpp"

namespace tapesim::trace {

void save_plan(const core::PlacementPlan& plan, std::ostream& layout,
               std::ostream& policy);

/// Writes `<prefix>.layout.csv` and `<prefix>.mounts.csv`.
void save_plan(const core::PlacementPlan& plan, const std::string& prefix);

/// Rebuilds a plan from the two streams. The workload/spec must be the
/// ones the plan was built for; the result is validate()d.
[[nodiscard]] core::PlacementPlan load_plan(
    const tape::SystemSpec& spec, const workload::Workload& workload,
    std::istream& layout, std::istream& policy);

[[nodiscard]] core::PlacementPlan load_plan(const tape::SystemSpec& spec,
                                            const workload::Workload& workload,
                                            const std::string& prefix);

}  // namespace tapesim::trace
