#include "trace/workload_io.hpp"

#include <charconv>
#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace tapesim::trace {
namespace {

[[noreturn]] void fail(const std::string& what, std::size_t line) {
  throw std::runtime_error("workload parse error at line " +
                           std::to_string(line) + ": " + what);
}

std::uint64_t parse_u64(std::string_view token, std::size_t line) {
  std::uint64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value);
  if (ec != std::errc{} || ptr != token.data() + token.size()) {
    fail("expected integer, got '" + std::string(token) + "'", line);
  }
  return value;
}

double parse_double(std::string_view token, std::size_t line) {
  try {
    std::size_t consumed = 0;
    const double value = std::stod(std::string(token), &consumed);
    if (consumed != token.size()) throw std::invalid_argument("trailing");
    return value;
  } catch (const std::exception&) {
    fail("expected number, got '" + std::string(token) + "'", line);
  }
}

}  // namespace

void save_workload(const workload::Workload& workload, std::ostream& objects,
                   std::ostream& requests) {
  objects << "object,size_bytes\n";
  for (const workload::ObjectInfo& o : workload.objects()) {
    objects << o.id.value() << ',' << o.size.count() << '\n';
  }
  requests << "request,probability,objects\n";
  requests.precision(17);
  for (const workload::Request& r : workload.requests()) {
    requests << r.id.value() << ',' << r.probability << ',';
    for (std::size_t i = 0; i < r.objects.size(); ++i) {
      if (i != 0) requests << ' ';
      requests << r.objects[i].value();
    }
    requests << '\n';
  }
}

void save_workload(const workload::Workload& workload,
                   const std::string& prefix) {
  std::ofstream objects(prefix + ".objects.csv");
  std::ofstream requests(prefix + ".requests.csv");
  if (!objects || !requests) {
    throw std::runtime_error("cannot open workload files for " + prefix);
  }
  save_workload(workload, objects, requests);
  if (!objects || !requests) {
    throw std::runtime_error("write failed for " + prefix);
  }
}

workload::Workload load_workload(std::istream& objects,
                                 std::istream& requests) {
  std::string line;
  std::size_t line_no = 0;

  std::vector<workload::ObjectInfo> object_list;
  if (!std::getline(objects, line) || line != "object,size_bytes") {
    fail("missing objects header", 1);
  }
  line_no = 1;
  while (std::getline(objects, line)) {
    ++line_no;
    if (line.empty()) continue;
    const auto comma = line.find(',');
    if (comma == std::string::npos) fail("missing comma", line_no);
    const auto id = parse_u64(std::string_view(line).substr(0, comma), line_no);
    const auto size =
        parse_u64(std::string_view(line).substr(comma + 1), line_no);
    object_list.push_back(workload::ObjectInfo{
        ObjectId{static_cast<std::uint32_t>(id)}, Bytes{size}});
  }

  std::vector<workload::Request> request_list;
  if (!std::getline(requests, line) ||
      line != "request,probability,objects") {
    fail("missing requests header", 1);
  }
  line_no = 1;
  while (std::getline(requests, line)) {
    ++line_no;
    if (line.empty()) continue;
    const auto c1 = line.find(',');
    const auto c2 = c1 == std::string::npos ? c1 : line.find(',', c1 + 1);
    if (c2 == std::string::npos) fail("expected three fields", line_no);
    workload::Request request;
    request.id = RequestId{static_cast<std::uint32_t>(
        parse_u64(std::string_view(line).substr(0, c1), line_no))};
    request.probability = parse_double(
        std::string_view(line).substr(c1 + 1, c2 - c1 - 1), line_no);
    std::istringstream members(line.substr(c2 + 1));
    std::string token;
    while (members >> token) {
      request.objects.push_back(ObjectId{
          static_cast<std::uint32_t>(parse_u64(token, line_no))});
    }
    request_list.push_back(std::move(request));
  }

  workload::Workload result{std::move(object_list), std::move(request_list)};
  result.validate();
  return result;
}

workload::Workload load_workload(const std::string& prefix) {
  std::ifstream objects(prefix + ".objects.csv");
  std::ifstream requests(prefix + ".requests.csv");
  if (!objects || !requests) {
    throw std::runtime_error("cannot open workload files for " + prefix);
  }
  return load_workload(objects, requests);
}

}  // namespace tapesim::trace
