// Workload serialization.
//
// Experiments must be shareable and re-runnable: a workload round-trips
// through two CSV files (objects: id,size_bytes; requests:
// id,probability,object ids separated by spaces). The format is plain
// enough to generate from real backup-catalog exports.
#pragma once

#include <iosfwd>
#include <string>

#include "workload/model.hpp"

namespace tapesim::trace {

/// Writes `workload` to the two streams.
void save_workload(const workload::Workload& workload, std::ostream& objects,
                   std::ostream& requests);

/// Convenience: writes `<prefix>.objects.csv` and `<prefix>.requests.csv`.
/// Throws std::runtime_error on I/O failure.
void save_workload(const workload::Workload& workload,
                   const std::string& prefix);

/// Parses a workload previously written by save_workload. Throws
/// std::runtime_error on malformed input; the result is validate()d.
[[nodiscard]] workload::Workload load_workload(std::istream& objects,
                                               std::istream& requests);

/// Convenience: reads `<prefix>.objects.csv` and `<prefix>.requests.csv`.
[[nodiscard]] workload::Workload load_workload(const std::string& prefix);

}  // namespace tapesim::trace
