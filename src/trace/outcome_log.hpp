// Per-request outcome logging.
//
// Streams every simulated request's decomposition to CSV so runs can be
// analyzed offline (distribution plots, regression diffs between builds).
#pragma once

#include <iosfwd>
#include <string>

#include "metrics/request_metrics.hpp"

namespace tapesim::trace {

class OutcomeLog {
 public:
  /// Writes the CSV header to `out` (not owned; must outlive the log).
  explicit OutcomeLog(std::ostream& out);

  /// Appends one outcome row.
  void record(const metrics::RequestOutcome& outcome);

  [[nodiscard]] std::size_t rows() const { return rows_; }

  static constexpr const char* kHeader =
      "request,bytes,response_s,switch_s,seek_s,transfer_s,robot_wait_s,"
      "mounts,tapes,drives,bandwidth_mbps";

 private:
  std::ostream* out_;
  std::size_t rows_ = 0;
};

}  // namespace tapesim::trace
