#include "trace/plan_io.hpp"

#include <charconv>
#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "util/assert.hpp"

namespace tapesim::trace {
namespace {

[[noreturn]] void fail(const std::string& what, std::size_t line) {
  throw std::runtime_error("plan parse error at line " +
                           std::to_string(line) + ": " + what);
}

std::uint64_t field_u64(std::istringstream& ss, std::size_t line) {
  std::string token;
  if (!std::getline(ss, token, ',')) fail("missing field", line);
  std::uint64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value);
  if (ec != std::errc{} || ptr != token.data() + token.size()) {
    fail("expected integer, got '" + token + "'", line);
  }
  return value;
}

}  // namespace

void save_plan(const core::PlacementPlan& plan, std::ostream& layout,
               std::ostream& policy) {
  layout << "tape,object,offset_bytes,size_bytes\n";
  for (std::uint32_t t = 0; t < plan.spec().total_tapes(); ++t) {
    for (const core::PlacedObject& p : plan.on_tape(TapeId{t})) {
      layout << t << ',' << p.object.value() << ',' << p.offset.count()
             << ',' << p.size.count() << '\n';
    }
  }

  policy << "replacement,"
         << (plan.mount_policy.replacement ==
                     core::ReplacementPolicy::kFixedBatch
                 ? "fixed-batch"
                 : "least-popular")
         << '\n';
  policy << "drive,tape,pinned\n";
  for (const auto& [drive, tape] : plan.mount_policy.initial_mounts) {
    policy << drive.value() << ',' << tape.value() << ','
           << (plan.mount_policy.pinned(drive) ? 1 : 0) << '\n';
  }
}

void save_plan(const core::PlacementPlan& plan, const std::string& prefix) {
  std::ofstream layout(prefix + ".layout.csv");
  std::ofstream policy(prefix + ".mounts.csv");
  if (!layout || !policy) {
    throw std::runtime_error("cannot open plan files for " + prefix);
  }
  save_plan(plan, layout, policy);
  if (!layout || !policy) {
    throw std::runtime_error("write failed for " + prefix);
  }
}

core::PlacementPlan load_plan(const tape::SystemSpec& spec,
                              const workload::Workload& workload,
                              std::istream& layout, std::istream& policy) {
  core::PlacementPlan plan(spec, workload);

  std::string line;
  std::size_t line_no = 1;
  if (!std::getline(layout, line) ||
      line != "tape,object,offset_bytes,size_bytes") {
    fail("missing layout header", 1);
  }
  // Rows arrive in on-tape order; assign() reproduces exactly that order
  // and align_all(kGivenOrder) restores the offsets, which we then verify.
  struct Row {
    std::uint32_t tape;
    std::uint32_t object;
    std::uint64_t offset;
    std::uint64_t size;
  };
  std::vector<Row> rows;
  while (std::getline(layout, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::istringstream ss(line);
    Row row;
    row.tape = static_cast<std::uint32_t>(field_u64(ss, line_no));
    row.object = static_cast<std::uint32_t>(field_u64(ss, line_no));
    row.offset = field_u64(ss, line_no);
    row.size = field_u64(ss, line_no);
    rows.push_back(row);
  }
  for (const Row& row : rows) {
    plan.assign(ObjectId{row.object}, TapeId{row.tape});
  }
  plan.align_all(core::Alignment::kGivenOrder);
  for (const Row& row : rows) {
    bool found = false;
    for (const core::PlacedObject& p : plan.on_tape(TapeId{row.tape})) {
      if (p.object == ObjectId{row.object}) {
        if (p.offset.count() != row.offset || p.size.count() != row.size) {
          throw std::runtime_error(
              "plan layout inconsistent with workload (object " +
              std::to_string(row.object) + ")");
        }
        found = true;
        break;
      }
    }
    if (!found) {
      throw std::runtime_error("layout row lost during reconstruction");
    }
  }

  line_no = 1;
  if (!std::getline(policy, line) || line.rfind("replacement,", 0) != 0) {
    fail("missing replacement header", 1);
  }
  const std::string policy_name = line.substr(std::string("replacement,").size());
  if (policy_name == "fixed-batch") {
    plan.mount_policy.replacement = core::ReplacementPolicy::kFixedBatch;
  } else if (policy_name == "least-popular") {
    plan.mount_policy.replacement = core::ReplacementPolicy::kLeastPopular;
  } else {
    fail("unknown replacement policy '" + policy_name + "'", 1);
  }
  if (!std::getline(policy, line) || line != "drive,tape,pinned") {
    fail("missing mounts header", 2);
  }
  line_no = 2;
  bool any_pinned = false;
  std::vector<bool> pinned(spec.total_drives(), false);
  while (std::getline(policy, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::istringstream ss(line);
    const auto drive = static_cast<std::uint32_t>(field_u64(ss, line_no));
    const auto tape = static_cast<std::uint32_t>(field_u64(ss, line_no));
    const auto is_pinned = field_u64(ss, line_no);
    plan.mount_policy.initial_mounts.emplace_back(DriveId{drive},
                                                  TapeId{tape});
    if (is_pinned != 0) {
      pinned[drive] = true;
      any_pinned = true;
    }
  }
  if (any_pinned) plan.mount_policy.drive_pinned = std::move(pinned);

  plan.compute_tape_popularity();
  plan.validate();
  return plan;
}

core::PlacementPlan load_plan(const tape::SystemSpec& spec,
                              const workload::Workload& workload,
                              const std::string& prefix) {
  std::ifstream layout(prefix + ".layout.csv");
  std::ifstream policy(prefix + ".mounts.csv");
  if (!layout || !policy) {
    throw std::runtime_error("cannot open plan files for " + prefix);
  }
  return load_plan(spec, workload, layout, policy);
}

}  // namespace tapesim::trace
