#include "sim/event_queue.hpp"

#include <utility>

#include "util/assert.hpp"

namespace tapesim::sim {
namespace {

// True when `a` should sit above (fire before) `b`.
bool before(const Event& a, const Event& b) {
  if (a.time != b.time) return a.time < b.time;
  return a.id < b.id;
}

}  // namespace

void EventQueue::push(Event event) {
  TAPESIM_ASSERT_MSG(pending_.insert(event.id).second,
                     "event id reused while still pending");
  heap_.push_back(std::move(event));
  sift_up(heap_.size() - 1);
  ++live_count_;
}

void EventQueue::drop_cancelled_top() {
  while (!heap_.empty()) {
    const EventId id = heap_.front().id;
    const auto it = cancelled_.find(id);
    if (it == cancelled_.end()) return;
    cancelled_.erase(it);
    pending_.erase(id);
    heap_.front() = std::move(heap_.back());
    heap_.pop_back();
    if (!heap_.empty()) sift_down(0);
  }
}

Event EventQueue::pop() {
  drop_cancelled_top();
  TAPESIM_ASSERT_MSG(!heap_.empty(), "pop from empty event queue");
  Event top = std::move(heap_.front());
  pending_.erase(top.id);
  heap_.front() = std::move(heap_.back());
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0);
  --live_count_;
  return top;
}

Seconds EventQueue::next_time() const {
  // The top may be cancelled; scan conservatively without mutating.
  TAPESIM_ASSERT_MSG(live_count_ > 0, "next_time of empty event queue");
  const_cast<EventQueue*>(this)->drop_cancelled_top();
  return heap_.front().time;
}

bool EventQueue::cancel(EventId id) {
  if (pending_.find(id) == pending_.end()) return false;
  if (!cancelled_.insert(id).second) return false;  // already cancelled
  --live_count_;
  return true;
}

void EventQueue::sift_up(std::size_t i) {
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!before(heap_[i], heap_[parent])) break;
    std::swap(heap_[i], heap_[parent]);
    i = parent;
  }
}

void EventQueue::sift_down(std::size_t i) {
  const std::size_t n = heap_.size();
  while (true) {
    const std::size_t l = 2 * i + 1;
    const std::size_t r = 2 * i + 2;
    std::size_t smallest = i;
    if (l < n && before(heap_[l], heap_[smallest])) smallest = l;
    if (r < n && before(heap_[r], heap_[smallest])) smallest = r;
    if (smallest == i) return;
    std::swap(heap_[i], heap_[smallest]);
    i = smallest;
  }
}

}  // namespace tapesim::sim
