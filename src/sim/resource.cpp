#include "sim/resource.hpp"

#include <utility>

#include "util/assert.hpp"

namespace tapesim::sim {

Resource::Ticket Resource::acquire(std::function<void()> on_granted) {
  TAPESIM_ASSERT_MSG(static_cast<bool>(on_granted),
                     "acquire needs a grant callback");
  if (observer_ != nullptr) observer_->on_acquire(*this);
  const Ticket ticket = next_ticket_++;
  if (busy_) {
    waiting_.push_back(Waiter{std::move(on_granted), engine_->now(), ticket});
    return ticket;
  }
  grant(std::move(on_granted), engine_->now());
  return ticket;
}

bool Resource::cancel(Ticket ticket) {
  if (ticket == kInvalidTicket) return false;
  for (auto it = waiting_.begin(); it != waiting_.end(); ++it) {
    if (it->ticket == ticket) {
      waiting_.erase(it);
      return true;
    }
  }
  return false;
}

void Resource::acquire_for(Seconds busy, std::function<void()> on_done) {
  acquire([this, busy, on_done = std::move(on_done)]() {
    engine_->schedule_in(busy, [this, on_done]() {
      release();
      if (on_done) on_done();
    });
  });
}

void Resource::grant(std::function<void()> fn, Seconds asked) {
  busy_ = true;
  acquired_at_ = engine_->now();
  ++grants_;
  if (observer_ != nullptr) observer_->on_grant(*this, acquired_at_ - asked);
  // Dispatch through the engine so grant callbacks never run re-entrantly
  // inside acquire()/release() call stacks.
  engine_->schedule_in(Seconds{0.0}, std::move(fn), name_ + ":grant");
}

void Resource::release() {
  TAPESIM_ASSERT_MSG(busy_, "release of a free resource");
  busy_ = false;
  const Seconds held = engine_->now() - acquired_at_;
  busy_time_ += held;
  if (observer_ != nullptr) observer_->on_release(*this, held);
  if (!waiting_.empty()) {
    auto next = std::move(waiting_.front());
    waiting_.pop_front();
    grant(std::move(next.fn), next.asked);
  }
}

}  // namespace tapesim::sim
