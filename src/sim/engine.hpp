// The discrete-event simulation engine.
//
// Single-threaded, run-to-completion semantics: `run()` repeatedly pops the
// earliest event and executes its action; actions may schedule further
// events (never in the past). Determinism: equal-time events dispatch in
// scheduling order (see EventAfter in event.hpp).
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "sim/event_queue.hpp"
#include "sim/profile.hpp"
#include "sim/trace.hpp"
#include "util/units.hpp"

namespace tapesim::sim {

class Engine {
 public:
  /// Current simulation time. Starts at 0 and only moves forward.
  [[nodiscard]] Seconds now() const { return now_; }

  /// Schedules `action` to run `delay` from now. Returns a handle usable
  /// with cancel(). `delay` must be >= 0.
  EventId schedule_in(Seconds delay, std::function<void()> action,
                      std::string label = {});

  /// Schedules `action` at absolute time `at` (>= now()).
  EventId schedule_at(Seconds at, std::function<void()> action,
                      std::string label = {});

  /// Cancels a pending event. Returns false if it already ran/was cancelled.
  bool cancel(EventId id);

  /// Runs until the queue is empty. Returns the final simulation time.
  Seconds run();

  /// Runs until the queue is empty or simulation time would exceed
  /// `deadline`; events after the deadline stay queued.
  Seconds run_until(Seconds deadline);

  /// Total number of events dispatched since construction.
  [[nodiscard]] std::uint64_t events_dispatched() const {
    return dispatched_;
  }
  [[nodiscard]] std::size_t events_pending() const { return queue_.size(); }

  /// Attaches a dispatch observer (not owned); pass nullptr to detach.
  void set_trace_sink(TraceSink* sink) { trace_ = sink; }

  /// Attaches a wall-clock profiler (not owned); pass nullptr to detach.
  /// Without one, no clocks are read anywhere in the dispatch loop; with
  /// one, simulated behavior is unchanged (profiling only observes wall
  /// time, never the simulation clock). The sink's sample stride is
  /// latched here; the first dispatch after attach is always sampled.
  void set_profile_sink(ProfileSink* sink) {
    profile_ = sink;
    profile_stride_ = sink == nullptr ? 1 : sink->dispatch_sample_stride();
    if (profile_stride_ == 0) profile_stride_ = 1;
    profile_countdown_ = 1;
  }
  [[nodiscard]] ProfileSink* profile_sink() const { return profile_; }

  /// Resets time to 0 and discards pending events. Dispatch counters are
  /// kept (they are cumulative engine statistics).
  void reset();

 private:
  void dispatch(Event event);
  template <typename Loop>
  Seconds profiled_run(Loop&& loop);

  EventQueue queue_;
  Seconds now_{0.0};
  EventId next_id_ = 1;
  std::uint64_t dispatched_ = 0;
  TraceSink* trace_ = nullptr;
  ProfileSink* profile_ = nullptr;
  std::size_t profile_stride_ = 1;     ///< latched from the sink at attach
  std::size_t profile_countdown_ = 1;  ///< dispatches until the next sample
};

}  // namespace tapesim::sim
