// A binary min-heap of events with O(log n) push/pop and lazy cancellation.
//
// We implement the heap by hand (rather than std::priority_queue) to support
// cancellation and to make the tie-breaking contract explicit and testable.
#pragma once

#include <cstddef>
#include <unordered_set>
#include <vector>

#include "sim/event.hpp"

namespace tapesim::sim {

class EventQueue {
 public:
  /// Inserts an event; the id must be unique (Engine guarantees this).
  void push(Event event);

  /// Removes and returns the earliest non-cancelled event.
  /// Precondition: !empty().
  Event pop();

  /// Time of the earliest pending event. Precondition: !empty().
  [[nodiscard]] Seconds next_time() const;

  /// Marks an event as cancelled. O(1); the record is dropped when it
  /// reaches the heap top. Returns false if the id is not pending.
  bool cancel(EventId id);

  [[nodiscard]] bool empty() const { return live_count_ == 0; }
  [[nodiscard]] std::size_t size() const { return live_count_; }

 private:
  void sift_up(std::size_t i);
  void sift_down(std::size_t i);
  void drop_cancelled_top();

  std::vector<Event> heap_;
  std::unordered_set<EventId> pending_;
  std::unordered_set<EventId> cancelled_;
  std::size_t live_count_ = 0;
};

}  // namespace tapesim::sim
