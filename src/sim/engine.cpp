#include "sim/engine.hpp"

#include <utility>

#include "util/assert.hpp"
#include "util/log.hpp"

namespace tapesim::sim {

EventId Engine::schedule_in(Seconds delay, std::function<void()> action,
                            std::string label) {
  TAPESIM_ASSERT_MSG(delay.count() >= 0.0, "cannot schedule into the past");
  return schedule_at(now_ + delay, std::move(action), std::move(label));
}

EventId Engine::schedule_at(Seconds at, std::function<void()> action,
                            std::string label) {
  TAPESIM_ASSERT_MSG(at >= now_, "cannot schedule into the past");
  TAPESIM_ASSERT_MSG(static_cast<bool>(action), "event action must be callable");
  const EventId id = next_id_++;
  if (trace_ != nullptr) trace_->on_schedule(now_, at, id, label);
  queue_.push(Event{at, id, std::move(action), std::move(label)});
  return id;
}

bool Engine::cancel(EventId id) {
  const bool cancelled = queue_.cancel(id);
  if (cancelled && trace_ != nullptr) trace_->on_cancel(now_, id);
  return cancelled;
}

void Engine::dispatch(Event event) {
  TAPESIM_ASSERT_MSG(event.time >= now_, "time went backwards");
  now_ = event.time;
  ++dispatched_;
  if (trace_ != nullptr) trace_->on_dispatch(now_, event.id, event.label);
  TAPESIM_LOG(kTrace) << "dispatch #" << event.id
                      << (event.label.empty() ? "" : " ") << event.label;
  event.action();
}

Seconds Engine::run() {
  while (!queue_.empty()) dispatch(queue_.pop());
  return now_;
}

Seconds Engine::run_until(Seconds deadline) {
  while (!queue_.empty() && queue_.next_time() <= deadline) {
    dispatch(queue_.pop());
  }
  if (now_ < deadline) now_ = deadline;
  return now_;
}

void Engine::reset() {
  while (!queue_.empty()) (void)queue_.pop();
  now_ = Seconds{0.0};
}

}  // namespace tapesim::sim
