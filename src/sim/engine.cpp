#include "sim/engine.hpp"

#include <chrono>
#include <utility>

#include "util/assert.hpp"
#include "util/log.hpp"

namespace tapesim::sim {

namespace {

double wall_seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

EventId Engine::schedule_in(Seconds delay, std::function<void()> action,
                            std::string label) {
  TAPESIM_ASSERT_MSG(delay.count() >= 0.0, "cannot schedule into the past");
  return schedule_at(now_ + delay, std::move(action), std::move(label));
}

EventId Engine::schedule_at(Seconds at, std::function<void()> action,
                            std::string label) {
  TAPESIM_ASSERT_MSG(at >= now_, "cannot schedule into the past");
  TAPESIM_ASSERT_MSG(static_cast<bool>(action), "event action must be callable");
  const EventId id = next_id_++;
  if (trace_ != nullptr) trace_->on_schedule(now_, at, id, label);
  queue_.push(Event{at, id, std::move(action), std::move(label)});
  return id;
}

bool Engine::cancel(EventId id) {
  const bool cancelled = queue_.cancel(id);
  if (cancelled && trace_ != nullptr) trace_->on_cancel(now_, id);
  return cancelled;
}

void Engine::dispatch(Event event) {
  TAPESIM_ASSERT_MSG(event.time >= now_, "time went backwards");
  now_ = event.time;
  ++dispatched_;
  if (trace_ != nullptr) trace_->on_dispatch(now_, event.id, event.label);
  TAPESIM_LOG(kTrace) << "dispatch #" << event.id
                      << (event.label.empty() ? "" : " ") << event.label;
  if (profile_ == nullptr) {
    event.action();
    return;
  }
  // Clocks are read only on sampled dispatches; at stride 1 that is every
  // dispatch, at larger strides the skipped ones pay one decrement+branch.
  if (--profile_countdown_ != 0) {
    event.action();
    return;
  }
  profile_countdown_ = profile_stride_;
  const auto t0 = std::chrono::steady_clock::now();
  event.action();
  profile_->on_dispatch_done(now_, event.label, wall_seconds_since(t0),
                             queue_.size());
}

template <typename Loop>
Seconds Engine::profiled_run(Loop&& loop) {
  profile_->on_run_begin(now_);
  const auto t0 = std::chrono::steady_clock::now();
  const std::uint64_t before = dispatched_;
  loop();
  profile_->on_run_end(now_, wall_seconds_since(t0), dispatched_ - before);
  return now_;
}

Seconds Engine::run() {
  const auto loop = [this] {
    while (!queue_.empty()) dispatch(queue_.pop());
  };
  if (profile_ == nullptr) {
    loop();
    return now_;
  }
  return profiled_run(loop);
}

Seconds Engine::run_until(Seconds deadline) {
  const auto loop = [this, deadline] {
    while (!queue_.empty() && queue_.next_time() <= deadline) {
      dispatch(queue_.pop());
    }
    if (now_ < deadline) now_ = deadline;
  };
  if (profile_ == nullptr) {
    loop();
    return now_;
  }
  return profiled_run(loop);
}

void Engine::reset() {
  while (!queue_.empty()) (void)queue_.pop();
  now_ = Seconds{0.0};
}

}  // namespace tapesim::sim
