// Discrete-event kernel: the event record.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "util/units.hpp"

namespace tapesim::sim {

/// Monotonically increasing handle identifying a scheduled event; used for
/// cancellation and for deterministic FIFO tie-breaking at equal timestamps.
using EventId = std::uint64_t;

/// A scheduled occurrence. The action runs exactly once, at `time`, unless
/// the event is cancelled first.
struct Event {
  Seconds time;
  EventId id = 0;
  std::function<void()> action;
  /// Optional human-readable tag surfaced by trace hooks; empty in hot paths.
  std::string label;
};

/// Ordering: earlier time first; at equal times, lower id (i.e. scheduled
/// earlier) first. Determinism of the whole simulator rests on this rule.
struct EventAfter {
  bool operator()(const Event& a, const Event& b) const {
    if (a.time != b.time) return a.time > b.time;
    return a.id > b.id;
  }
};

}  // namespace tapesim::sim
