// Observer hook for simulation event dispatch.
//
// Tests and debugging tools attach a TraceSink to an Engine to record the
// exact dispatch order; production runs attach nothing and pay only a
// null-pointer check per event.
#pragma once

#include <string>

#include "util/units.hpp"

namespace tapesim::sim {

class TraceSink {
 public:
  virtual ~TraceSink() = default;
  /// Called immediately before an event's action runs.
  virtual void on_dispatch(Seconds time, std::uint64_t event_id,
                           const std::string& label) = 0;
};

}  // namespace tapesim::sim
