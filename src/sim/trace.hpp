// Observer hooks for simulation event lifetimes.
//
// Tests, the observability layer, and debugging tools attach a TraceSink to
// an Engine to observe events as they are scheduled, dispatched, and
// cancelled; production runs attach nothing and pay only a null-pointer
// check per event. All callbacks default to no-ops so sinks override only
// what they need.
#pragma once

#include <string>

#include "util/units.hpp"

namespace tapesim::sim {

using EventId = std::uint64_t;

class TraceSink {
 public:
  virtual ~TraceSink() = default;

  /// Called when an event is scheduled. `at` is the simulation time the
  /// event will dispatch at (its scheduled time, not the current time);
  /// `now` is the time of the scheduling call.
  virtual void on_schedule(Seconds now, Seconds at, EventId event_id,
                           const std::string& label) {
    (void)now;
    (void)at;
    (void)event_id;
    (void)label;
  }

  /// Called immediately before an event's action runs.
  virtual void on_dispatch(Seconds time, EventId event_id,
                           const std::string& label) {
    (void)time;
    (void)event_id;
    (void)label;
  }

  /// Called when a pending event is successfully cancelled.
  virtual void on_cancel(Seconds now, EventId event_id) {
    (void)now;
    (void)event_id;
  }
};

}  // namespace tapesim::sim
