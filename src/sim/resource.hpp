// A FIFO-served exclusive resource.
//
// Models the robot arm: one exchange at a time per library; contending
// drives queue in arrival order (ties broken by request order, which the
// engine already makes deterministic). Also reusable for any future
// single-server stations (e.g. a shared I/O channel).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>

#include "sim/engine.hpp"
#include "util/units.hpp"

namespace tapesim::sim {

class Resource;

/// Observer for resource contention; all callbacks default to no-ops. The
/// observability layer implements this to turn robot grants into spans.
class ResourceObserver {
 public:
  virtual ~ResourceObserver() = default;
  /// A user asked for the resource (may be granted immediately).
  virtual void on_acquire(const Resource& resource) { (void)resource; }
  /// The resource was granted after `waited` of queueing (0 if immediate).
  virtual void on_grant(const Resource& resource, Seconds waited) {
    (void)resource;
    (void)waited;
  }
  /// The resource was released after being held for `held`.
  virtual void on_release(const Resource& resource, Seconds held) {
    (void)resource;
    (void)held;
  }
};

/// An exclusive server. Users call `acquire(fn)`; `fn(now)` runs as soon as
/// the resource is free and must eventually lead to a `release()` call.
class Resource {
 public:
  /// Identifies one acquire() call so a still-queued waiter can be
  /// cancelled. Tickets are never reused.
  using Ticket = std::uint64_t;
  static constexpr Ticket kInvalidTicket = 0;

  Resource(Engine& engine, std::string name)
      : engine_(&engine), name_(std::move(name)) {}

  Resource(const Resource&) = delete;
  Resource& operator=(const Resource&) = delete;
  Resource(Resource&&) = default;
  Resource& operator=(Resource&&) = default;

  /// Requests the resource. If free, the grant fires as an immediate event
  /// (keeping all user code inside the event loop); otherwise it queues.
  /// The returned ticket can cancel the request while it is still queued.
  Ticket acquire(std::function<void()> on_granted);

  /// Withdraws a queued waiter. Returns true if the waiter was removed;
  /// false if the ticket was already granted (the holder must still
  /// release()), already cancelled, or never existed. FIFO order of the
  /// remaining waiters is preserved.
  bool cancel(Ticket ticket);

  /// Convenience: hold the resource for `busy` time, then auto-release.
  /// `on_done` (optional) fires at release time.
  void acquire_for(Seconds busy, std::function<void()> on_done = {});

  /// Releases the resource; the next queued waiter (if any) is granted via
  /// an immediate event. Must be called exactly once per successful grant.
  void release();

  [[nodiscard]] bool busy() const { return busy_; }
  [[nodiscard]] std::size_t queue_length() const { return waiting_.size(); }
  [[nodiscard]] const std::string& name() const { return name_; }

  /// Cumulative time the resource has spent occupied (utilization metric).
  [[nodiscard]] Seconds busy_time() const { return busy_time_; }
  /// Total grants issued so far.
  [[nodiscard]] std::uint64_t grants() const { return grants_; }

  /// Attaches a contention observer (not owned); nullptr detaches.
  void set_observer(ResourceObserver* observer) { observer_ = observer; }

 private:
  struct Waiter {
    std::function<void()> fn;
    Seconds asked{};
    Ticket ticket = kInvalidTicket;
  };

  void grant(std::function<void()> fn, Seconds asked);

  Engine* engine_;
  std::string name_;
  std::deque<Waiter> waiting_;
  bool busy_ = false;
  Seconds acquired_at_{0.0};
  Seconds busy_time_{0.0};
  std::uint64_t grants_ = 0;
  Ticket next_ticket_ = 1;
  ResourceObserver* observer_ = nullptr;
};

}  // namespace tapesim::sim
