#include "sim/semaphore.hpp"

#include <utility>

#include "util/assert.hpp"

namespace tapesim::sim {

void Semaphore::acquire(std::function<void()> on_granted) {
  TAPESIM_ASSERT_MSG(static_cast<bool>(on_granted),
                     "acquire needs a grant callback");
  if (!unlimited() && in_use_ >= capacity_) {
    waiting_.emplace_back(engine_->now(), std::move(on_granted));
    return;
  }
  grant(std::move(on_granted));
}

void Semaphore::grant(std::function<void()> fn) {
  ++in_use_;
  ++grants_;
  engine_->schedule_in(Seconds{0.0}, std::move(fn), name_ + ":grant");
}

void Semaphore::release() {
  TAPESIM_ASSERT_MSG(in_use_ > 0, "release without a matching acquire");
  --in_use_;
  if (!waiting_.empty()) {
    auto [asked_at, fn] = std::move(waiting_.front());
    waiting_.pop_front();
    wait_time_ += engine_->now() - asked_at;
    grant(std::move(fn));
  }
}

}  // namespace tapesim::sim
