// Wall-clock profiling hook for the dispatch loop.
//
// A ProfileSink observes what the kernel *costs* (steady_clock wall time),
// where TraceSink observes what the simulation *does* (simulated time).
// Keeping the two separate preserves the overhead discipline: an engine
// with no profiler attached pays exactly one null-pointer check per run
// and per dispatch — no clocks are read — and, because profiling never
// touches simulated time, attaching one cannot perturb event order or any
// simulated timing (the bit-identical guarantee tests/sim pins down).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "util/units.hpp"

namespace tapesim::sim {

class ProfileSink {
 public:
  virtual ~ProfileSink() = default;

  /// Called when a run()/run_until() loop starts draining the queue.
  virtual void on_run_begin(Seconds sim_now) { (void)sim_now; }

  /// Called when the loop returns. `wall_s` is the loop's total wall-clock
  /// cost (queue operations included); `dispatches` the events it ran.
  virtual void on_run_end(Seconds sim_now, double wall_s,
                          std::uint64_t dispatches) {
    (void)sim_now;
    (void)wall_s;
    (void)dispatches;
  }

  /// Called after a *sampled* event's action ran. `wall_s` covers the
  /// action alone; `queue_depth` is the number of live events left
  /// afterwards. Which dispatches are sampled is governed by
  /// dispatch_sample_stride().
  virtual void on_dispatch_done(Seconds sim_now, const std::string& label,
                                double wall_s, std::size_t queue_depth) {
    (void)sim_now;
    (void)label;
    (void)wall_s;
    (void)queue_depth;
  }

  /// Every Nth dispatch is timed and reported through on_dispatch_done;
  /// the rest pay only a decrement-and-branch. 1 (the default) times every
  /// dispatch — exact, but two clock reads plus the sink's bookkeeping per
  /// event dominate sub-microsecond actions. Read once, at attach time.
  /// Exact dispatch totals always arrive via on_run_end regardless.
  [[nodiscard]] virtual std::size_t dispatch_sample_stride() const {
    return 1;
  }
};

}  // namespace tapesim::sim
