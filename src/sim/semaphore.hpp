// A counting FIFO semaphore for the discrete-event kernel.
//
// Generalizes Resource to `capacity` concurrent holders; used to model the
// staging disk array as a bounded set of full-rate streaming slots
// (assumption 6 of the paper says the disk is never the bottleneck — the
// semaphore lets an experiment relax that and measure the consequences).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>

#include "sim/engine.hpp"

namespace tapesim::sim {

class Semaphore {
 public:
  /// `capacity` == 0 means unlimited (every acquire granted immediately).
  Semaphore(Engine& engine, std::string name, std::uint32_t capacity)
      : engine_(&engine), name_(std::move(name)), capacity_(capacity) {}

  Semaphore(const Semaphore&) = delete;
  Semaphore& operator=(const Semaphore&) = delete;

  /// Requests a slot; `on_granted` runs (via an immediate event) once one
  /// is free. Each grant must be release()d exactly once.
  void acquire(std::function<void()> on_granted);
  void release();

  [[nodiscard]] std::uint32_t capacity() const { return capacity_; }
  [[nodiscard]] std::uint32_t in_use() const { return in_use_; }
  [[nodiscard]] std::size_t queue_length() const { return waiting_.size(); }
  [[nodiscard]] bool unlimited() const { return capacity_ == 0; }
  [[nodiscard]] std::uint64_t grants() const { return grants_; }
  /// Cumulative waiter-seconds spent queued (contention metric).
  [[nodiscard]] Seconds wait_time() const { return wait_time_; }

 private:
  void grant(std::function<void()> fn);

  Engine* engine_;
  std::string name_;
  std::uint32_t capacity_;
  std::uint32_t in_use_ = 0;
  std::deque<std::pair<Seconds, std::function<void()>>> waiting_;
  std::uint64_t grants_ = 0;
  Seconds wait_time_{};
};

}  // namespace tapesim::sim
