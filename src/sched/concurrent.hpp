// Concurrent-request retrieval simulation (an extension beyond the paper).
//
// The paper's evaluation submits requests strictly one at a time ("the
// request queuing time ... is zero"). Real restore traffic overlaps, and
// several of the trade-offs the paper cites from related work — notably
// striping's synchronization penalty — only materialize when requests
// compete for drives and robots. This simulator services an arbitrary
// arrival schedule: any number of requests may be in flight; drives serve
// the union of outstanding demand on their mounted tape (nearest extent
// first); free switch-eligible drives fetch whichever offline tape has the
// most outstanding demanded bytes in their library; the per-library robot
// serializes exchanges exactly as in the serial simulator.
//
// A request instance completes when its last demanded byte lands; its
// sojourn time (arrival -> completion) is the headline metric.
#pragma once

#include <span>
#include <unordered_map>
#include <vector>

#include "catalog/catalog.hpp"
#include "core/plan.hpp"
#include "sched/simulator.hpp"
#include "sim/semaphore.hpp"
#include "tape/system.hpp"
#include "util/rng.hpp"
#include "workload/generator.hpp"

namespace tapesim::sched {

/// One request arrival. The same RequestId may arrive repeatedly.
struct Arrival {
  Seconds time;
  RequestId request;
};

/// Per-arrival result.
struct SojournOutcome {
  RequestId request;
  Seconds arrival{};
  Seconds completion{};
  Bytes bytes{};

  [[nodiscard]] Seconds sojourn() const { return completion - arrival; }
};

/// Draws `count` Poisson arrivals at `rate` (requests/second) with request
/// ids sampled by popularity. Deterministic given the rng state.
[[nodiscard]] std::vector<Arrival> poisson_arrivals(
    const workload::RequestSampler& sampler, double rate, std::uint32_t count,
    Rng& rng);

class ConcurrentSimulator {
 public:
  explicit ConcurrentSimulator(const core::PlacementPlan& plan,
                               SimulatorConfig config = {});
  ~ConcurrentSimulator();
  ConcurrentSimulator(const ConcurrentSimulator&) = delete;
  ConcurrentSimulator& operator=(const ConcurrentSimulator&) = delete;

  /// Services the whole schedule (must be sorted by time) to completion.
  /// Returns one outcome per arrival, in arrival order.
  [[nodiscard]] std::vector<SojournOutcome> run(
      std::span<const Arrival> arrivals);

  /// Simulated time at which the last byte of the last run landed.
  [[nodiscard]] Seconds makespan() const { return makespan_; }
  [[nodiscard]] const tape::TapeSystem& system() const { return system_; }
  [[nodiscard]] std::uint64_t total_switches() const {
    return total_switches_;
  }

 private:
  /// Outstanding demand for one object on one tape.
  struct Demand {
    ObjectId object;
    Bytes offset;
    Bytes size;
    Seconds since{};  ///< when the demand first appeared
    std::vector<std::uint32_t> instances;  ///< arrival indices waiting
  };

  void on_arrival(std::uint32_t instance);
  /// Serves or switches if the drive is free and work exists.
  void drive_check(DriveId d);
  void serve_next(DriveId d);
  void maybe_switch(DriveId d);
  void begin_switch(DriveId d, TapeId target);
  void credit(const Demand& demand);
  /// Wakes idle drives of `lib` in eviction-cost order.
  void wake_library(LibraryId lib);
  [[nodiscard]] bool switch_eligible(DriveId d) const;

  sim::Engine engine_;
  const core::PlacementPlan* plan_;
  tape::TapeSystem system_;
  catalog::ObjectCatalog catalog_;
  SimulatorConfig config_;
  sim::Semaphore disk_streams_;

  std::span<const Arrival> arrivals_;
  std::vector<SojournOutcome> outcomes_;
  std::vector<std::size_t> remaining_;  ///< per instance, unserved extents

  /// Outstanding demand by tape id value.
  std::unordered_map<std::uint32_t, std::vector<Demand>> demand_;
  /// Tapes a drive is already fetching (avoid double-claims).
  std::unordered_map<std::uint32_t, DriveId> claimed_;
  /// Drives currently executing an activity chain.
  std::vector<bool> drive_busy_;
  /// Cached "sched.demand.queue_wait_s" histogram (null without a tracer),
  /// so the serve path never takes the registry lock.
  obs::Histogram* demand_wait_ = nullptr;

  Seconds makespan_{};
  std::uint64_t total_switches_ = 0;
};

}  // namespace tapesim::sched
