#include "sched/report.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "util/table.hpp"

namespace tapesim::sched {

Bytes UtilizationReport::total_bytes_read() const {
  Bytes total{};
  for (const DriveUtilization& d : drives) total += d.bytes_read;
  return total;
}

std::uint64_t UtilizationReport::total_mounts() const {
  std::uint64_t total = 0;
  for (const DriveUtilization& d : drives) total += d.mounts;
  return total;
}

double UtilizationReport::mean_streaming_fraction() const {
  if (drives.empty()) return 0.0;
  double total = 0.0;
  for (const DriveUtilization& d : drives) {
    total += d.streaming_fraction(elapsed);
  }
  return total / static_cast<double>(drives.size());
}

void UtilizationReport::print(std::ostream& os) const {
  bool any_faults = false;
  for (const DriveUtilization& d : drives) {
    if (d.failures != 0 || d.downtime.count() > 0.0) any_faults = true;
  }
  std::vector<std::string> columns{"drive",  "streaming %", "seeking %",
                                   "cartridge %", "idle %", "bytes read",
                                   "mounts"};
  if (any_faults) {
    columns.push_back("faults");
    columns.push_back("down %");
  }
  Table drive_table(columns);
  for (const DriveUtilization& d : drives) {
    const double stream = 100.0 * d.streaming_fraction(elapsed);
    const double seek =
        100.0 * (d.locating.count() + d.rewinding.count()) /
        std::max(elapsed.count(), 1e-12);
    const double cartridge =
        100.0 * (d.loading.count() + d.unloading.count()) /
        std::max(elapsed.count(), 1e-12);
    const double idle =
        std::max(0.0, 100.0 - 100.0 * d.busy_fraction(elapsed));
    std::ostringstream bytes;
    bytes << d.bytes_read;
    if (any_faults) {
      const double down =
          100.0 * d.downtime.count() / std::max(elapsed.count(), 1e-12);
      drive_table.add(d.drive.value(), stream, seek, cartridge, idle,
                      bytes.str(), d.mounts, d.failures, down);
    } else {
      drive_table.add(d.drive.value(), stream, seek, cartridge, idle,
                      bytes.str(), d.mounts);
    }
  }
  drive_table.print(os);

  Table robot_table({"robot (library)", "busy %", "exchanges"});
  for (const RobotUtilization& r : robots) {
    robot_table.add(r.library.value(), 100.0 * r.busy_fraction(elapsed),
                    r.grants);
  }
  robot_table.print(os);
}

UtilizationReport utilization_report(const tape::TapeSystem& system,
                                     Seconds elapsed) {
  UtilizationReport report;
  report.elapsed = elapsed;
  for (const tape::TapeLibrary& library : system.libraries()) {
    for (const tape::TapeDrive& drive : library.drives()) {
      const tape::DriveStats& stats = drive.stats();
      DriveUtilization d;
      d.drive = drive.id();
      d.transferring = stats.transferring;
      d.locating = stats.locating;
      d.rewinding = stats.rewinding;
      d.loading = stats.loading;
      d.unloading = stats.unloading;
      d.bytes_read = stats.bytes_read;
      d.mounts = stats.mounts;
      d.failures = stats.failures;
      d.downtime = stats.downtime;
      report.drives.push_back(d);
    }
    RobotUtilization r;
    r.library = library.id();
    r.busy = library.robot().busy_time();
    r.grants = library.robot().grants();
    report.robots.push_back(r);
  }
  return report;
}

}  // namespace tapesim::sched
