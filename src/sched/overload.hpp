// Overload protection: deadlines, admission control, and load shedding.
//
// The paper's serving model assumes requests "submitted one by one with
// long time interval" — there is no story for a flash crowd, where arrivals
// outpace a service time measured in minutes. This layer closes that gap
// around the serial RetrievalSimulator: arrivals carry an SLO deadline
// derived from their size, a bounded admission queue sheds work the system
// cannot finish in time, and a two-class priority shedder protects
// foreground recalls at the expense of batch restores. Requests that are
// admitted but blow their deadline anyway are cancelled mid-chain by the
// simulator's deadline machinery and accounted as kDeadlineExpired.
//
// Everything here is strictly additive: with the default OverloadConfig the
// runner serves arrivals FIFO with no deadline, no bounds, and no shedding,
// and each request goes through the exact pre-overload simulator path.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "metrics/queueing.hpp"
#include "metrics/request_metrics.hpp"
#include "sched/simulator.hpp"
#include "util/error.hpp"
#include "util/stats.hpp"
#include "util/units.hpp"
#include "workload/storm.hpp"

namespace tapesim::obs {
class Tracer;
}  // namespace tapesim::obs

namespace tapesim::sched {

/// Size-proportional SLO: a request for B bytes must complete within
/// base + per_gb * (B / 1 GB) of its arrival. Disabled by default.
struct DeadlinePolicy {
  bool enabled = false;
  /// Fixed SLO component (mount + robot + seek budget).
  Seconds base{3600.0};
  /// Additional budget per gigabyte requested (transfer budget).
  Seconds per_gb{30.0};

  /// Relative deadline for a request of the given size; infinity when
  /// disabled.
  [[nodiscard]] Seconds deadline_for(Bytes bytes) const;
};

/// Bounds on the admission queue. A zero limit means "unbounded"; every
/// default is inert.
struct AdmissionPolicy {
  /// Maximum queued (not yet serving) requests. 0 = unbounded.
  std::uint32_t max_queue_depth = 0;
  /// Maximum queued bytes directed at any single library. 0 = unbounded.
  Bytes max_queued_bytes_per_library{};
  /// Token-bucket arrival governor: sustained admission rate in requests
  /// per second (0 disables) with up to `token_burst` requests of burst.
  double token_rate = 0.0;
  double token_burst = 1.0;
  /// Reject a request at admission when the estimated backlog (sum of
  /// predicted service over the queue, from metrics::ServiceEstimator)
  /// already puts its completion past its deadline. Only meaningful with
  /// deadlines enabled; optimistic until the first completion is observed.
  bool reject_hopeless = false;
};

/// What the shedder does when admission bounds are hit.
enum class ShedPolicy : std::uint8_t {
  /// Admit everything, serve FIFO. Bounds and the token bucket are
  /// ignored; the only protection left is per-request deadline expiry.
  kNone,
  /// Enforce the admission bounds against the newest arrival: a request
  /// that would overflow the queue is rejected (kShed). Serve FIFO.
  kTailDrop,
  /// Enforce the bounds, but on queue-depth overflow drop the lowest-
  /// priority latest-deadline entry among queue + arrival, so foreground
  /// work displaces batch work. Serve priority-first, then earliest
  /// deadline, then FIFO.
  kPriority,
};

[[nodiscard]] const char* to_string(ShedPolicy p);

struct OverloadConfig {
  DeadlinePolicy deadline{};
  AdmissionPolicy admission{};
  ShedPolicy shed = ShedPolicy::kNone;
  /// While foreground work is queued, signal the simulator to stop
  /// starting background repair jobs (they resume when the queue drains).
  bool pause_repair_under_pressure = true;

  [[nodiscard]] Status try_validate() const;
  /// Throwing wrapper: std::invalid_argument on the first violation.
  void validate() const;
};

/// One arrival's fate, with the queueing context the bare simulator
/// outcome cannot carry.
struct OverloadOutcome {
  metrics::RequestOutcome outcome;  ///< status kShed when never admitted
  Seconds arrival{};
  /// Admission to service start; 0 for shed requests, time-to-deadline
  /// for requests that expired waiting in the queue.
  Seconds queue_wait{};
  /// Arrival to completion (expiry-clipped for expired requests; 0 for
  /// shed requests, which are answered immediately).
  Seconds sojourn{};
};

struct OverloadReport {
  std::vector<OverloadOutcome> outcomes;
  /// Aggregate over every outcome; count() excludes shed requests, so
  /// count() + metrics.shed_count() == offered load.
  metrics::ExperimentMetrics metrics;
  /// Sojourn (arrival -> finish) of admitted requests only.
  SampleSet admitted_sojourn;
  /// Measured queue waits of requests that reached service.
  SampleSet queue_waits;
  std::uint64_t served = 0;
  std::uint64_t shed_admit = 0;     ///< bounds / token bucket at arrival
  std::uint64_t shed_hopeless = 0;  ///< deadline unreachable at arrival
  std::uint64_t shed_evicted = 0;   ///< displaced from the queue (priority)
  std::uint64_t expired_in_queue = 0;
  std::uint64_t expired_in_service = 0;
  Seconds makespan{};  ///< first arrival to last completion

  [[nodiscard]] std::uint64_t shed_total() const {
    return shed_admit + shed_hopeless + shed_evicted;
  }
  [[nodiscard]] std::uint64_t expired_total() const {
    return expired_in_queue + expired_in_service;
  }
  /// Bytes delivered within deadline — the goodput numerator.
  [[nodiscard]] Bytes goodput_bytes() const {
    return metrics.deadline_met_bytes();
  }
};

/// Drives a RetrievalSimulator through a timed arrival stream with
/// admission control. The simulator serves one request at a time (its
/// native contract); arrivals landing during a service wait in the
/// admission queue and their waiting time counts against their deadline.
///
/// Deterministic: decisions depend only on the arrival stream, the
/// config, and the simulator's own deterministic event order.
class OverloadRunner {
 public:
  /// `sim` must outlive the runner. `tracer`, when non-null, receives
  /// shed spans and the overload.{served,shed,expired} counters (pass the
  /// same tracer the simulator was configured with, or any other).
  OverloadRunner(RetrievalSimulator& sim, OverloadConfig config,
                 obs::Tracer* tracer = nullptr);

  /// Serves `arrivals` (must be sorted by time) to completion.
  [[nodiscard]] OverloadReport run(
      std::span<const workload::TimedRequest> arrivals);

  [[nodiscard]] const OverloadConfig& config() const { return config_; }
  /// The online service-time model fed by completed requests.
  [[nodiscard]] const metrics::ServiceEstimator& estimator() const {
    return estimator_;
  }

 private:
  struct Queued {
    workload::TimedRequest arrival;
    Seconds deadline_abs{};
    Bytes bytes{};
    /// Queued bytes per library id value (only filled when the per-library
    /// byte bound is active).
    std::vector<std::pair<std::uint32_t, Bytes>> lib_bytes;
    std::uint64_t seq = 0;
  };

  /// Runs the arrival through admission; returns true when it joined the
  /// queue (false: a shed outcome was recorded).
  bool admit(const workload::TimedRequest& arrival, OverloadReport& report);
  /// Drops queued entries whose deadline already passed (they would be
  /// dead on arrival at the simulator) and accounts them as expired.
  void cull_expired(OverloadReport& report);
  /// Index of the next entry to serve under the configured policy.
  [[nodiscard]] std::size_t pick_next() const;
  void serve(std::size_t index, OverloadReport& report);
  void record_shed(const Queued& q, const char* reason,
                   OverloadReport& report);
  void remove_queued(std::size_t index);
  [[nodiscard]] Seconds backlog_estimate() const;

  RetrievalSimulator& sim_;
  OverloadConfig config_;
  obs::Tracer* tracer_;
  metrics::ServiceEstimator estimator_;

  std::vector<Queued> queue_;
  std::unordered_map<std::uint32_t, Bytes> queued_lib_bytes_;
  double tokens_ = 0.0;
  Seconds last_refill_{};
  std::uint64_t next_seq_ = 0;
};

}  // namespace tapesim::sched
