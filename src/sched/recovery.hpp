// Metadata crash-recovery reaction state and RTO accounting.
//
// The fault injector owns the crash *timeline* (fault/model.hpp,
// CrashConfig) and the catalog journal owns the durable state
// (catalog/journal.hpp); this header holds what the scheduler tracks about
// recoveries: the running recovery-time-objective statistics mirrored 1:1
// into the obs registry's recovery.* instruments (the chaos soak and the
// crash bench reconcile them exactly against the journal ledger).
#pragma once

#include <cstdint>

#include "util/stats.hpp"
#include "util/units.hpp"

namespace tapesim::sched {

/// Running totals of the crash-recovery reaction.
struct RecoveryStats {
  std::uint64_t crashes = 0;      ///< Crashes observed and recovered.
  std::uint64_t checkpoints = 0;  ///< Snapshots taken (incl. post-crash).
  /// Journal records applied by recovery replays.
  std::uint64_t records_replayed = 0;
  /// Records lost to torn tails (always 0 under synchronous fsync).
  std::uint64_t lost_mutations = 0;
  /// Lost mutations re-derived from tape reality after replay.
  std::uint64_t reconciled_mutations = 0;
  /// Admissions that arrived inside a recovery window and parked.
  std::uint64_t admissions_parked = 0;
  Seconds downtime{};  ///< Summed metadata-unavailable windows.
  Seconds parked{};    ///< Admission delay actually experienced.
  /// Crash to catalog replayed (per-crash recovery time).
  SampleSet rto;
  /// Age of the latest snapshot at each crash (what checkpointing bounds).
  SampleSet snapshot_age;
};

}  // namespace tapesim::sched
