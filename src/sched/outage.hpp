// Library-outage reaction state and RTO accounting.
//
// The fault injector owns the outage *timelines* (fault/model.hpp,
// OutageConfig); this header holds what the scheduler tracks about them:
// per-library watch state for lazily observed onsets/restores, and the
// running recovery-time-objective statistics (downtime, parked work,
// failovers, disaster-recovery traffic, time-to-first-byte after restore,
// time-to-full-redundancy after a disaster).
#pragma once

#include <cstdint>

#include "util/stats.hpp"
#include "util/units.hpp"

namespace tapesim::sched {

/// Running totals of the outage reaction, mirrored 1:1 into the obs
/// registry's outage.* counters (the chaos soak reconciles them exactly).
struct OutageStats {
  std::uint64_t started = 0;    ///< Outage onsets registered.
  std::uint64_t ended = 0;      ///< Outage windows closed (restores).
  std::uint64_t disasters = 0;  ///< Onsets that were permanent disasters.
  /// Requests that parked at least one extent behind a downed library.
  std::uint64_t requests_parked = 0;
  std::uint64_t extents_parked = 0;
  /// Extents rerouted to a replica in a surviving library.
  std::uint64_t failovers = 0;
  std::uint64_t dr_jobs = 0;   ///< Disaster-recovery copy jobs scheduled.
  std::uint64_t dr_bytes = 0;  ///< Bytes written by completed DR jobs.
  Seconds downtime{};          ///< Sum of closed outage windows.
  /// Library restore -> first byte served from that library (RTO).
  SampleSet ttfb;
  /// Disaster onset -> last outstanding DR job settled (MTTR to full
  /// redundancy; one sample per disaster whose DR queue drained).
  SampleSet redundancy_recovery;
};

}  // namespace tapesim::sched
