#include "sched/concurrent.hpp"

#include <algorithm>
#include <cmath>

#include "obs/tracer.hpp"
#include "util/assert.hpp"

namespace tapesim::sched {

std::vector<Arrival> poisson_arrivals(const workload::RequestSampler& sampler,
                                      double rate, std::uint32_t count,
                                      Rng& rng) {
  TAPESIM_ASSERT_MSG(rate > 0.0, "arrival rate must be positive");
  std::vector<Arrival> arrivals;
  arrivals.reserve(count);
  double clock = 0.0;
  for (std::uint32_t i = 0; i < count; ++i) {
    // Exponential inter-arrival via inverse CDF.
    clock += -std::log(1.0 - rng.uniform()) / rate;
    arrivals.push_back(Arrival{Seconds{clock}, sampler.sample(rng)});
  }
  return arrivals;
}

ConcurrentSimulator::ConcurrentSimulator(const core::PlacementPlan& plan,
                                         SimulatorConfig config)
    : plan_(&plan),
      system_(plan.spec(), engine_),
      catalog_(plan.to_catalog()),
      config_(config),
      disk_streams_(engine_, "disk", config.max_concurrent_streams) {
  for (const auto& [drive, tp] : plan_->mount_policy.initial_mounts) {
    system_.setup_mount(tp, drive);
  }
  drive_busy_.assign(plan.spec().total_drives(), false);
  if (config_.tracer != nullptr) {
    config_.tracer->bind(engine_);
    config_.tracer->observe(system_);
    demand_wait_ = &config_.tracer->registry().histogram(
        "sched.demand.queue_wait_s",
        obs::BucketLayout::exponential(0.1, 1e5, 1.3));
  }
}

ConcurrentSimulator::~ConcurrentSimulator() {
  if (config_.tracer != nullptr) config_.tracer->detach();
}

bool ConcurrentSimulator::switch_eligible(DriveId d) const {
  return !plan_->mount_policy.pinned(d);
}

void ConcurrentSimulator::credit(const Demand& demand) {
  for (const std::uint32_t instance : demand.instances) {
    TAPESIM_ASSERT(remaining_[instance] > 0);
    if (--remaining_[instance] == 0) {
      outcomes_[instance].completion = engine_.now();
      if (engine_.now() > makespan_) makespan_ = engine_.now();
    }
  }
}

void ConcurrentSimulator::on_arrival(std::uint32_t instance) {
  const workload::Request& request =
      plan_->workload().request(arrivals_[instance].request);
  std::vector<LibraryId> touched;
  Bytes bytes{};
  for (const ObjectId o : request.objects) {
    const catalog::ObjectRecord* rec = catalog_.lookup(o);
    TAPESIM_ASSERT_MSG(rec != nullptr, "request references unplaced object");
    bytes += rec->size;
    auto& tape_demand = demand_[rec->tape.value()];
    // Merge into an existing outstanding demand for the same object (it
    // has not been popped yet, so one read will serve both instances).
    const auto it = std::find_if(
        tape_demand.begin(), tape_demand.end(),
        [&](const Demand& dm) { return dm.object == o; });
    if (it != tape_demand.end()) {
      it->instances.push_back(instance);
    } else {
      tape_demand.push_back(
          Demand{o, rec->offset, rec->size, engine_.now(), {instance}});
    }
    ++remaining_[instance];
    touched.push_back(rec->library);
  }
  outcomes_[instance].bytes = bytes;
  outcomes_[instance].arrival = engine_.now();
  if (remaining_[instance] == 0) {
    outcomes_[instance].completion = engine_.now();
    return;
  }
  std::sort(touched.begin(), touched.end());
  touched.erase(std::unique(touched.begin(), touched.end()), touched.end());
  for (const LibraryId lib : touched) wake_library(lib);
}

void ConcurrentSimulator::wake_library(LibraryId lib) {
  // Wake idle drives, cheapest eviction first (empty drives, then the
  // least popular mounted tape) — the same policy as the serial simulator.
  tape::TapeLibrary& library = system_.library(lib);
  std::vector<DriveId> idle;
  for (const tape::TapeDrive& drive : library.drives()) {
    if (!drive_busy_[drive.id().index()]) idle.push_back(drive.id());
  }
  const auto& popularity = plan_->mount_policy.tape_popularity;
  auto cost = [&](DriveId d) {
    const tape::TapeDrive& drive = system_.drive(d);
    if (drive.empty()) return -1.0;
    if (popularity.empty()) return 0.0;
    return popularity[drive.mounted().index()];
  };
  std::sort(idle.begin(), idle.end(), [&](DriveId a, DriveId b) {
    const double ca = cost(a);
    const double cb = cost(b);
    if (ca != cb) return ca < cb;
    return a < b;
  });
  for (const DriveId d : idle) drive_check(d);
}

void ConcurrentSimulator::drive_check(DriveId d) {
  if (drive_busy_[d.index()]) return;
  tape::TapeDrive& drive = system_.drive(d);
  if (!drive.empty()) {
    const auto it = demand_.find(drive.mounted().value());
    if (it != demand_.end() && !it->second.empty()) {
      serve_next(d);
      return;
    }
  }
  maybe_switch(d);
}

void ConcurrentSimulator::serve_next(DriveId d) {
  tape::TapeDrive& drive = system_.drive(d);
  auto& tape_demand = demand_[drive.mounted().value()];
  TAPESIM_ASSERT(!tape_demand.empty());

  // Nearest outstanding extent from the current head position (greedy
  // elevator; with optimization off, strict FIFO of demand arrival).
  std::size_t pick = 0;
  if (config_.optimize_seek_order) {
    Bytes best = Bytes::distance(drive.head(), tape_demand[0].offset);
    for (std::size_t i = 1; i < tape_demand.size(); ++i) {
      const Bytes dist = Bytes::distance(drive.head(), tape_demand[i].offset);
      if (dist < best) {
        best = dist;
        pick = i;
      }
    }
  }
  const Demand demand = tape_demand[pick];
  if (demand_wait_ != nullptr) {
    demand_wait_->record((engine_.now() - demand.since).count());
  }
  tape_demand.erase(tape_demand.begin() +
                    static_cast<std::ptrdiff_t>(pick));
  if (tape_demand.empty()) demand_.erase(drive.mounted().value());

  drive_busy_[d.index()] = true;
  const Seconds locate = drive.start_locate(demand.offset);
  engine_.schedule_in(locate, [this, d, demand]() {
    system_.drive(d).finish_locate();
    disk_streams_.acquire([this, d, demand]() {
      tape::TapeDrive& dr = system_.drive(d);
      const Seconds xfer = dr.start_transfer(demand.size);
      engine_.schedule_in(xfer, [this, d, demand]() {
        disk_streams_.release();
        system_.drive(d).finish_transfer();
        credit(demand);
        drive_busy_[d.index()] = false;
        drive_check(d);
      });
    });
  });
}

void ConcurrentSimulator::maybe_switch(DriveId d) {
  if (!switch_eligible(d)) return;
  const LibraryId lib = system_.library_of_drive(d);
  const tape::TapeLibrary& library = system_.library(lib);

  // The unclaimed demanded offline tape of this library, ranked by the
  // configured policy: most outstanding bytes (greedy throughput) or
  // oldest waiting demand (fairness).
  TapeId target{};
  Bytes best_bytes{};
  Seconds best_age{1e300};
  for (const auto& [tape_value, demands] : demand_) {
    const TapeId tp{tape_value};
    if (!library.owns_tape(tp)) continue;
    if (system_.is_mounted(tp)) continue;
    if (claimed_.count(tape_value) != 0) continue;
    if (config_.tape_pick == SimulatorConfig::TapePick::kMostDemandedBytes) {
      Bytes outstanding{};
      for (const Demand& dm : demands) outstanding += dm.size;
      if (!target.valid() || outstanding > best_bytes ||
          (outstanding == best_bytes && tp < target)) {
        target = tp;
        best_bytes = outstanding;
      }
    } else {
      Seconds oldest{1e300};
      for (const Demand& dm : demands) oldest = std::min(oldest, dm.since);
      if (!target.valid() || oldest < best_age ||
          (oldest == best_age && tp < target)) {
        target = tp;
        best_age = oldest;
      }
    }
  }
  if (!target.valid()) return;
  claimed_[target.value()] = d;
  begin_switch(d, target);
}

void ConcurrentSimulator::begin_switch(DriveId d, TapeId target) {
  drive_busy_[d.index()] = true;
  tape::TapeDrive& drive = system_.drive(d);
  tape::TapeLibrary& lib = system_.library(system_.library_of_drive(d));

  auto exchange = [this, d, &lib, target](bool had_tape) {
    lib.robot().acquire([this, d, &lib, target, had_tape]() {
      auto do_moves = [this, d, &lib, target, had_tape]() {
        const Seconds move = had_tape ? lib.robot_exchange_time()
                                      : lib.robot_move_time();
        engine_.schedule_in(move, [this, d, &lib, target]() {
          if (!config_.robot_holds_load) lib.robot().release();
          tape::TapeDrive& dr = system_.drive(d);
          const Seconds load = dr.start_load(target);
          engine_.schedule_in(load, [this, d, &lib, target]() {
            if (config_.robot_holds_load) lib.robot().release();
            system_.drive(d).finish_load();
            system_.note_mounted(target, d);
            claimed_.erase(target.value());
            ++total_switches_;
            drive_busy_[d.index()] = false;
            drive_check(d);
          });
        });
      };
      if (!had_tape) {
        do_moves();
        return;
      }
      tape::TapeDrive& dr = system_.drive(d);
      const Seconds unload = dr.start_unload();
      engine_.schedule_in(unload, [this, d, do_moves]() {
        const TapeId old = system_.drive(d).finish_unload();
        system_.note_unmounted(old);
        do_moves();
      });
    });
  };

  if (drive.empty()) {
    exchange(false);
    return;
  }
  const Seconds rewind = drive.start_rewind();
  engine_.schedule_in(rewind, [this, d, exchange]() {
    system_.drive(d).finish_rewind();
    exchange(true);
  });
}

std::vector<SojournOutcome> ConcurrentSimulator::run(
    std::span<const Arrival> arrivals) {
  arrivals_ = arrivals;
  outcomes_.assign(arrivals.size(), SojournOutcome{});
  remaining_.assign(arrivals.size(), 0);
  demand_.clear();
  claimed_.clear();

  for (std::uint32_t i = 0; i < arrivals.size(); ++i) {
    TAPESIM_ASSERT_MSG(
        i == 0 || arrivals[i].time >= arrivals[i - 1].time,
        "arrival schedule must be sorted by time");
    outcomes_[i].request = arrivals[i].request;
    engine_.schedule_at(arrivals[i].time, [this, i]() { on_arrival(i); });
  }
  engine_.run();

  for (std::size_t i = 0; i < remaining_.size(); ++i) {
    TAPESIM_ASSERT_MSG(remaining_[i] == 0, "arrival left unserved");
  }
  if (config_.tracer != nullptr) {
    // One lifetime span per arrival instance. Device spans cannot carry a
    // request id here (a single read may serve several instances), so the
    // request lanes are the only per-request view.
    for (std::uint32_t i = 0; i < outcomes_.size(); ++i) {
      config_.tracer->record(obs::Span{
          obs::Track::kRequest, i, obs::Phase::kRequest,
          outcomes_[i].arrival, outcomes_[i].completion,
          outcomes_[i].request, TapeId{}, {}});
    }
    config_.tracer->registry().counter("sched.requests")
        .inc(outcomes_.size());
  }
  return outcomes_;
}

}  // namespace tapesim::sched
