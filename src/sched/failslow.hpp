// Gray-failure mitigation: detector, quarantine, and hedged reads.
//
// The fault injector owns the fail-slow *timelines* (fault/model.hpp,
// FailSlowConfig); this header holds the scheduler's reaction policy.
// A fail-slow drive is the nastiest fault class: it passes every
// liveness check while quietly dragging the whole fleet down. Three
// mitigations compose here:
//
// - A gray-failure detector compares each drive's throughput EWMA
//   against the fleet median of its peers and flags drives that stay
//   below a configurable fraction for a sustained window. The injector
//   is the ground truth: flags are scored as detections (with a
//   detection-lag sample) or false positives.
// - Quarantine takes flagged drives out of mount selection: they finish
//   their current chain, are proactively unmounted, and sit out until
//   the episode ends plus a probation period — unless nothing healthier
//   is live, in which case the scheduler falls back to them rather than
//   queuing forever.
// - Hedged reads bound tail latency while the detector is still making
//   up its mind: when an in-flight transfer overruns an adaptive
//   percentile of recent service times and a replica lives in another
//   library, a speculative second chain races the primary; the loser is
//   cancelled through the ticket/cancel machinery. A budget caps the
//   bandwidth speculation may burn.
#pragma once

#include <cstdint>

#include "util/error.hpp"
#include "util/stats.hpp"
#include "util/units.hpp"

namespace tapesim::sched {

/// Gray-failure detector + drive quarantine policy. Inert unless enabled
/// and a fault injector (the ground truth for flags) is attached.
struct GrayDetectorConfig {
  bool enabled = false;
  /// Flag a drive when its throughput EWMA falls below this fraction of
  /// the fleet median of its peers.
  double fraction = 0.55;
  /// The EWMA must stay below the threshold this long before flagging
  /// (suppresses blips from single slow transfers).
  Seconds window{900.0};
  /// Transfers a drive (and each peer) must have completed before its
  /// EWMA is trusted for comparison.
  std::uint32_t min_samples = 6;
  /// Smoothing factor for the per-drive throughput EWMA in (0, 1].
  double ewma_alpha = 0.25;
  /// When true, flagged drives are quarantined (excluded from mount
  /// selection); when false the detector only keeps score.
  bool quarantine = true;
  /// Quarantined drives stay out this long past the episode's observed
  /// end before rejoining rotation.
  Seconds probation{1800.0};

  [[nodiscard]] Status try_validate() const;
};

/// Hedged-read policy. Inert unless enabled, the placement carries
/// replicas, and a fault injector is attached.
struct HedgeConfig {
  bool enabled = false;
  /// Adaptive trigger: hedge when a transfer's projected service time
  /// exceeds this percentile (in [0, 100], SampleSet convention) of
  /// recent normalized service times.
  double percentile = 95.0;
  /// Completed transfers required before the percentile is trusted.
  std::uint32_t min_history = 12;
  /// Ring-buffer capacity of the normalized service-time history.
  std::uint32_t history = 64;
  /// Never hedge a transfer running at less than this multiple of its
  /// native duration, however tight the percentile gets.
  double min_overrun = 1.25;
  /// Speculative bytes may not exceed this fraction of foreground bytes
  /// served so far (the hedge bandwidth budget).
  double budget_fraction = 0.15;

  [[nodiscard]] Status try_validate() const;
};

/// Running totals of the fail-slow reaction, mirrored 1:1 into the obs
/// registry's failslow.* counters (the chaos soak reconciles them, and
/// bench_fail_slow checks the hedge ledger issued == won + lost).
struct FailSlowStats {
  std::uint64_t detected = 0;  ///< Flags on drives actually slow.
  std::uint64_t false_positives = 0;  ///< Flags on healthy drives.
  std::uint64_t quarantines = 0;      ///< Quarantine windows opened.
  std::uint64_t hedges_issued = 0;    ///< Speculative chains launched.
  std::uint64_t hedges_won = 0;   ///< Speculative chain finished first.
  std::uint64_t hedges_lost = 0;  ///< Primary finished (or hedge died).
  std::uint64_t hedge_bytes_wasted = 0;  ///< Bytes streamed by losers.
  /// Slow-episode onset -> detector flag, per true detection.
  SampleSet detection_lag;
  /// How far ahead of the primary's projected finish a winning hedge
  /// landed.
  SampleSet hedge_win_margin;
};

}  // namespace tapesim::sched
