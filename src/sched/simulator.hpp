// The retrieval simulator: executes requests against a placed tape system.
//
// This is the event-driven core the paper describes in Section 6
// ("Simulator"): given a request, the involved tapes are resolved through
// the object catalog; drives holding requested tapes serve their objects in
// seek-optimized order; offline tapes queue per library and rotate through
// switch-eligible drives (rewind -> unload -> robot exchange -> load ->
// locate -> transfer), with the single robot arm per library serializing
// exchanges and robots of different libraries working in parallel. System
// state (mounted tapes, head positions) persists across requests; requests
// arrive one at a time with no queueing delay.
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "catalog/catalog.hpp"
#include "catalog/journal.hpp"
#include "core/plan.hpp"
#include "fault/injector.hpp"
#include "fault/model.hpp"
#include "metrics/request_metrics.hpp"
#include "sched/failslow.hpp"
#include "sched/governor.hpp"
#include "sched/outage.hpp"
#include "sched/recovery.hpp"
#include "sched/repair.hpp"
#include "sched/scrub.hpp"
#include "sim/engine.hpp"
#include "sim/resource.hpp"
#include "sim/semaphore.hpp"
#include "tape/system.hpp"
#include "util/error.hpp"
#include "workload/model.hpp"

namespace tapesim::obs {
class Histogram;
class Tracer;
}  // namespace tapesim::obs

namespace tapesim::sched {

struct SimulatorConfig {
  /// Serve the extents of a tape in sweep order starting from the cheaper
  /// end (the paper: "the objects retrieving order within a tape is
  /// optimized to reduce the data seek time"). Disabling reverts to request
  /// order — the seek-order ablation.
  bool optimize_seek_order = true;
  /// Robot handoff protocol. When true (default) the robot stays at the
  /// drive until the cartridge is inserted AND threaded (load-to-ready),
  /// serializing the full mount through the robot; when false it leaves as
  /// soon as the cartridge is inserted and the drive threads on its own.
  /// Real accessors vary; the ablation bench quantifies the difference.
  bool robot_holds_load = true;
  /// Staging-disk streaming slots: how many drives can move data to the
  /// disk cache at full rate simultaneously. 0 (default) = unlimited, the
  /// paper's assumption 6 ("the bottleneck of data transfer path lies at
  /// tape drive"). Finite values model a constrained disk array; a drive
  /// waits for a slot between locating and streaming.
  std::uint32_t max_concurrent_streams = 0;
  /// Concurrent simulator only: which demanded offline tape a free drive
  /// fetches next. Greedy throughput (most outstanding bytes) can starve
  /// small requests under sustained load; oldest-demand-first trades a
  /// little throughput for bounded waiting.
  enum class TapePick { kMostDemandedBytes, kOldestDemand };
  TapePick tape_pick = TapePick::kMostDemandedBytes;
  /// Optional telemetry. When set, the simulator binds the tracer to its
  /// engine and system (device spans and kernel counters come for free) and
  /// adds the request-level spans only the scheduler can see: queue waits,
  /// robot-queue waits, and whole-request lifetimes. Null costs a pointer
  /// check per request. Must outlive the simulator; detached on destruction.
  obs::Tracer* tracer = nullptr;
  /// Fault model. The default (all rates zero) disables fault injection
  /// entirely: no injector is built and the event sequence is bit-identical
  /// to a faultless build.
  fault::FaultConfig faults{};
  /// Background re-replication. Only takes effect when the plan carries
  /// replicas AND fault injection is enabled; otherwise inert.
  RepairConfig repair{};
  /// Background verification passes over idle drives. Only takes effect
  /// when fault injection is enabled; otherwise inert.
  ScrubConfig scrub{};
  /// Health-driven cartridge evacuation. Only takes effect when fault
  /// injection is enabled; otherwise inert. Works with or without plan
  /// replication — evacuated copies become catalog replicas either way.
  EvacuationConfig evacuation{};
  /// Gray-failure detection + drive quarantine. Only takes effect when
  /// fault injection is enabled (the injector is the ground truth the
  /// detector is scored against); otherwise inert.
  GrayDetectorConfig detector{};
  /// Hedged reads against fail-slow tails. Only takes effect when the
  /// plan carries replicas AND fault injection is enabled; otherwise
  /// inert.
  HedgeConfig hedge{};
  /// Catalog write-ahead log + checkpointing. Disabled by default (the
  /// simulator is bit-identical to a build without a journal); must be
  /// enabled when metadata crashes are (faults.crash).
  catalog::JournalConfig journal{};
  /// Recovery-work governor: retry budgets, circuit breakers, and
  /// metastable-failure shedding over every amplification path. Disabled
  /// by default — a disabled governor adds zero draws and zero events, so
  /// governor-off runs are bit-identical to baseline.
  GovernorConfig governor{};

  /// Recoverable validation of user-provided knobs (the fault, repair,
  /// scrub, and evacuation models); the simulator constructor throws
  /// std::invalid_argument carrying this message instead of aborting.
  [[nodiscard]] Status try_validate() const;
};

/// Per-request overload context. The default value is inert: no deadline,
/// foreground priority — run_request(id, {}) is bit-identical to
/// run_request(id).
struct RequestContext {
  /// Absolute simulation time by which the request must complete; infinity
  /// (the default) disables deadline enforcement. When the deadline fires
  /// with work outstanding, queued tapes are dropped, waiting robot tickets
  /// are cancelled, serve chains are abandoned at the next activity
  /// boundary, and the request completes as kDeadlineExpired with
  /// response = deadline - start.
  Seconds deadline{metrics::RequestOutcome::kNoDeadline};
  /// User class, recorded on the outcome for the shedder upstream.
  Priority priority = Priority::kForeground;
};

class RetrievalSimulator {
 public:
  /// Builds the physical system, materializes the catalog from `plan`, and
  /// performs the initial mounts (startup time is not measured, matching
  /// the paper). `plan` and its workload must outlive the simulator.
  explicit RetrievalSimulator(const core::PlacementPlan& plan,
                              SimulatorConfig config = {});
  ~RetrievalSimulator();
  RetrievalSimulator(const RetrievalSimulator&) = delete;
  RetrievalSimulator& operator=(const RetrievalSimulator&) = delete;

  /// Executes one request to completion and returns its outcome. State
  /// persists into the next call.
  metrics::RequestOutcome run_request(RequestId id);

  /// As above, with overload context: an absolute deadline enforced by
  /// mid-chain cancellation and a user priority echoed on the outcome.
  metrics::RequestOutcome run_request(RequestId id,
                                      const RequestContext& rctx);

  /// Overload pressure signal from the admission layer: while set,
  /// background repair stops claiming idle drives (jobs stay queued and
  /// resume when pressure clears). Off by default — the flag never changes
  /// behavior unless an overload runner drives it.
  void set_overload_pressure(bool pressure) { overload_pressure_ = pressure; }
  [[nodiscard]] bool overload_pressure() const { return overload_pressure_; }

  [[nodiscard]] const workload::Workload& workload() const {
    return plan_->workload();
  }
  [[nodiscard]] const tape::TapeSystem& system() const { return system_; }
  [[nodiscard]] const catalog::ObjectCatalog& catalog() const {
    return catalog_;
  }
  [[nodiscard]] sim::Engine& engine() { return engine_; }

  /// Cumulative switches across all requests so far.
  [[nodiscard]] std::uint64_t total_switches() const {
    return total_switches_;
  }

  /// The fault injector, or nullptr when fault injection is disabled.
  [[nodiscard]] const fault::FaultInjector* fault_injector() const {
    return fault_.get();
  }

  /// True when the plan carried replicas (failover reads are armed).
  [[nodiscard]] bool replicated() const { return replicated_; }

  /// Running totals of the background repair process.
  [[nodiscard]] const RepairStats& repair_stats() const {
    return repair_stats_;
  }
  /// Repair jobs queued or holding a drive right now.
  [[nodiscard]] std::size_t repair_backlog() const {
    return repair_queue_.size() + active_repairs_;
  }

  /// Runs queued repair jobs to quiescence outside any request (repairs
  /// also run opportunistically during requests, on drives the foreground
  /// leaves idle). Stops early if the remaining jobs are unstartable —
  /// e.g. every source copy is lost. No-op unless the copy engine is
  /// active. Evacuation copy jobs drain here too.
  void drain_repairs();

  /// Running totals of the background scrub process.
  [[nodiscard]] const ScrubStats& scrub_stats() const { return scrub_stats_; }
  /// Running totals of health-driven evacuation.
  [[nodiscard]] const EvacStats& evac_stats() const { return evac_stats_; }
  /// Running totals of the library-outage reaction (RTO accounting).
  [[nodiscard]] const OutageStats& outage_stats() const {
    return outage_stats_;
  }
  /// Running totals of the gray-failure reaction (detector + hedging).
  [[nodiscard]] const FailSlowStats& failslow_stats() const {
    return failslow_stats_;
  }
  /// Running totals of the crash-recovery reaction (RTO accounting).
  [[nodiscard]] const RecoveryStats& recovery_stats() const {
    return recovery_stats_;
  }
  /// The catalog journal, or nullptr when durability is disabled. The
  /// non-const overload lets tests and benches run an out-of-band replay()
  /// to audit durable state against the live catalog.
  [[nodiscard]] const catalog::Journal* journal() const {
    return journal_.get();
  }
  [[nodiscard]] catalog::Journal* journal() { return journal_.get(); }

  /// The recovery-work governor. The non-const overload lets the
  /// overload runner feed goodput/queue-depth samples and lets benches
  /// close the books (finish()) at run end.
  [[nodiscard]] RecoveryGovernor& governor() { return governor_; }
  [[nodiscard]] const RecoveryGovernor& governor() const {
    return governor_;
  }
  /// Running totals of the governor (budget ledgers, breaker and
  /// metastability transitions), mirrored 1:1 into governor.* counters.
  [[nodiscard]] const GovernorStats& governor_stats() const {
    return governor_.stats();
  }

 private:
  // --- per-request orchestration ---
  void serve_mounted(DriveId d);
  void serve_step(DriveId d);
  void begin_transfer(DriveId d, catalog::TapeExtent extent);
  void next_action(DriveId d);
  void begin_switch(DriveId d, TapeId target);
  void attempt_load(DriveId d, TapeId target);
  void finish_mount(DriveId d, TapeId target);
  void extent_done(DriveId d);
  [[nodiscard]] bool switch_eligible(DriveId d) const;

  // --- deadline enforcement (never reached without a finite deadline) ---
  /// The deadline event: accounts every unserved extent as expired, drops
  /// queued work, cancels still-queued robot waiters, and sets expired_ so
  /// in-flight activity chains unwind at their next boundary.
  void on_deadline();
  /// Retracts the pending deadline event once nothing remains unserved
  /// (otherwise the drained event would drag the persistent engine clock
  /// out to the deadline).
  void cancel_deadline_event();
  /// One extent will never be served because the deadline passed.
  void extent_expired(const catalog::TapeExtent& extent);
  /// Ordered extent list for the mounted tape of `d`, per config.
  [[nodiscard]] std::vector<catalog::TapeExtent> plan_extent_order(
      DriveId d) const;

  // --- fault handling (all no-ops / never reached when fault_ is null) ---
  /// Schedules the completion of a drive activity; with faults enabled and
  /// a failure striking mid-activity, the completion is cancelled and the
  /// failure handler runs instead.
  void schedule_activity(DriveId d, Seconds duration,
                         std::function<void()> on_done);
  /// Lazily reconciles drive `d` with its failure timeline. True when the
  /// drive is usable now (possibly just repaired). Only call on drives with
  /// no in-flight activity; active drives fail via activity preemption.
  bool drive_available(DriveId d);
  /// Registers a failure observed now: partial-time accounting, requeue of
  /// in-flight work, robot/disk release, cartridge recovery, redispatch.
  void on_drive_failure(DriveId d);
  void repair_drive(DriveId d);
  /// Mount-failure retry/backoff ladder, entered at load completion.
  void on_mount_failure(DriveId d, TapeId target);
  /// Media-error abort/retry ladder, entered mid-transfer; the failing
  /// extent is chain_[d].extents[chain_[d].index]. `latent` marks a read
  /// running into silent decay damage (observed through the injector's
  /// decay timeline) rather than an active media error.
  void on_media_failure(DriveId d, bool latent);
  void on_media_error(DriveId d) { on_media_failure(d, false); }
  /// A foreground read hit latent damage that had accrued undetected.
  void on_latent_hit(DriveId d) { on_media_failure(d, true); }
  /// Robot extracts a stuck cartridge from failed drive `d` and requeues it.
  void recover_cartridge(DriveId d);
  /// Completes every pending extent of `tp` as unavailable.
  void complete_tape_unavailable(TapeId tp);
  void extent_unavailable(const catalog::TapeExtent& extent);
  /// Offers queued tapes of `lib` to free drives; if none can ever serve
  /// them, waits for the next repair or declares them unavailable.
  void ensure_progress(LibraryId lib);
  void kick_idle_drives(LibraryId lib);
  [[nodiscard]] Seconds robot_move_delay(tape::TapeLibrary& lib,
                                         Seconds base);

  // --- library outages (all no-ops unless outage_active()) ---
  [[nodiscard]] bool outage_active() const {
    return fault_ != nullptr && config_.faults.outage.enabled();
  }
  /// Lazily reconciles library `lib` with its outage timeline (onsets and
  /// restores are observed at query boundaries, never via standing
  /// events). True when the library is usable now.
  bool library_operational(LibraryId lib);
  /// Registers an onset observed now: downs every idle drive atomically
  /// (busy drives preempt through their own folded failure interrupts),
  /// reroutes or parks the library's pending foreground work, and — for a
  /// disaster — loses every resident cartridge and launches the DR surge.
  void register_outage(LibraryId lib);
  /// Registers a restore: closes the outage window (span + downtime),
  /// repairs outage-downed drives, and redispatches parked work.
  void register_restore(LibraryId lib);
  /// Moves `tp`'s pending extents to surviving replicas where possible;
  /// extents with no live copy outside downed libraries park on `tp`
  /// (served at restore, lost if the library is destroyed).
  void outage_reroute(TapeId tp);
  /// One pending extent of downed-library tape `tp`: fail over to a copy
  /// in a surviving library, or park it on `tp` until the restore.
  void outage_divert(TapeId tp, const catalog::TapeExtent& extent);
  /// Parks one pending extent on `copy`, whose library is transiently
  /// down: it stays in the demand map and is served after the restore.
  void park_extent(const catalog::ObjectRecord& copy);
  /// Library ids currently observed down or destroyed (exclusion list for
  /// best_replica); empty unless outages are active.
  [[nodiscard]] std::vector<LibraryId> down_libraries() const;
  /// One DR job for the disaster of `lib` settled (completed/abandoned);
  /// samples time-to-full-redundancy when the last one drains.
  void note_dr_job_done(LibraryId lib);

  // --- replica failover (all no-ops when the plan is unreplicated) ---
  /// A copy of `extent`'s object on tape `on` just became undeliverable:
  /// fail over to the best surviving copy, or complete it as unavailable.
  void fail_extent(TapeId on, const catalog::TapeExtent& extent);
  /// Re-enqueues the extent against copy `alt` and wakes a server for it.
  void route_extent(const catalog::ObjectRecord& alt);
  /// Syncs a cartridge health escalation into the catalog and schedules
  /// the re-replication the escalation calls for.
  void on_cartridge_health_change(TapeId tp, tape::CartridgeHealth health);

  // --- gray-failure detection, quarantine, hedged reads ---
  [[nodiscard]] bool detector_active() const {
    return config_.detector.enabled && fault_ != nullptr;
  }
  [[nodiscard]] bool hedge_active() const {
    return config_.hedge.enabled && replicated_ && fault_ != nullptr;
  }
  /// Records one completed foreground transfer: feeds the drive's
  /// throughput EWMA (detector) and the normalized service-time history
  /// (hedge trigger), then re-evaluates the detector for `d`.
  void note_transfer_rate(DriveId d, Bytes amount, Seconds xfer);
  /// Compares `d`'s EWMA against the fleet median of its peers; flags
  /// after a sustained shortfall.
  void evaluate_detector(DriveId d);
  /// Scores a fresh flag against the injector's ground truth and opens a
  /// quarantine window when the policy says so.
  void flag_drive(DriveId d);
  /// True while `d` sits in quarantine; lazily releases the drive once
  /// its episode ended and probation passed (extending the window when
  /// the drive is observed still slow at its release time).
  [[nodiscard]] bool drive_quarantined(DriveId d);
  /// True when every switch-eligible, non-failed drive of `lib` is
  /// quarantined — the scheduler then falls back to quarantined drives
  /// rather than queuing forever.
  [[nodiscard]] bool quarantine_fallback(LibraryId lib);
  /// Proactively returns the cartridge of an idle quarantined drive to
  /// its cell (rewind -> robot -> unload -> move) so a healthy drive can
  /// pick it up.
  void quarantine_unmount(DriveId d);
  /// True when `d`'s drive breaker is open AND a live peer in its library
  /// has a breaker that still admits work — then `d` sits out new chains.
  /// With every peer tripped too, the drive serves anyway (no wedging).
  [[nodiscard]] bool breaker_skip_drive(DriveId d);
  /// Libraries whose library- or robot-scoped breaker currently blocks
  /// work; used to deprioritise replicas during failover and hedging.
  [[nodiscard]] std::vector<LibraryId> breaker_down_libraries();
  /// Current adaptive hedge trigger as a multiple of the native transfer
  /// duration (percentile of history, floored at min_overrun).
  [[nodiscard]] double hedge_threshold_ratio() const;
  /// Arms the hedge alarm for a clean in-flight transfer that will
  /// overrun the adaptive trigger.
  void maybe_arm_hedge(DriveId d, const catalog::TapeExtent& extent,
                       Seconds xfer);
  /// The alarm fired mid-transfer: re-validate, check the budget, pick a
  /// replica in another library, and launch the speculative chain.
  void maybe_launch_hedge(DriveId d, catalog::TapeExtent extent,
                          Seconds eta);
  /// The winning leg of a hedged object just completed on `d`: settle
  /// the ledger and cancel the loser.
  void settle_hedge_winner(DriveId d, const catalog::TapeExtent& extent);
  /// Withdraws the losing leg: queued extents are erased, a still-queued
  /// switch is cancelled, an in-flight clean transfer is aborted through
  /// the engine's cancel machinery; everything else unwinds via the
  /// tombstone at its next activity boundary.
  void cancel_hedge_loser(ObjectId obj, TapeId loser);
  /// One leg of a hedged object failed on tape `on`. True when the hedge
  /// machinery absorbed the failure (the other leg carries the object);
  /// false when the caller must handle it normally.
  bool hedge_absorb_failure(TapeId on, const catalog::TapeExtent& extent);
  /// True when `extent` is a cancelled hedge loser (skipped at every
  /// serve boundary).
  [[nodiscard]] bool hedge_tombstoned(const catalog::TapeExtent& extent)
      const;
  /// Emits a settled-hedge span and bumps the registry ledger counters.
  void record_hedge_settled(const char* verdict, Seconds issued_at);

  // --- background repair ---
  [[nodiscard]] bool repair_active() const {
    return replicated_ && config_.repair.enabled && fault_ != nullptr;
  }
  /// The shared two-phase copy machinery runs for re-replication repair or
  /// for evacuation drains — either keeps the repair queue moving.
  [[nodiscard]] bool copy_engine_active() const {
    return repair_active() || evac_active();
  }
  /// Enqueues jobs restoring the replication factor of every object with a
  /// copy on `tp` (called when `tp` degrades or is lost).
  void schedule_repairs_for(TapeId tp);
  /// Offers queued repair jobs to every free drive, up to the slot cap.
  void pump_repairs();
  /// Earliest future instant at which a downed drive or library is due
  /// back, per the lazy fault timelines; kNever when the world is static.
  /// drain_repairs uses it to keep waiting out transient outages that
  /// block every queued job (the foreground watches only cover request
  /// demand, not background copies).
  [[nodiscard]] Seconds next_repair_wake();
  /// Concurrent-job cap: the configured repair cap, raised to the DR cap
  /// while disaster-recovery jobs are outstanding.
  [[nodiscard]] std::uint32_t repair_concurrency_cap() const;
  /// Starts the first startable queued job on `d`, if `d` is free and its
  /// library has no foreground demand.
  void maybe_start_repair(DriveId d);
  void start_repair(DriveId d, RepairJob job);
  /// True when another drive is switching to `tp` or repairing with it.
  [[nodiscard]] bool tape_claimed(TapeId tp, DriveId self) const;
  /// True when an in-flight repair job is currently using `tp` (the tape
  /// of its active phase, which may not be mounted yet).
  [[nodiscard]] bool repair_claimed(TapeId tp) const;
  /// Restores the foreground queue invariant for `tp` after a repair claim
  /// drops: a needed tape with no holder, no switch en route, and no
  /// repair claim must sit in its library queue.
  void requeue_if_needed(TapeId tp);
  /// Best surviving copy of the job's object readable by `d` (same
  /// library, not lost, not mounted elsewhere); nullptr when none.
  [[nodiscard]] const catalog::ObjectRecord* pick_repair_source(
      DriveId d, const RepairJob& job) const;
  /// Healthy tape in `d`'s library that can take the new copy (library
  /// anti-affinity permitting); invalid id when none.
  [[nodiscard]] TapeId pick_repair_target(DriveId d,
                                          const RepairJob& job) const;
  /// Mounts `target` on `d` for a repair job (rewind/unload/robot/load,
  /// same physics as begin_switch but outside request accounting).
  void repair_mount(DriveId d, TapeId target, std::function<void()> then);
  void repair_mount_failure(DriveId d);
  void scrub_mount_failure(DriveId d);
  void repair_read(DriveId d);
  void repair_read_transfer(DriveId d);
  void repair_media_error(DriveId d);
  void finish_repair_read(DriveId d);
  void repair_write_locate(DriveId d);
  void repair_write_transfer(DriveId d);
  void complete_repair(DriveId d);
  /// Bandwidth duty cycle shared by every background consumer: idle `d`
  /// after a full-rate transfer of `xfer` so its average background rate is
  /// `fraction` of the native rate.
  void background_pace(DriveId d, Seconds xfer, double fraction,
                       std::function<void()> next);
  void repair_pace(DriveId d, Seconds xfer, std::function<void()> next);
  void abandon_repair(RepairJob job);
  /// Post-repair dispatch: foreground work first, then further repair.
  void release_repair_drive(DriveId d);

  // --- background scrubbing (inert unless scrub_active()) ---
  [[nodiscard]] bool scrub_active() const {
    return config_.scrub.enabled && fault_ != nullptr;
  }
  /// Starts a verification pass on `d` if it is free, foreground work is
  /// outstanding, and a cartridge in its library is due.
  void maybe_start_scrub(DriveId d);
  /// Most overdue scrubbable tape in `d`'s library (preferring the one
  /// already mounted on `d`); invalid id when none is due.
  [[nodiscard]] TapeId pick_scrub_tape(DriveId d) const;
  void start_scrub(DriveId d, TapeId tp);
  /// One verification segment: yield check, locate, full-rate read,
  /// latent-damage observation, duty-cycle pacing, repeat.
  void scrub_segment(DriveId d);
  void scrub_transfer(DriveId d, Bytes seg);
  void scrub_segment_done(DriveId d, Bytes seg, Seconds xfer);
  /// An active (non-latent) media error struck the verify read.
  void scrub_media_error(DriveId d);
  /// True when the pass on `d` should stop at this segment boundary.
  [[nodiscard]] bool scrub_yield_needed(DriveId d) const;
  /// True when an in-flight scrub pass is using `tp`.
  [[nodiscard]] bool scrub_claimed(TapeId tp) const;
  /// Tears down the pass on `d` (stats, span, requeue, redispatch).
  void end_scrub_pass(DriveId d, bool completed);

  // --- metadata durability + crash recovery (inert when journal_ null) ---
  /// Admission-boundary reconciliation: observes due crashes on the lazy
  /// timeline (recovering from each in order) and takes a checkpoint when
  /// the cadence says so. Only called between requests, where the event
  /// queue is provably empty, so recovery can advance the clock
  /// synchronously.
  void reconcile_metadata();
  /// One crash at `at` with torn-tail draw `torn`: cut the journal, replay
  /// snapshot + surviving log, reconcile the lost suffix against tape
  /// reality, assert exact state equivalence, and park the clock through
  /// the metadata-unavailable window if it reaches past now.
  void recover_from_crash(Seconds at, double torn);
  /// Snapshots the catalog into the journal and truncates the log.
  void take_checkpoint();

  // --- health-driven evacuation (inert unless evac_active()) ---
  [[nodiscard]] bool evac_active() const {
    return config_.evacuation.enabled && fault_ != nullptr;
  }
  /// Health score of `tp` from observed errors, latent findings, mounts.
  [[nodiscard]] double health_score(TapeId tp) const;
  /// Checks `tp` against the evacuation threshold after any observation
  /// event (read error, scrub finding, mount) and starts draining it.
  void maybe_evacuate(TapeId tp);
  /// Enqueues one copy job per extent on `tp`; the tape retires once the
  /// last job settles and every object has a live copy elsewhere.
  void begin_evacuation(TapeId tp);
  /// One evacuation copy job for `tp` completed or was abandoned.
  void note_evac_job_done(TapeId tp);
  void finish_evacuation(TapeId tp);

  sim::Engine engine_;
  const core::PlacementPlan* plan_;
  tape::TapeSystem system_;
  catalog::ObjectCatalog catalog_;
  SimulatorConfig config_;
  sim::Semaphore disk_streams_;
  std::unique_ptr<fault::FaultInjector> fault_;

  // Per-request transient state.
  struct DriveReq {
    Seconds seek{};
    Seconds transfer{};
    /// `seek`/`transfer` as of this drive's latest completed extent. The
    /// outcome decomposition reads these: a trailing extent that fails
    /// after the last success (media retries, then unavailable/failover)
    /// accumulates seek past the response window, and counting it would
    /// drive the switch-time residual negative.
    Seconds seek_done{};
    Seconds transfer_done{};
    Seconds finish{};
    bool used = false;
  };
  std::vector<DriveReq> drive_req_;

  /// The extent chain a drive is currently serving (replaces the old
  /// self-owning closure chain; plain state makes requeue-on-failure
  /// possible). `index` is the extent being served, advanced only after it
  /// completes so media retries can re-serve it.
  struct ServeChain {
    std::vector<catalog::TapeExtent> extents;
    std::size_t index = 0;
    std::uint32_t retries = 0;  ///< Media retries on the current extent.
    bool active = false;
  };
  std::vector<ServeChain> chain_;

  /// Fault-handling context per drive.
  struct DriveCtx {
    bool busy = false;          ///< Serving a chain or mid-switch.
    Seconds activity_start{};   ///< When the current start_*() began.
    Seconds failed_at{};        ///< When the current outage was observed.
    TapeId switch_target{};     ///< Cartridge being fetched, mid-switch.
    std::uint32_t mount_retries = 0;  ///< On the current target, this drive.
    bool robot_held = false;
    bool disk_held = false;
    bool recovery_pending = false;  ///< Robot en route to extract cartridge.
    /// Still-queued robot request for the switch in progress; lets the
    /// deadline path withdraw the waiter without disturbing FIFO order.
    sim::Resource::Ticket robot_ticket = sim::Resource::kInvalidTicket;
    /// The repair job this drive is running, when busy with repair.
    std::optional<RepairJob> repair;
    /// The verification pass this drive is running, when busy with scrub.
    std::optional<ScrubJob> scrub;
    /// Pending completion of a clean foreground transfer (no fault or
    /// media interrupt booked); lets the hedge machinery cancel the
    /// losing leg mid-stream. 0 when no cancellable transfer is up.
    sim::EventId transfer_event = 0;
  };
  std::vector<DriveCtx> ctx_;

  /// Requested extents keyed by tape id value; removed once served.
  std::unordered_map<std::uint32_t, std::vector<catalog::TapeExtent>> needed_;
  /// Offline tapes awaiting a drive, per library, largest work first.
  std::vector<std::deque<TapeId>> lib_queue_;
  /// A repair-watch event is pending for this library.
  std::vector<bool> watch_pending_;
  /// Total failed mount attempts per tape value, this request.
  std::unordered_map<std::uint32_t, std::uint32_t> mount_attempts_;
  std::size_t remaining_extents_ = 0;
  Seconds t0_{};
  Seconds last_transfer_end_{};
  DriveId last_finisher_{};
  std::uint32_t switches_this_request_ = 0;
  Seconds robot_wait_this_request_{};
  Bytes bytes_unavailable_this_request_{};
  std::uint32_t extents_unavailable_this_request_ = 0;
  std::uint32_t failovers_this_request_ = 0;
  std::uint32_t mount_retries_this_request_ = 0;
  std::uint32_t media_retries_this_request_ = 0;
  std::uint64_t total_switches_ = 0;
  bool in_request_ = false;

  // --- overload state (inert defaults: bit-identical when unused) ---
  Seconds deadline_abs_{metrics::RequestOutcome::kNoDeadline};
  Priority priority_ = Priority::kForeground;
  sim::EventId deadline_event_ = 0;
  bool expired_ = false;  ///< Current request blew its deadline.
  Bytes bytes_expired_this_request_{};
  std::uint32_t extents_expired_this_request_ = 0;
  bool overload_pressure_ = false;

  // --- redundancy state (all empty/zero when the plan is unreplicated) ---
  bool replicated_ = false;
  std::uint32_t target_copies_ = 1;  ///< plan replication factor
  /// Copies already tried (and failed) per object value, this request.
  std::unordered_map<std::uint32_t, std::vector<TapeId>> tried_;
  std::uint32_t served_from_replica_this_request_ = 0;
  std::uint32_t repaired_this_request_ = 0;
  std::deque<RepairJob> repair_queue_;
  std::uint32_t active_repairs_ = 0;  ///< Jobs currently holding a drive.
  /// Tapes with an in-flight repair write (offset exclusivity).
  std::unordered_set<std::uint32_t> repair_writing_;
  /// Queued + in-flight new copies per object value (over-scheduling guard).
  std::unordered_map<std::uint32_t, std::uint32_t> repair_pending_;
  RepairStats repair_stats_;
  /// Snapshot of injector counters at the last request boundary, for
  /// emitting per-request deltas into the tracer registry.
  fault::FaultCounters prev_fault_counters_;

  // --- scrub + evacuation state (all empty/zero when disabled) ---
  /// When each tape last completed a verification pass (start epoch = 0).
  std::vector<Seconds> last_scrub_;
  std::uint32_t active_scrubs_ = 0;  ///< Passes currently holding a drive.
  ScrubStats scrub_stats_;
  /// Tapes whose evacuation has begun. A tape stays in this set after a
  /// failed drain (some object had no surviving copy to clone) so the
  /// policy does not thrash on an unevacuatable cartridge.
  std::unordered_set<std::uint32_t> evacuating_;
  /// Outstanding evacuation copy jobs per tape value.
  std::unordered_map<std::uint32_t, std::uint32_t> evac_outstanding_;
  EvacStats evac_stats_;
  std::uint32_t latent_hits_this_request_ = 0;

  // --- library outage state (all empty/zero when outages are disabled) ---
  /// Scheduler-side view of one library's outage timeline. The tape
  /// system's LibraryState is authoritative for up/down/destroyed; this
  /// adds the window bounds and the RTO sampling flags.
  struct OutageWatch {
    Seconds began{};       ///< Onset of the currently observed outage.
    Seconds restore_at{};  ///< Exact timeline restore time (inf = never).
    bool awaiting_first_byte = false;  ///< TTFB sample armed post-restore.
    Seconds restored_at{};             ///< When the library last restored.
  };
  std::vector<OutageWatch> outage_watch_;
  OutageStats outage_stats_;
  /// Outstanding DR copy jobs and disaster onset per destroyed library
  /// value; an entry drains to removal when its last job settles.
  std::unordered_map<std::uint32_t, std::uint32_t> dr_outstanding_;
  std::unordered_map<std::uint32_t, Seconds> dr_began_;
  /// Library whose disaster is currently scheduling repairs (valid only
  /// inside register_outage's loss loop; tags jobs as DR traffic).
  LibraryId dr_tag_{};
  std::uint32_t extents_parked_this_request_ = 0;

  // --- gray-failure state (all empty/zero unless detector/hedge on) ---
  /// Per-drive detector view: throughput EWMA over completed foreground
  /// transfers and the flag/quarantine window bookkeeping.
  struct DetectorState {
    double tput_ewma = 0.0;  ///< Bytes/s EWMA; 0 until the first sample.
    std::uint32_t samples = 0;
    Seconds below_since{};  ///< kNever-like inf when not below threshold.
    bool flagged = false;
    Seconds flagged_at{};
    bool quarantined = false;
    Seconds release_at{};  ///< Earliest quarantine exit (re-extended).
  };
  std::vector<DetectorState> detector_;
  /// One speculative race per object (requests carry unique objects, so
  /// the object value is a safe key).
  struct Hedge {
    TapeId primary{};     ///< Tape the original chain reads from.
    TapeId alt{};         ///< Tape of the speculative leg.
    Seconds primary_eta{};  ///< Projected finish of the primary stream.
    Seconds issued_at{};
    /// The primary leg failed; the speculative leg now carries the
    /// object's accounting alone.
    bool primary_dead = false;
  };
  std::unordered_map<std::uint32_t, Hedge> hedges_;
  /// Objects whose losing leg was cancelled; skipped at serve
  /// boundaries until the request ends.
  std::unordered_set<std::uint32_t> hedge_cancelled_;
  /// Ring buffer of normalized service times (actual / native duration)
  /// over completed foreground transfers.
  std::vector<double> hedge_ratio_;
  std::size_t hedge_ratio_next_ = 0;
  std::uint64_t hedge_bytes_ = 0;   ///< Speculative bytes launched.
  std::uint64_t served_bytes_ = 0;  ///< Foreground bytes completed.
  FailSlowStats failslow_stats_;

  // --- recovery-work governor (inert when config_.governor.enabled is
  // false: every hook is guarded, so the disabled path adds no draws and
  // no events) ---
  RecoveryGovernor governor_;

  // --- metadata durability state (null/zero when the journal is off) ---
  std::unique_ptr<catalog::Journal> journal_;
  RecoveryStats recovery_stats_;
};

}  // namespace tapesim::sched
