// The retrieval simulator: executes requests against a placed tape system.
//
// This is the event-driven core the paper describes in Section 6
// ("Simulator"): given a request, the involved tapes are resolved through
// the object catalog; drives holding requested tapes serve their objects in
// seek-optimized order; offline tapes queue per library and rotate through
// switch-eligible drives (rewind -> unload -> robot exchange -> load ->
// locate -> transfer), with the single robot arm per library serializing
// exchanges and robots of different libraries working in parallel. System
// state (mounted tapes, head positions) persists across requests; requests
// arrive one at a time with no queueing delay.
#pragma once

#include <deque>
#include <unordered_map>
#include <vector>

#include "catalog/catalog.hpp"
#include "core/plan.hpp"
#include "metrics/request_metrics.hpp"
#include "sim/engine.hpp"
#include "sim/semaphore.hpp"
#include "tape/system.hpp"
#include "workload/model.hpp"

namespace tapesim::obs {
class Histogram;
class Tracer;
}  // namespace tapesim::obs

namespace tapesim::sched {

struct SimulatorConfig {
  /// Serve the extents of a tape in sweep order starting from the cheaper
  /// end (the paper: "the objects retrieving order within a tape is
  /// optimized to reduce the data seek time"). Disabling reverts to request
  /// order — the seek-order ablation.
  bool optimize_seek_order = true;
  /// Robot handoff protocol. When true (default) the robot stays at the
  /// drive until the cartridge is inserted AND threaded (load-to-ready),
  /// serializing the full mount through the robot; when false it leaves as
  /// soon as the cartridge is inserted and the drive threads on its own.
  /// Real accessors vary; the ablation bench quantifies the difference.
  bool robot_holds_load = true;
  /// Staging-disk streaming slots: how many drives can move data to the
  /// disk cache at full rate simultaneously. 0 (default) = unlimited, the
  /// paper's assumption 6 ("the bottleneck of data transfer path lies at
  /// tape drive"). Finite values model a constrained disk array; a drive
  /// waits for a slot between locating and streaming.
  std::uint32_t max_concurrent_streams = 0;
  /// Concurrent simulator only: which demanded offline tape a free drive
  /// fetches next. Greedy throughput (most outstanding bytes) can starve
  /// small requests under sustained load; oldest-demand-first trades a
  /// little throughput for bounded waiting.
  enum class TapePick { kMostDemandedBytes, kOldestDemand };
  TapePick tape_pick = TapePick::kMostDemandedBytes;
  /// Optional telemetry. When set, the simulator binds the tracer to its
  /// engine and system (device spans and kernel counters come for free) and
  /// adds the request-level spans only the scheduler can see: queue waits,
  /// robot-queue waits, and whole-request lifetimes. Null costs a pointer
  /// check per request. Must outlive the simulator; detached on destruction.
  obs::Tracer* tracer = nullptr;
};

class RetrievalSimulator {
 public:
  /// Builds the physical system, materializes the catalog from `plan`, and
  /// performs the initial mounts (startup time is not measured, matching
  /// the paper). `plan` and its workload must outlive the simulator.
  explicit RetrievalSimulator(const core::PlacementPlan& plan,
                              SimulatorConfig config = {});
  ~RetrievalSimulator();
  RetrievalSimulator(const RetrievalSimulator&) = delete;
  RetrievalSimulator& operator=(const RetrievalSimulator&) = delete;

  /// Executes one request to completion and returns its outcome. State
  /// persists into the next call.
  metrics::RequestOutcome run_request(RequestId id);

  [[nodiscard]] const workload::Workload& workload() const {
    return plan_->workload();
  }
  [[nodiscard]] const tape::TapeSystem& system() const { return system_; }
  [[nodiscard]] const catalog::ObjectCatalog& catalog() const {
    return catalog_;
  }
  [[nodiscard]] sim::Engine& engine() { return engine_; }

  /// Cumulative switches across all requests so far.
  [[nodiscard]] std::uint64_t total_switches() const {
    return total_switches_;
  }

 private:
  // --- per-request orchestration ---
  void serve_mounted(DriveId d);
  void next_action(DriveId d);
  void begin_switch(DriveId d, TapeId target);
  void extent_done(DriveId d);
  [[nodiscard]] bool switch_eligible(DriveId d) const;
  /// Ordered extent list for the mounted tape of `d`, per config.
  [[nodiscard]] std::vector<catalog::TapeExtent> plan_extent_order(
      DriveId d) const;

  sim::Engine engine_;
  const core::PlacementPlan* plan_;
  tape::TapeSystem system_;
  catalog::ObjectCatalog catalog_;
  SimulatorConfig config_;
  sim::Semaphore disk_streams_;

  // Per-request transient state.
  struct DriveReq {
    Seconds seek{};
    Seconds transfer{};
    Seconds finish{};
    bool used = false;
  };
  std::vector<DriveReq> drive_req_;
  /// Requested extents keyed by tape id value; removed once served.
  std::unordered_map<std::uint32_t, std::vector<catalog::TapeExtent>> needed_;
  /// Offline tapes awaiting a drive, per library, largest work first.
  std::vector<std::deque<TapeId>> lib_queue_;
  std::size_t remaining_extents_ = 0;
  Seconds t0_{};
  Seconds last_transfer_end_{};
  DriveId last_finisher_{};
  std::uint32_t switches_this_request_ = 0;
  Seconds robot_wait_this_request_{};
  std::uint64_t total_switches_ = 0;
  bool in_request_ = false;
};

}  // namespace tapesim::sched
