// The retrieval simulator: executes requests against a placed tape system.
//
// This is the event-driven core the paper describes in Section 6
// ("Simulator"): given a request, the involved tapes are resolved through
// the object catalog; drives holding requested tapes serve their objects in
// seek-optimized order; offline tapes queue per library and rotate through
// switch-eligible drives (rewind -> unload -> robot exchange -> load ->
// locate -> transfer), with the single robot arm per library serializing
// exchanges and robots of different libraries working in parallel. System
// state (mounted tapes, head positions) persists across requests; requests
// arrive one at a time with no queueing delay.
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "catalog/catalog.hpp"
#include "core/plan.hpp"
#include "fault/injector.hpp"
#include "fault/model.hpp"
#include "metrics/request_metrics.hpp"
#include "sim/engine.hpp"
#include "sim/semaphore.hpp"
#include "tape/system.hpp"
#include "util/error.hpp"
#include "workload/model.hpp"

namespace tapesim::obs {
class Histogram;
class Tracer;
}  // namespace tapesim::obs

namespace tapesim::sched {

struct SimulatorConfig {
  /// Serve the extents of a tape in sweep order starting from the cheaper
  /// end (the paper: "the objects retrieving order within a tape is
  /// optimized to reduce the data seek time"). Disabling reverts to request
  /// order — the seek-order ablation.
  bool optimize_seek_order = true;
  /// Robot handoff protocol. When true (default) the robot stays at the
  /// drive until the cartridge is inserted AND threaded (load-to-ready),
  /// serializing the full mount through the robot; when false it leaves as
  /// soon as the cartridge is inserted and the drive threads on its own.
  /// Real accessors vary; the ablation bench quantifies the difference.
  bool robot_holds_load = true;
  /// Staging-disk streaming slots: how many drives can move data to the
  /// disk cache at full rate simultaneously. 0 (default) = unlimited, the
  /// paper's assumption 6 ("the bottleneck of data transfer path lies at
  /// tape drive"). Finite values model a constrained disk array; a drive
  /// waits for a slot between locating and streaming.
  std::uint32_t max_concurrent_streams = 0;
  /// Concurrent simulator only: which demanded offline tape a free drive
  /// fetches next. Greedy throughput (most outstanding bytes) can starve
  /// small requests under sustained load; oldest-demand-first trades a
  /// little throughput for bounded waiting.
  enum class TapePick { kMostDemandedBytes, kOldestDemand };
  TapePick tape_pick = TapePick::kMostDemandedBytes;
  /// Optional telemetry. When set, the simulator binds the tracer to its
  /// engine and system (device spans and kernel counters come for free) and
  /// adds the request-level spans only the scheduler can see: queue waits,
  /// robot-queue waits, and whole-request lifetimes. Null costs a pointer
  /// check per request. Must outlive the simulator; detached on destruction.
  obs::Tracer* tracer = nullptr;
  /// Fault model. The default (all rates zero) disables fault injection
  /// entirely: no injector is built and the event sequence is bit-identical
  /// to a faultless build.
  fault::FaultConfig faults{};

  /// Recoverable validation of user-provided knobs (currently the fault
  /// model); the simulator constructor throws std::invalid_argument
  /// carrying this message instead of aborting.
  [[nodiscard]] Status try_validate() const;
};

class RetrievalSimulator {
 public:
  /// Builds the physical system, materializes the catalog from `plan`, and
  /// performs the initial mounts (startup time is not measured, matching
  /// the paper). `plan` and its workload must outlive the simulator.
  explicit RetrievalSimulator(const core::PlacementPlan& plan,
                              SimulatorConfig config = {});
  ~RetrievalSimulator();
  RetrievalSimulator(const RetrievalSimulator&) = delete;
  RetrievalSimulator& operator=(const RetrievalSimulator&) = delete;

  /// Executes one request to completion and returns its outcome. State
  /// persists into the next call.
  metrics::RequestOutcome run_request(RequestId id);

  [[nodiscard]] const workload::Workload& workload() const {
    return plan_->workload();
  }
  [[nodiscard]] const tape::TapeSystem& system() const { return system_; }
  [[nodiscard]] const catalog::ObjectCatalog& catalog() const {
    return catalog_;
  }
  [[nodiscard]] sim::Engine& engine() { return engine_; }

  /// Cumulative switches across all requests so far.
  [[nodiscard]] std::uint64_t total_switches() const {
    return total_switches_;
  }

  /// The fault injector, or nullptr when fault injection is disabled.
  [[nodiscard]] const fault::FaultInjector* fault_injector() const {
    return fault_.get();
  }

 private:
  // --- per-request orchestration ---
  void serve_mounted(DriveId d);
  void serve_step(DriveId d);
  void begin_transfer(DriveId d, catalog::TapeExtent extent);
  void next_action(DriveId d);
  void begin_switch(DriveId d, TapeId target);
  void attempt_load(DriveId d, TapeId target);
  void finish_mount(DriveId d, TapeId target);
  void extent_done(DriveId d);
  [[nodiscard]] bool switch_eligible(DriveId d) const;
  /// Ordered extent list for the mounted tape of `d`, per config.
  [[nodiscard]] std::vector<catalog::TapeExtent> plan_extent_order(
      DriveId d) const;

  // --- fault handling (all no-ops / never reached when fault_ is null) ---
  /// Schedules the completion of a drive activity; with faults enabled and
  /// a failure striking mid-activity, the completion is cancelled and the
  /// failure handler runs instead.
  void schedule_activity(DriveId d, Seconds duration,
                         std::function<void()> on_done);
  /// Lazily reconciles drive `d` with its failure timeline. True when the
  /// drive is usable now (possibly just repaired). Only call on drives with
  /// no in-flight activity; active drives fail via activity preemption.
  bool drive_available(DriveId d);
  /// Registers a failure observed now: partial-time accounting, requeue of
  /// in-flight work, robot/disk release, cartridge recovery, redispatch.
  void on_drive_failure(DriveId d);
  void repair_drive(DriveId d);
  /// Mount-failure retry/backoff ladder, entered at load completion.
  void on_mount_failure(DriveId d, TapeId target);
  /// Media-error abort/retry ladder, entered mid-transfer; the failing
  /// extent is chain_[d].extents[chain_[d].index].
  void on_media_error(DriveId d);
  /// Robot extracts a stuck cartridge from failed drive `d` and requeues it.
  void recover_cartridge(DriveId d);
  /// Completes every pending extent of `tp` as unavailable.
  void complete_tape_unavailable(TapeId tp);
  void extent_unavailable(const catalog::TapeExtent& extent);
  /// Offers queued tapes of `lib` to free drives; if none can ever serve
  /// them, waits for the next repair or declares them unavailable.
  void ensure_progress(LibraryId lib);
  void kick_idle_drives(LibraryId lib);
  [[nodiscard]] Seconds robot_move_delay(tape::TapeLibrary& lib,
                                         Seconds base);

  sim::Engine engine_;
  const core::PlacementPlan* plan_;
  tape::TapeSystem system_;
  catalog::ObjectCatalog catalog_;
  SimulatorConfig config_;
  sim::Semaphore disk_streams_;
  std::unique_ptr<fault::FaultInjector> fault_;

  // Per-request transient state.
  struct DriveReq {
    Seconds seek{};
    Seconds transfer{};
    Seconds finish{};
    bool used = false;
  };
  std::vector<DriveReq> drive_req_;

  /// The extent chain a drive is currently serving (replaces the old
  /// self-owning closure chain; plain state makes requeue-on-failure
  /// possible). `index` is the extent being served, advanced only after it
  /// completes so media retries can re-serve it.
  struct ServeChain {
    std::vector<catalog::TapeExtent> extents;
    std::size_t index = 0;
    std::uint32_t retries = 0;  ///< Media retries on the current extent.
    bool active = false;
  };
  std::vector<ServeChain> chain_;

  /// Fault-handling context per drive.
  struct DriveCtx {
    bool busy = false;          ///< Serving a chain or mid-switch.
    Seconds activity_start{};   ///< When the current start_*() began.
    Seconds failed_at{};        ///< When the current outage was observed.
    TapeId switch_target{};     ///< Cartridge being fetched, mid-switch.
    std::uint32_t mount_retries = 0;  ///< On the current target, this drive.
    bool robot_held = false;
    bool disk_held = false;
    bool recovery_pending = false;  ///< Robot en route to extract cartridge.
  };
  std::vector<DriveCtx> ctx_;

  /// Requested extents keyed by tape id value; removed once served.
  std::unordered_map<std::uint32_t, std::vector<catalog::TapeExtent>> needed_;
  /// Offline tapes awaiting a drive, per library, largest work first.
  std::vector<std::deque<TapeId>> lib_queue_;
  /// A repair-watch event is pending for this library.
  std::vector<bool> watch_pending_;
  /// Total failed mount attempts per tape value, this request.
  std::unordered_map<std::uint32_t, std::uint32_t> mount_attempts_;
  std::size_t remaining_extents_ = 0;
  Seconds t0_{};
  Seconds last_transfer_end_{};
  DriveId last_finisher_{};
  std::uint32_t switches_this_request_ = 0;
  Seconds robot_wait_this_request_{};
  Bytes bytes_unavailable_this_request_{};
  std::uint32_t extents_unavailable_this_request_ = 0;
  std::uint32_t failovers_this_request_ = 0;
  std::uint32_t mount_retries_this_request_ = 0;
  std::uint32_t media_retries_this_request_ = 0;
  std::uint64_t total_switches_ = 0;
  bool in_request_ = false;
  /// Snapshot of injector counters at the last request boundary, for
  /// emitting per-request deltas into the tracer registry.
  fault::FaultCounters prev_fault_counters_;
};

}  // namespace tapesim::sched
