#include "sched/simulator.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <utility>

#include "obs/tracer.hpp"
#include "util/assert.hpp"
#include "util/log.hpp"

namespace tapesim::sched {

namespace {
constexpr Seconds kNever{std::numeric_limits<double>::infinity()};
/// A repair job that keeps failing (drive deaths, mount failures, media
/// errors on its sources) is abandoned after this many restarts.
constexpr std::uint32_t kMaxRepairAttempts = 3;

catalog::ReplicaHealth to_replica_health(tape::CartridgeHealth h) {
  switch (h) {
    case tape::CartridgeHealth::kGood: return catalog::ReplicaHealth::kGood;
    case tape::CartridgeHealth::kDegraded:
      return catalog::ReplicaHealth::kDegraded;
    case tape::CartridgeHealth::kLost: return catalog::ReplicaHealth::kLost;
  }
  return catalog::ReplicaHealth::kGood;
}
}  // namespace

Status SimulatorConfig::try_validate() const {
  StatusBuilder check("SimulatorConfig");
  check.merge(faults.try_validate());
  check.merge(repair.try_validate());
  check.merge(scrub.try_validate());
  check.merge(evacuation.try_validate());
  check.merge(detector.try_validate());
  check.merge(hedge.try_validate());
  check.merge(journal.try_validate());
  check.merge(governor.try_validate());
  check.require(!faults.crash.enabled() || journal.enabled,
                "metadata crashes require the catalog journal (a crash "
                "without a log would lose the whole catalog)");
  return check.take();
}

RetrievalSimulator::RetrievalSimulator(const core::PlacementPlan& plan,
                                       SimulatorConfig config)
    : plan_(&plan),
      system_(plan.spec(), engine_),
      catalog_(plan.to_catalog()),
      config_(config),
      disk_streams_(engine_, "disk", config.max_concurrent_streams) {
  if (const Status s = config_.try_validate(); !s.ok()) {
    throw std::invalid_argument(s.message());
  }
  catalog_.validate(plan.spec().library.tape_capacity);
  for (const auto& [drive, tp] : plan_->mount_policy.initial_mounts) {
    system_.setup_mount(tp, drive);
  }
  drive_req_.resize(plan.spec().total_drives());
  chain_.resize(plan.spec().total_drives());
  ctx_.resize(plan.spec().total_drives());
  lib_queue_.resize(plan.spec().num_libraries);
  watch_pending_.assign(plan.spec().num_libraries, false);
  outage_watch_.resize(plan.spec().num_libraries);
  last_scrub_.assign(plan.spec().total_tapes(), Seconds{});
  detector_.resize(plan.spec().total_drives());
  for (DetectorState& st : detector_) st.below_since = kNever;
  replicated_ = catalog_.has_replicas();
  target_copies_ = plan.replication_factor();
  if (config_.faults.enabled()) {
    fault_ = std::make_unique<fault::FaultInjector>(config_.faults,
                                                    plan.spec());
  }
  if (config_.tracer != nullptr) {
    config_.tracer->bind(engine_);
    config_.tracer->observe(system_);
  }
  if (config_.journal.enabled) {
    journal_ = std::make_unique<catalog::Journal>(
        config_.journal, plan.spec().total_tapes());
    // The initial checkpoint covers the plan's placement (materialised
    // above, before the journal existed); every later mutation is logged.
    take_checkpoint();
  }
  governor_.configure(config_.governor, plan.spec().total_drives(),
                      plan.spec().num_libraries, config_.tracer);
}

RetrievalSimulator::~RetrievalSimulator() {
  // The tracer outlives us; make sure it stops referencing our engine and
  // drives. Spans and metrics stay available for export.
  if (config_.tracer != nullptr) config_.tracer->detach();
}

bool RetrievalSimulator::switch_eligible(DriveId d) const {
  return !plan_->mount_policy.pinned(d);
}

std::vector<catalog::TapeExtent> RetrievalSimulator::plan_extent_order(
    DriveId d) const {
  const tape::TapeDrive& drive = system_.drive(d);
  const TapeId tp = drive.mounted();
  const auto it = needed_.find(tp.value());
  TAPESIM_ASSERT(it != needed_.end());
  std::vector<catalog::TapeExtent> extents = it->second;
  if (!config_.optimize_seek_order || extents.size() < 2) return extents;

  std::sort(extents.begin(), extents.end(),
            [](const catalog::TapeExtent& a, const catalog::TapeExtent& b) {
              return a.offset < b.offset;
            });
  // Reads always move forward over an object, so compare the exact head
  // travel of an ascending sweep against a descending one and take the
  // cheaper. Ascending: reach the first extent, then cross the gaps.
  // Descending: reach the last extent, then jump backward over each
  // just-read extent to the start of the previous one.
  const Bytes head = drive.head();
  auto dist = [](Bytes a, Bytes b) { return Bytes::distance(a, b).count(); };
  std::uint64_t asc = dist(head, extents.front().offset);
  for (std::size_t i = 1; i < extents.size(); ++i) {
    asc += dist(extents[i - 1].offset + extents[i - 1].size,
                extents[i].offset);
  }
  std::uint64_t desc = dist(head, extents.back().offset);
  for (std::size_t i = extents.size(); i-- > 1;) {
    desc += dist(extents[i].offset + extents[i].size,
                 extents[i - 1].offset);
  }
  if (desc < asc) std::reverse(extents.begin(), extents.end());
  return extents;
}

void RetrievalSimulator::schedule_activity(DriveId d, Seconds duration,
                                           std::function<void()> on_done) {
  ctx_[d.index()].activity_start = engine_.now();
  if (fault_ == nullptr) {
    engine_.schedule_in(duration, std::move(on_done));
    return;
  }
  if (const auto fail_after =
          fault_->failure_within(d, engine_.now(), duration)) {
    // The completion is already booked when the fault strikes, exactly as a
    // real controller would have it; the failure event retracts it and runs
    // the recovery path instead.
    const sim::EventId done = engine_.schedule_in(duration, std::move(on_done));
    engine_.schedule_in(*fail_after, [this, d, done]() {
      engine_.cancel(done);
      on_drive_failure(d);
    });
    return;
  }
  engine_.schedule_in(duration, std::move(on_done));
}

bool RetrievalSimulator::drive_available(DriveId d) {
  if (fault_ == nullptr) return true;
  if (outage_active() &&
      !library_operational(system_.library_of_drive(d))) {
    // The whole library is down; every non-busy drive in it was failed
    // when the onset was registered, and busy drives preempt through
    // their own folded failure interrupts.
    return false;
  }
  tape::TapeDrive& drive = system_.drive(d);
  const Seconds now = engine_.now();
  if (drive.failed()) {
    const auto back = fault_->next_online_at(d, now);
    if (back.has_value() && *back <= now) {
      repair_drive(d);
      return true;
    }
    return false;
  }
  if (fault_->drive_online(d, now)) return true;
  // The timeline says the drive is down but nothing observed it yet: only
  // inactive drives can be in this state (activities are preempted at the
  // exact failure time), so register the failure now.
  on_drive_failure(d);
  return false;
}

void RetrievalSimulator::repair_drive(DriveId d) {
  tape::TapeDrive& drive = system_.drive(d);
  DriveCtx& ctx = ctx_[d.index()];
  drive.repair(engine_.now() - ctx.failed_at);
  if (config_.tracer != nullptr) {
    config_.tracer->marker(obs::Track::kDrive, d.value(), "repaired");
  }
  // Give the drive work once the current dispatch settles. The event
  // no-ops if some other path (a kick, a queue pull) got there first.
  engine_.schedule_in(Seconds{0.0}, [this, d]() {
    DriveCtx& c = ctx_[d.index()];
    if (c.busy) return;
    const tape::TapeDrive& dr = system_.drive(d);
    if (dr.failed()) return;  // failed again before the event ran
    if (!dr.empty() && needed_.count(dr.mounted().value()) != 0) {
      serve_mounted(d);
    } else {
      next_action(d);
    }
  });
}

void RetrievalSimulator::on_drive_failure(DriveId d) {
  TAPESIM_ASSERT(fault_ != nullptr);
  if (outage_active()) {
    // An interrupt fired by a library onset registers the whole outage
    // first (atomically downing the library's idle drives and rerouting
    // its demand); this busy drive then tears itself down below.
    library_operational(system_.library_of_drive(d));
  }
  tape::TapeDrive& drive = system_.drive(d);
  TAPESIM_ASSERT_MSG(!drive.failed(), "drive failure registered twice");
  DriveCtx& ctx = ctx_[d.index()];
  ServeChain& chain = chain_[d.index()];
  const Seconds now = engine_.now();
  const bool mid_activity = !(drive.idle() || drive.empty());
  const Seconds elapsed = mid_activity ? now - ctx.activity_start : Seconds{};
  const bool permanent = !fault_->next_online_at(d, now).has_value() ||
                         fault_->outage_is_permanent(d, now);
  // A drive downed only by its library's outage is not a drive failure:
  // the hardware is fine, the building is dark.
  if (!outage_active() || !fault_->drive_timeline_online(d, now)) {
    fault_->note_drive_failure(permanent);
  }

  const bool had_work = chain.active || ctx.switch_target.valid();
  if (had_work) ++failovers_this_request_;

  drive.fail(elapsed);
  ctx.failed_at = now;
  ctx.transfer_event = 0;  // the completion was retracted by the interrupt
  if (config_.tracer != nullptr) {
    config_.tracer->marker(obs::Track::kDrive, d.value(),
                           permanent ? "drive failed (permanent)"
                                     : "drive failed");
  }

  const LibraryId lib_id = system_.library_of_drive(d);
  tape::TapeLibrary& lib = system_.library(lib_id);
  if (ctx.disk_held) {
    disk_streams_.release();
    ctx.disk_held = false;
  }
  if (ctx.robot_held) {
    lib.robot().release();
    ctx.robot_held = false;
  }

  // Requeue the unserved tail of the serve chain: those extents go back
  // into the demand map so another drive can take them over once the
  // cartridge has been rescued. An expired chain's tail was already
  // written off at the deadline — nothing to hand over. When the whole
  // library is down (its robot included, so no rescue is coming soon),
  // each tail extent instead fails over to a surviving library or parks
  // until the restore.
  const TapeId stuck = drive.mounted();
  const bool lib_down = outage_active() && !system_.library_up(lib_id);
  if (chain.active) {
    TAPESIM_ASSERT(stuck.valid());
    if (!expired_) {
      for (std::size_t i = chain.index; i < chain.extents.size(); ++i) {
        const catalog::TapeExtent& e = chain.extents[i];
        // Hedge legs never requeue: a cancelled loser is already settled
        // and an absorbed leg hands the object to its racing twin.
        if (hedge_tombstoned(e) || hedge_absorb_failure(stuck, e)) continue;
        if (lib_down) {
          outage_divert(stuck, e);
        } else {
          needed_[stuck.value()].push_back(e);
        }
      }
    }
    chain = ServeChain{};
  }
  // A switch that had not yet inserted the cartridge: the target goes back
  // to the head of its library queue (failover priority) — unless the
  // request expired, in which case nobody wants the cartridge anymore.
  // Under a registered library outage the target's extents were already
  // rerouted or parked by register_outage, so it only requeues if some
  // demand for it survived.
  if (ctx.switch_target.valid() && ctx.switch_target != stuck && !expired_ &&
      (!lib_down || needed_.count(ctx.switch_target.value()) != 0)) {
    lib_queue_[system_.library_of_tape(ctx.switch_target).index()].push_front(
        ctx.switch_target);
  }
  ctx.switch_target = TapeId{};
  ctx.robot_ticket = sim::Resource::kInvalidTicket;
  ctx.mount_retries = 0;
  ctx.busy = false;

  // A repair job loses its drive: requeue it (staged data survives on
  // disk) or abandon it if it keeps drawing failures.
  if (ctx.repair.has_value()) {
    RepairJob job = std::move(*ctx.repair);
    ctx.repair.reset();
    --active_repairs_;
    const TapeId claimed = job.read_done ? job.target : job.source;
    if (job.target.valid()) {
      repair_writing_.erase(job.target.value());
      job.target = TapeId{};
    }
    if (!job.read_done) job.source = TapeId{};
    ++job.attempts;
    if (job.attempts >= kMaxRepairAttempts) {
      abandon_repair(std::move(job));
    } else {
      repair_queue_.push_back(std::move(job));
      engine_.schedule_in(Seconds{0.0}, [this]() { pump_repairs(); });
    }
    // The claimed tape may be foreground demand that skipped the queue
    // while the repair held it (unless it is stuck in this very drive —
    // recover_cartridge requeues it after extraction).
    requeue_if_needed(claimed);
  }

  // A scrub pass loses its drive: the pass aborts (findings were already
  // applied at segment boundaries) and the tape becomes due again later.
  if (ctx.scrub.has_value()) {
    const ScrubJob job = *ctx.scrub;
    ctx.scrub.reset();
    --active_scrubs_;
    ++scrub_stats_.passes_aborted;
    scrub_stats_.bytes_verified += job.verified;
    scrub_stats_.latent_found += job.found;
    if (config_.tracer != nullptr) {
      config_.tracer->record(obs::Span{
          obs::Track::kScrub, job.tape.value(), obs::Phase::kScrub,
          job.started, now, RequestId{}, job.tape, "aborted: drive failed"});
      config_.tracer->registry().counter("scrub.verified_bytes")
          .inc(job.verified);
      config_.tracer->registry().counter("scrub.latent_found").inc(job.found);
    }
    requeue_if_needed(job.tape);
  }

  // A needed cartridge stuck in the failed drive must be extracted by the
  // robot before anyone else can serve it (once the library, and thus its
  // robot, is powered; register_restore retries the rescue otherwise).
  if (stuck.valid() && needed_.count(stuck.value()) != 0 && !lib_down) {
    recover_cartridge(d);
  }
  engine_.schedule_in(Seconds{0.0},
                      [this, lib_id]() { ensure_progress(lib_id); });
}

void RetrievalSimulator::recover_cartridge(DriveId d) {
  DriveCtx& ctx = ctx_[d.index()];
  if (ctx.recovery_pending) return;
  ctx.recovery_pending = true;
  const LibraryId lib_id = system_.library_of_drive(d);
  tape::TapeLibrary& lib = system_.library(lib_id);
  lib.robot().acquire([this, d, lib_id, &lib]() {
    // Travel to the failed drive, pull the cartridge, return it to its
    // cell: one exchange-length errand.
    const Seconds move = robot_move_delay(lib, lib.robot_exchange_time());
    engine_.schedule_in(move, [this, d, lib_id, &lib]() {
      DriveCtx& c = ctx_[d.index()];
      c.recovery_pending = false;
      tape::TapeDrive& dr = system_.drive(d);
      if (!dr.failed() || !dr.mounted().valid()) {
        // The drive repaired (or ejected) while the robot was en route;
        // nothing to extract.
        lib.robot().release();
        return;
      }
      const TapeId tp = dr.eject_failed();
      if (const auto holder = system_.drive_holding(tp);
          holder.has_value() && *holder == d) {
        system_.note_unmounted(tp);
      }
      lib.robot().release();
      if (config_.tracer != nullptr) {
        config_.tracer->marker(obs::Track::kRobot, lib_id.value(),
                               "recovered cartridge from failed drive");
      }
      if (needed_.count(tp.value()) != 0) {
        lib_queue_[system_.library_of_tape(tp).index()].push_front(tp);
      }
      ensure_progress(lib_id);
    });
  });
}

void RetrievalSimulator::extent_unavailable(
    const catalog::TapeExtent& extent) {
  TAPESIM_ASSERT(remaining_extents_ > 0);
  --remaining_extents_;
  bytes_unavailable_this_request_ += extent.size;
  ++extents_unavailable_this_request_;
  if (remaining_extents_ == 0) cancel_deadline_event();
}

// --- deadline enforcement -----------------------------------------------

void RetrievalSimulator::cancel_deadline_event() {
  if (deadline_event_ == 0) return;
  engine_.cancel(deadline_event_);
  deadline_event_ = 0;
}

void RetrievalSimulator::extent_expired(const catalog::TapeExtent& extent) {
  TAPESIM_ASSERT(remaining_extents_ > 0);
  --remaining_extents_;
  bytes_expired_this_request_ += extent.size;
  ++extents_expired_this_request_;
}

void RetrievalSimulator::on_deadline() {
  deadline_event_ = 0;
  TAPESIM_ASSERT_MSG(remaining_extents_ > 0,
                     "deadline event outlived its request");
  expired_ = true;

  // Account and drop every extent that will now never be served: those
  // still waiting in the demand map, and the unserved tails of active
  // chains (including the extent whose transfer is in flight — its
  // completion is expired-guarded). Together these are exactly the
  // remaining extents. A hedged object has two physical extents in
  // flight but only one accounting slot: the leg named by its record
  // carries it, and cancelled losers carry nothing.
  const auto expire_counts = [this](TapeId on,
                                    const catalog::TapeExtent& e) {
    if (!hedge_active()) return true;
    if (hedge_tombstoned(e)) return false;
    const auto it = hedges_.find(e.object.value());
    if (it == hedges_.end()) return true;
    const Hedge& h = it->second;
    return h.primary_dead ? on == h.alt : on == h.primary;
  };
  for (const auto& [tape_value, extents] : needed_) {
    for (const catalog::TapeExtent& e : extents) {
      if (expire_counts(TapeId{tape_value}, e)) extent_expired(e);
    }
  }
  needed_.clear();
  for (auto& q : lib_queue_) q.clear();
  for (std::uint32_t dv = 0; dv < ctx_.size(); ++dv) {
    const ServeChain& chain = chain_[dv];
    if (!chain.active) continue;
    const TapeId on = system_.drive(DriveId{dv}).mounted();
    for (std::size_t i = chain.index; i < chain.extents.size(); ++i) {
      if (expire_counts(on, chain.extents[i])) {
        extent_expired(chain.extents[i]);
      }
    }
  }
  TAPESIM_ASSERT_MSG(remaining_extents_ == 0,
                     "expired accounting missed an extent");
  // Outstanding hedges expire with the request: the ledger books them as
  // lost (nobody won) and the in-flight legs unwind via the expired
  // guard at their next boundary.
  for (const auto& [obj, h] : hedges_) {
    ++failslow_stats_.hedges_lost;
    record_hedge_settled("expired", h.issued_at);
  }
  hedges_.clear();

  // Withdraw switches still queued for the robot: the waiter is removed
  // without disturbing FIFO order and the drive goes back to idle (its
  // cartridge, if any, is rewound and still mounted — a legal resting
  // state). Switches past the robot grant drain as doomed mounts.
  for (std::uint32_t dv = 0; dv < ctx_.size(); ++dv) {
    DriveCtx& c = ctx_[dv];
    if (c.robot_ticket == sim::Resource::kInvalidTicket) continue;
    tape::TapeLibrary& lib =
        system_.library(system_.library_of_drive(DriveId{dv}));
    if (lib.robot().cancel(c.robot_ticket)) {
      c.robot_ticket = sim::Resource::kInvalidTicket;
      c.switch_target = TapeId{};
      c.mount_retries = 0;
      c.busy = false;
    }
  }
  if (config_.tracer != nullptr) {
    config_.tracer->marker(obs::Track::kOverload,
                           config_.tracer->current_request().value(),
                           "deadline expired");
  }
}

void RetrievalSimulator::complete_tape_unavailable(TapeId tp) {
  if (const auto it = needed_.find(tp.value()); it != needed_.end()) {
    const std::vector<catalog::TapeExtent> extents = std::move(it->second);
    needed_.erase(it);
    for (const catalog::TapeExtent& e : extents) fail_extent(tp, e);
  }
  auto& queue = lib_queue_[system_.library_of_tape(tp).index()];
  const auto pos = std::find(queue.begin(), queue.end(), tp);
  if (pos != queue.end()) queue.erase(pos);
  if (config_.tracer != nullptr) {
    config_.tracer->marker(obs::Track::kEngine, 0,
                           "tape unavailable: " + std::to_string(tp.value()));
  }
}

void RetrievalSimulator::kick_idle_drives(LibraryId lib_id) {
  auto& queue = lib_queue_[lib_id.index()];
  const std::uint32_t per_lib = plan_->spec().library.drives_per_library;
  for (std::uint32_t i = 0; i < per_lib && !queue.empty(); ++i) {
    const DriveId d{lib_id.value() * per_lib + i};
    if (!switch_eligible(d)) continue;
    if (ctx_[d.index()].busy) continue;
    if (!drive_available(d)) continue;
    const tape::TapeDrive& drive = system_.drive(d);
    if (!(drive.idle() || drive.empty())) continue;
    if (!drive.empty() && needed_.count(drive.mounted().value()) != 0) {
      continue;  // holds demanded data; a serve event owns this drive
    }
    next_action(d);
  }
}

void RetrievalSimulator::ensure_progress(LibraryId lib_id) {
  if (fault_ == nullptr) return;
  if (outage_active()) library_operational(lib_id);
  kick_idle_drives(lib_id);
  auto& queue = lib_queue_[lib_id.index()];
  if (queue.empty()) {
    // Extents can be parked behind this library without a queue entry —
    // their cartridge is stuck in a downed drive. The restore watch below
    // must still be armed or the run would wedge on them.
    if (!outage_active() || system_.library_up(lib_id)) return;
    bool parked_here = false;
    for (const auto& [tape_value, extents] : needed_) {
      if (system_.library_of_tape(TapeId{tape_value}) == lib_id) {
        parked_here = true;
        break;
      }
    }
    if (!parked_here) return;
  }
  // The queue still holds demand. If any eligible drive is working (or
  // holds needed data), it will pull from the queue when it frees up.
  const std::uint32_t per_lib = plan_->spec().library.drives_per_library;
  const Seconds now = engine_.now();
  Seconds earliest = kNever;
  for (std::uint32_t i = 0; i < per_lib; ++i) {
    const DriveId d{lib_id.value() * per_lib + i};
    if (!switch_eligible(d)) continue;
    const tape::TapeDrive& drive = system_.drive(d);
    if (!drive.failed()) return;  // busy or pending-serve: progress is coming
    if (const auto back = fault_->next_online_at(d, now)) {
      earliest = std::min(earliest, *back);
    }
  }
  if (outage_active() && !system_.library_up(lib_id)) {
    // Watch for the library restore even when every drive's own hardware
    // is permanently dead: the restore powers the robot back up, and
    // register_restore rescues cartridges stuck in dead drives.
    const Seconds restore = outage_watch_[lib_id.index()].restore_at;
    earliest = std::min(earliest, restore);  // kNever for a disaster
  }
  if (earliest < kNever) {
    // Every eligible drive is down, at least one transiently: watch for
    // the first repair so the event loop cannot go idle with work queued.
    if (!watch_pending_[lib_id.index()]) {
      watch_pending_[lib_id.index()] = true;
      engine_.schedule_at(std::max(earliest, now), [this, lib_id]() {
        watch_pending_[lib_id.index()] = false;
        ensure_progress(lib_id);
      });
    }
    return;
  }
  // Every eligible drive is permanently dead: the queued data cannot be
  // retrieved, ever. Complete it as unavailable instead of wedging.
  while (!queue.empty()) {
    const TapeId tp = queue.front();
    complete_tape_unavailable(tp);  // also erases it from the queue
  }
  // Parked extents without a queue entry (their cartridge is stuck in a
  // dead drive) are just as unreachable; sweep them too.
  std::vector<TapeId> stuck;
  for (const auto& [tape_value, extents] : needed_) {
    if (system_.library_of_tape(TapeId{tape_value}) == lib_id) {
      stuck.push_back(TapeId{tape_value});
    }
  }
  for (const TapeId tp : stuck) complete_tape_unavailable(tp);
}

Seconds RetrievalSimulator::robot_move_delay(tape::TapeLibrary& lib,
                                             Seconds base) {
  if (fault_ == nullptr) return base;
  // A fail-slow accessor stretches every move before jams are added; the
  // multiplier is 1.0 (and the division exact) outside slow episodes.
  const double slow = fault_->robot_rate_multiplier(lib.id(), engine_.now());
  if (slow < 1.0) base = Seconds{base.count() / slow};
  const Seconds jam = fault_->robot_jam_delay(lib.id());
  if (jam.count() > 0.0 && config_.tracer != nullptr) {
    config_.tracer->marker(obs::Track::kRobot, lib.id().value(),
                           "robot jam");
  }
  if (governor_.enabled() && fault_->config().robot_jam_prob > 0.0) {
    // Every accessor move with jams enabled is a breaker observation: a
    // jam-free move counts for the robot, a jam against it.
    governor_.note_outcome(BreakerScope::kRobot,
                           static_cast<std::uint32_t>(lib.id().index()),
                           jam.count() == 0.0, engine_.now());
  }
  return base + jam;
}

// --- library outages ----------------------------------------------------

bool RetrievalSimulator::library_operational(LibraryId lib) {
  if (!outage_active()) return true;
  const Seconds now = engine_.now();
  switch (system_.library_state(lib)) {
    case tape::LibraryState::kDestroyed:
      return false;
    case tape::LibraryState::kDown: {
      if (outage_watch_[lib.index()].restore_at > now) return false;
      register_restore(lib);
      // Nested reconciles (register_restore wakes drives, whose queries
      // reconcile again) may already have observed the next onset.
      if (!system_.library_up(lib)) return false;
      if (!fault_->library_up(lib, now)) {
        register_outage(lib);
        return false;
      }
      return true;
    }
    case tape::LibraryState::kUp:
      if (fault_->library_up(lib, now)) return true;
      register_outage(lib);
      return false;
  }
  return true;  // unreachable; switch is exhaustive
}

void RetrievalSimulator::register_outage(LibraryId lib) {
  const Seconds now = engine_.now();
  const bool disaster = fault_->outage_is_disaster(lib, now);
  const Seconds began = fault_->outage_started_at(lib, now);
  const auto restore = fault_->library_up_at(lib, now);
  TAPESIM_ASSERT_MSG(disaster == !restore.has_value(),
                     "disaster flag and restore time disagree");
  fault_->note_library_outage(disaster);
  OutageWatch& w = outage_watch_[lib.index()];
  w.began = began;
  w.restore_at = restore.value_or(kNever);
  w.awaiting_first_byte = false;
  // State flips before any drive is touched so nested reconciles see the
  // outage as already registered.
  system_.fail_library(lib,
                       disaster ? tape::LibraryState::kDestroyed
                                : tape::LibraryState::kDown,
                       began);
  ++outage_stats_.started;
  if (disaster) ++outage_stats_.disasters;
  if (config_.tracer != nullptr) {
    config_.tracer->marker(obs::Track::kOutage, lib.value(),
                           disaster ? "site disaster" : "library outage");
    config_.tracer->registry().counter("outage.started").inc();
    if (disaster) {
      config_.tracer->registry().counter("outage.disasters").inc();
    }
  }

  // One onset downs every drive in the library atomically. Busy drives
  // preempt through their own folded failure interrupts (booked at this
  // exact instant); the idle ones are failed here.
  const std::uint32_t per_lib = plan_->spec().library.drives_per_library;
  for (std::uint32_t i = 0; i < per_lib; ++i) {
    const DriveId d{lib.value() * per_lib + i};
    if (ctx_[d.index()].busy) continue;
    if (system_.drive(d).failed()) continue;
    on_drive_failure(d);
  }

  if (disaster) {
    // Every resident cartridge is lost with the site. Scheduling the
    // replacement copies under the DR tag routes them through the two-
    // phase repair path at the DR bandwidth cap and arms the
    // time-to-full-redundancy clock.
    dr_tag_ = lib;
    dr_began_[lib.value()] = now;
    const std::uint32_t per_lib_tapes =
        plan_->spec().library.tapes_per_library;
    for (std::uint32_t i = 0; i < per_lib_tapes; ++i) {
      const TapeId t{lib.value() * per_lib_tapes + i};
      if (system_.cartridge_lost(t)) continue;
      system_.set_cartridge_health(t, tape::CartridgeHealth::kLost);
      on_cartridge_health_change(t, tape::CartridgeHealth::kLost);
    }
    dr_tag_ = LibraryId{};
    if (dr_outstanding_.count(lib.value()) == 0) {
      dr_began_.erase(lib.value());  // nothing to re-replicate
    }
    // Pending foreground demand on the lost cartridges fails over to
    // surviving replicas or completes as unavailable.
    std::vector<TapeId> pending;
    for (const auto& [tape_value, extents] : needed_) {
      if (system_.library_of_tape(TapeId{tape_value}) == lib) {
        pending.push_back(TapeId{tape_value});
      }
    }
    for (const TapeId tp : pending) complete_tape_unavailable(tp);
  } else {
    // Transient: the library's pending demand fails over to surviving
    // replicas, or parks until the restore.
    std::vector<TapeId> pending;
    for (const auto& [tape_value, extents] : needed_) {
      if (system_.library_of_tape(TapeId{tape_value}) == lib) {
        pending.push_back(TapeId{tape_value});
      }
    }
    for (const TapeId tp : pending) outage_reroute(tp);
  }
  engine_.schedule_in(Seconds{0.0}, [this, lib]() { ensure_progress(lib); });
}

void RetrievalSimulator::register_restore(LibraryId lib) {
  OutageWatch& w = outage_watch_[lib.index()];
  // The window closes at its exact timeline restore time (observation may
  // lag); downtime conservation across spans and counters depends on it.
  const Seconds window = system_.restore_library(lib, w.restore_at);
  outage_stats_.downtime += window;
  ++outage_stats_.ended;
  w.awaiting_first_byte = true;
  w.restored_at = w.restore_at;
  if (config_.tracer != nullptr) {
    config_.tracer->record(obs::Span{obs::Track::kOutage, lib.value(),
                                     obs::Phase::kOutage, w.began,
                                     w.restore_at, RequestId{}, TapeId{},
                                     {}});
    config_.tracer->registry().counter("outage.ended").inc();
    config_.tracer->registry().gauge("outage.downtime_s")
        .set(outage_stats_.downtime.count());
  }
  // Wake the fleet: repair drives the outage downed, and rescue needed
  // cartridges stuck in drives whose own hardware is still dead.
  const std::uint32_t per_lib = plan_->spec().library.drives_per_library;
  for (std::uint32_t i = 0; i < per_lib; ++i) {
    const DriveId d{lib.value() * per_lib + i};
    if (ctx_[d.index()].busy) continue;
    tape::TapeDrive& drive = system_.drive(d);
    if (!drive.failed()) continue;
    if (drive_available(d)) continue;  // repaired; 0-delay dispatch booked
    if (drive.mounted().valid() &&
        needed_.count(drive.mounted().value()) != 0) {
      recover_cartridge(d);
    }
  }
  engine_.schedule_in(Seconds{0.0}, [this, lib]() {
    kick_idle_drives(lib);
    ensure_progress(lib);
    pump_repairs();
  });
}

void RetrievalSimulator::outage_reroute(TapeId tp) {
  const auto it = needed_.find(tp.value());
  if (it == needed_.end()) return;
  const std::vector<catalog::TapeExtent> extents = std::move(it->second);
  needed_.erase(it);
  // The cartridge cannot be mounted while its library is down; drop its
  // queue entry (parked survivors re-add it below).
  auto& queue = lib_queue_[system_.library_of_tape(tp).index()];
  if (const auto pos = std::find(queue.begin(), queue.end(), tp);
      pos != queue.end()) {
    queue.erase(pos);
  }
  for (const catalog::TapeExtent& e : extents) outage_divert(tp, e);
  if (needed_.count(tp.value()) != 0) requeue_if_needed(tp);
}

void RetrievalSimulator::outage_divert(TapeId tp,
                                       const catalog::TapeExtent& extent) {
  // Hedged legs never divert: a cancelled loser is already settled, and
  // an absorbed leg leaves the object with its racing twin.
  if (hedge_tombstoned(extent) || hedge_absorb_failure(tp, extent)) return;
  if (catalog_.has_replicas()) {
    // The copy on `tp` stays live (the library will return), so it is not
    // marked tried — the read just routes around its library for now.
    const std::vector<LibraryId> down = down_libraries();
    if (const catalog::ObjectRecord* alt = catalog_.best_replica(
            extent.object, tried_[extent.object.value()], down)) {
      ++outage_stats_.failovers;
      if (config_.tracer != nullptr) {
        config_.tracer->registry().counter("outage.failovers").inc();
      }
      route_extent(*alt);
      return;
    }
  }
  if (system_.cartridge_lost(tp) ||
      system_.library_state(system_.library_of_tape(tp)) ==
          tape::LibraryState::kDestroyed) {
    // The copy this extent was riding is gone (a disaster struck while it
    // was in flight); parking would wait for a restore that never comes.
    // fail_extent retries the surviving copies, parks behind a transient
    // outage if that is all that is left, or completes unavailable.
    fail_extent(tp, extent);
    return;
  }
  needed_[tp.value()].push_back(extent);
  ++outage_stats_.extents_parked;
  ++extents_parked_this_request_;
}

std::vector<LibraryId> RetrievalSimulator::down_libraries() const {
  std::vector<LibraryId> down;
  if (!outage_active()) return down;
  for (std::uint32_t l = 0; l < plan_->spec().num_libraries; ++l) {
    if (!system_.library_up(LibraryId{l})) down.push_back(LibraryId{l});
  }
  return down;
}

void RetrievalSimulator::note_dr_job_done(LibraryId lib) {
  const auto it = dr_outstanding_.find(lib.value());
  TAPESIM_ASSERT(it != dr_outstanding_.end() && it->second > 0);
  if (--it->second > 0) return;
  dr_outstanding_.erase(it);
  const auto began = dr_began_.find(lib.value());
  TAPESIM_ASSERT(began != dr_began_.end());
  const Seconds took = engine_.now() - began->second;
  dr_began_.erase(began);
  outage_stats_.redundancy_recovery.add(took.count());
  if (config_.tracer != nullptr) {
    const auto layout = obs::BucketLayout::exponential(0.1, 1e5, 1.3);
    config_.tracer->registry()
        .histogram("outage.redundancy_recovery_s", layout)
        .record(took.count());
    config_.tracer->marker(obs::Track::kOutage, lib.value(),
                           "disaster recovery drained");
  }
}

void RetrievalSimulator::serve_mounted(DriveId d) {
  if (ctx_[d.index()].repair.has_value() ||
      ctx_[d.index()].scrub.has_value()) {
    // Mid-repair drives are active between requests; the foreground gets
    // the drive back (and this tape served) when the job releases it. A
    // scrub pass yields at its next segment boundary.
    return;
  }
  if (fault_ != nullptr && !drive_available(d)) {
    // The holder is down; rescue its cartridge so another drive can take
    // over (no-op if the robot is already on its way). No rescue while the
    // whole library is dark — register_restore retries it.
    const tape::TapeDrive& drive = system_.drive(d);
    if (drive.mounted().valid() &&
        needed_.count(drive.mounted().value()) != 0 &&
        (!outage_active() ||
         system_.library_up(system_.library_of_drive(d)))) {
      recover_cartridge(d);
    }
    return;
  }
  if (detector_active() && drive_quarantined(d) &&
      !quarantine_fallback(system_.library_of_drive(d))) {
    // A flagged drive takes no new chains: hand the demanded cartridge
    // back to its cell so a healthy drive can fetch it. If every live
    // peer is quarantined too, the fallback serves here instead.
    DriveCtx& ctx = ctx_[d.index()];
    if (!ctx.busy && system_.drive(d).idle()) quarantine_unmount(d);
    return;
  }
  if (breaker_skip_drive(d)) {
    // Same eviction for an open drive breaker: a healthy peer exists, so
    // the demanded cartridge goes back to its cell instead of being served
    // through the tripped drive.
    DriveCtx& ctx = ctx_[d.index()];
    if (!ctx.busy && system_.drive(d).idle()) quarantine_unmount(d);
    return;
  }
  tape::TapeDrive& drive = system_.drive(d);
  const TapeId tp = drive.mounted();
  TAPESIM_ASSERT(tp.valid());
  const auto it = needed_.find(tp.value());
  if (it == needed_.end()) {
    next_action(d);
    return;
  }
  auto extents = plan_extent_order(d);
  needed_.erase(it);
  drive_req_[d.index()].used = true;
  ctx_[d.index()].busy = true;
  ServeChain& chain = chain_[d.index()];
  TAPESIM_ASSERT(!chain.active);
  chain.extents = std::move(extents);
  chain.index = 0;
  chain.retries = 0;
  chain.active = true;
  serve_step(d);
}

void RetrievalSimulator::serve_step(DriveId d) {
  ServeChain& chain = chain_[d.index()];
  TAPESIM_ASSERT(chain.active);
  if (expired_) {
    // The request's deadline passed: the chain tail was already accounted
    // as expired by on_deadline(); abandon it and free the drive.
    chain = ServeChain{};
    ctx_[d.index()].busy = false;
    next_action(d);
    return;
  }
  if (hedge_active()) {
    // Cancelled hedge losers left mid-chain are skipped, not served.
    while (chain.index < chain.extents.size() &&
           hedge_tombstoned(chain.extents[chain.index])) {
      ++chain.index;
      chain.retries = 0;
    }
  }
  if (chain.index >= chain.extents.size()) {
    chain = ServeChain{};
    ctx_[d.index()].busy = false;
    if (catalog_.has_replicas()) {
      // A failover may have routed more extents onto this drive's mounted
      // tape while the chain was running; serve them before switching.
      const tape::TapeDrive& drive = system_.drive(d);
      if (!drive.empty() && needed_.count(drive.mounted().value()) != 0) {
        serve_mounted(d);
        return;
      }
    }
    next_action(d);
    return;
  }
  if (fault_ != nullptr && !fault_->drive_online(d, engine_.now())) {
    // Failure landed exactly on an activity boundary (or during a retry
    // backoff); requeues the rest of the chain.
    on_drive_failure(d);
    return;
  }
  const catalog::TapeExtent extent = chain.extents[chain.index];
  tape::TapeDrive& drive = system_.drive(d);
  const Seconds locate = drive.start_locate(extent.offset);
  schedule_activity(d, locate, [this, d, extent, locate]() {
    system_.drive(d).finish_locate();
    drive_req_[d.index()].seek += locate;
    if (expired_) {
      serve_step(d);  // unwinds via the expired guard
      return;
    }
    // A finite disk array may make the drive wait for a streaming slot;
    // that wait lands in the switch-side component of the decomposition.
    disk_streams_.acquire([this, d, extent]() {
      ctx_[d.index()].disk_held = true;
      if (expired_) {
        disk_streams_.release();
        ctx_[d.index()].disk_held = false;
        serve_step(d);
        return;
      }
      if (fault_ != nullptr && !fault_->drive_online(d, engine_.now())) {
        disk_streams_.release();
        ctx_[d.index()].disk_held = false;
        on_drive_failure(d);
        return;
      }
      begin_transfer(d, extent);
    });
  });
}

void RetrievalSimulator::begin_transfer(DriveId d,
                                        catalog::TapeExtent extent) {
  if (hedge_active() && hedge_tombstoned(extent)) {
    // The loser tombstone landed between the locate and the disk slot;
    // the winner already settled this object.
    disk_streams_.release();
    ctx_[d.index()].disk_held = false;
    ServeChain& chain = chain_[d.index()];
    ++chain.index;
    chain.retries = 0;
    serve_step(d);
    return;
  }
  tape::TapeDrive& drive = system_.drive(d);
  // Fail-slow episodes stretch the stream: the effective rate is sampled
  // once at transfer start (1.0, with no timeline walk, when fail-slow
  // injection is off).
  const double mult =
      fault_ != nullptr
          ? fault_->drive_rate_multiplier(d, engine_.now())
          : 1.0;
  const Seconds xfer = drive.start_transfer(extent.size, mult);
  ctx_[d.index()].activity_start = engine_.now();
  auto complete = [this, d, extent, xfer]() {
    ctx_[d.index()].transfer_event = 0;
    disk_streams_.release();
    ctx_[d.index()].disk_held = false;
    system_.drive(d).finish_transfer();
    drive_req_[d.index()].transfer += xfer;
    note_transfer_rate(d, extent.size, xfer);
    // A transfer that outlived the deadline delivered bytes nobody waits
    // for: the extent was accounted as expired when the deadline fired, so
    // it must not be credited again.
    if (!expired_) {
      if (hedge_active() && hedge_tombstoned(extent)) {
        // A cancelled loser that outran its cancellation: the bytes it
        // streamed were pure speculation overhead.
        failslow_stats_.hedge_bytes_wasted += extent.size.count();
        if (config_.tracer != nullptr) {
          config_.tracer->registry().counter("failslow.hedge_wasted_bytes")
              .inc(extent.size.count());
        }
      } else {
        if (hedge_active()) served_bytes_ += extent.size.count();
        extent_done(d);
        settle_hedge_winner(d, extent);
      }
    }
    ServeChain& chain = chain_[d.index()];
    ++chain.index;
    chain.retries = 0;
    serve_step(d);
  };
  if (governor_.enabled() && chain_[d.index()].retries == 0) {
    // First attempt at this extent: first-attempt demand earns the retry
    // budget its tokens.
    governor_.note_demand(GovernorClass::kRetry);
  }
  if (fault_ == nullptr) {
    engine_.schedule_in(xfer, std::move(complete));
    return;
  }
  const TapeId tp = drive.mounted();
  std::optional<Seconds> media_at;
  bool latent = false;
  if (const auto frac = fault_->media_error(
          tp, extent.size, system_.cartridge_health(tp), engine_.now())) {
    media_at = xfer * *frac;
  }
  if (fault_->undetected_damage(tp, engine_.now()) > 0) {
    // Silent decay damage has accrued since the cartridge was last
    // verified; this read runs into it. The earlier of the two media
    // events wins (the position draw only happens with decay enabled, so
    // decay-off runs consume the same random stream as before).
    const Seconds latent_at = xfer * fault_->latent_hit_position(tp);
    if (!media_at.has_value() || latent_at < *media_at) {
      media_at = latent_at;
      latent = true;
    }
  }
  const Seconds horizon = media_at.has_value() ? *media_at : xfer;
  if (const auto fail_after =
          fault_->failure_within(d, engine_.now(), horizon)) {
    // Hardware failure strikes before the read error (if any) would.
    const sim::EventId done = engine_.schedule_in(xfer, std::move(complete));
    engine_.schedule_in(*fail_after, [this, d, done]() {
      engine_.cancel(done);
      on_drive_failure(d);
    });
    return;
  }
  if (media_at.has_value()) {
    engine_.schedule_in(*media_at,
                        [this, d, latent]() { on_media_failure(d, latent); });
    return;
  }
  // Clean stream: no fault or media interrupt is booked, so the pending
  // completion is safely cancellable — the hedge machinery may retract
  // it if this transfer turns out to be a losing leg.
  ctx_[d.index()].transfer_event =
      engine_.schedule_in(xfer, std::move(complete));
  maybe_arm_hedge(d, extent, xfer);
}

void RetrievalSimulator::on_media_failure(DriveId d, bool latent) {
  TAPESIM_ASSERT(fault_ != nullptr);
  DriveCtx& ctx = ctx_[d.index()];
  ServeChain& chain = chain_[d.index()];
  tape::TapeDrive& drive = system_.drive(d);
  const TapeId tp = drive.mounted();
  drive.abort_transfer(engine_.now() - ctx.activity_start);
  disk_streams_.release();
  ctx.disk_held = false;

  // A latent hit surfaces every decay event accrued on the cartridge (the
  // read found the damage); an active error is a fresh single event.
  tape::CartridgeHealth health;
  if (latent) {
    ++latent_hits_this_request_;
    health = fault_->observe_damage(tp, engine_.now());
  } else {
    health = fault_->record_media_error(tp);
  }
  if (health != system_.cartridge_health(tp)) {
    system_.set_cartridge_health(tp, health);
    on_cartridge_health_change(tp, health);
  }
  if (config_.tracer != nullptr) {
    config_.tracer->marker(obs::Track::kDrive, d.value(),
                           (latent ? "latent damage hit on tape "
                                   : "media error on tape ") +
                               std::to_string(tp.value()));
  }
  if (governor_.enabled()) {
    governor_.note_outcome(
        BreakerScope::kLibrary,
        static_cast<std::uint32_t>(system_.library_of_drive(d).index()), false,
        engine_.now());
  }
  maybe_evacuate(tp);
  if (expired_) {
    // No one is waiting for this chain anymore; skip the retry ladder.
    chain = ServeChain{};
    ctx.busy = false;
    next_action(d);
    return;
  }
  if (health == tape::CartridgeHealth::kLost) {
    // The cartridge is gone: everything still expected from it — the
    // interrupted extent, the chain tail, any requeued leftovers — fails
    // over to surviving replicas, or completes as unavailable.
    const std::vector<catalog::TapeExtent> tail(
        chain.extents.begin() + static_cast<std::ptrdiff_t>(chain.index),
        chain.extents.end());
    chain = ServeChain{};
    ctx.busy = false;
    for (const catalog::TapeExtent& e : tail) fail_extent(tp, e);
    complete_tape_unavailable(tp);
    next_action(d);
    return;
  }
  if (hedge_active() && hedge_tombstoned(chain.extents[chain.index])) {
    // The interrupted stream was a cancelled hedge loser; nobody wants a
    // retry. Its partial bytes are speculation overhead.
    ++chain.index;
    chain.retries = 0;
    serve_step(d);
    return;
  }
  if (chain.retries >= config_.faults.media_retry.max_retries) {
    // This extent keeps failing on this copy; fail it over (or complete it
    // as unavailable) and keep serving the rest of the chain.
    const catalog::TapeExtent failed = chain.extents[chain.index];
    ++chain.index;
    chain.retries = 0;
    fail_extent(tp, failed);
    serve_step(d);
    return;
  }
  const Seconds delay = config_.faults.media_retry.delay(chain.retries);
  // A retry landing past the request's deadline is wasted motion; so is one
  // the governor refuses to fund. Either way the extent takes the fail-fast
  // ladder (failover or unavailable) instead of burning drive time.
  const bool past_slo =
      deadline_abs_.count() < metrics::RequestOutcome::kNoDeadline &&
      (engine_.now() + delay).count() >= deadline_abs_.count();
  const bool admitted =
      !governor_.enabled() ||
      governor_.admit(
          GovernorClass::kRetry, BreakerScope::kLibrary,
          static_cast<std::uint32_t>(system_.library_of_drive(d).index()),
          engine_.now());
  if (past_slo || !admitted) {
    const catalog::TapeExtent failed = chain.extents[chain.index];
    ++chain.index;
    chain.retries = 0;
    fail_extent(tp, failed);
    serve_step(d);
    return;
  }
  ++chain.retries;
  ++media_retries_this_request_;
  engine_.schedule_in(delay, [this, d]() { serve_step(d); });
}

void RetrievalSimulator::extent_done(DriveId d) {
  TAPESIM_ASSERT(remaining_extents_ > 0);
  --remaining_extents_;
  if (remaining_extents_ == 0) cancel_deadline_event();
  if (governor_.enabled()) {
    // A completed extent is first-attempt demand for the amplification
    // classes it could spawn, and a success observation for its library.
    governor_.note_demand(GovernorClass::kFailover);
    governor_.note_demand(GovernorClass::kHedge);
    governor_.note_outcome(
        BreakerScope::kLibrary,
        static_cast<std::uint32_t>(system_.library_of_drive(d).index()), true,
        engine_.now());
  }
  if (catalog_.has_replicas()) {
    const ServeChain& chain = chain_[d.index()];
    const catalog::TapeExtent& e = chain.extents[chain.index];
    const catalog::ObjectRecord* rec = catalog_.lookup(e.object);
    if (rec->tape != system_.drive(d).mounted()) {
      ++served_from_replica_this_request_;
    }
  }
  drive_req_[d.index()].finish = engine_.now();
  drive_req_[d.index()].seek_done = drive_req_[d.index()].seek;
  drive_req_[d.index()].transfer_done = drive_req_[d.index()].transfer;
  if (engine_.now() > last_transfer_end_ ||
      (engine_.now() == last_transfer_end_ && !last_finisher_.valid())) {
    last_transfer_end_ = engine_.now();
    last_finisher_ = d;
  }
  if (outage_active()) {
    // First byte served from a restored library closes its RTO clock.
    OutageWatch& w = outage_watch_[system_.library_of_drive(d).index()];
    if (w.awaiting_first_byte) {
      w.awaiting_first_byte = false;
      const Seconds ttfb = engine_.now() - w.restored_at;
      outage_stats_.ttfb.add(ttfb.count());
      if (config_.tracer != nullptr) {
        const auto layout = obs::BucketLayout::exponential(0.1, 1e5, 1.3);
        config_.tracer->registry().histogram("outage.ttfb_s", layout)
            .record(ttfb.count());
      }
    }
  }
}

void RetrievalSimulator::next_action(DriveId d) {
  if (!switch_eligible(d)) return;
  if (fault_ != nullptr) {
    if (ctx_[d.index()].busy) return;
    if (!drive_available(d)) return;
  }
  const LibraryId lib = system_.library_of_drive(d);
  if (detector_active() && drive_quarantined(d) &&
      !quarantine_fallback(lib)) {
    // Quarantined drives take no new work (foreground or background);
    // an idle drive still holding a cartridge hands it back to its cell
    // so the rest of the fleet can reach it.
    tape::TapeDrive& drive = system_.drive(d);
    if (!drive.empty() && drive.idle()) quarantine_unmount(d);
    return;
  }
  if (breaker_skip_drive(d)) {
    // An open drive breaker sits out new chains while a healthy peer
    // exists. A held cartridge that still carries demand is handed back to
    // its cell (same choreography as quarantine) so the fleet can reach it.
    tape::TapeDrive& drive = system_.drive(d);
    if (!drive.empty() && drive.idle() &&
        needed_.count(drive.mounted().value()) != 0) {
      quarantine_unmount(d);
    }
    return;
  }
  auto& queue = lib_queue_[lib.index()];
  if (queue.empty()) {
    // No foreground demand for this library: the drive may lend itself to
    // background repair, then scrubbing (each a no-op unless active and
    // with work; maybe_start_scrub re-checks busy after a repair start).
    maybe_start_repair(d);
    maybe_start_scrub(d);
    return;
  }
  const TapeId target = queue.front();
  queue.pop_front();
  if (config_.tracer != nullptr) {
    // The tape has been demanded since the request started; a drive just
    // picked it up, ending its time in the library queue.
    config_.tracer->record(obs::Span{
        obs::Track::kRequest, config_.tracer->current_request().value(),
        obs::Phase::kQueueWait, t0_, engine_.now(),
        config_.tracer->current_request(), target, {}});
  }
  begin_switch(d, target);
}

void RetrievalSimulator::begin_switch(DriveId d, TapeId target) {
  tape::TapeDrive& drive = system_.drive(d);
  drive_req_[d.index()].used = true;
  DriveCtx& ctx = ctx_[d.index()];
  ctx.busy = true;
  ctx.switch_target = target;
  ctx.mount_retries = 0;
  tape::TapeLibrary& lib = system_.library(system_.library_of_drive(d));

  // The robot must be at the drive for the whole cartridge handoff: it
  // receives the ejecting cartridge, returns it to its cell, fetches the
  // new one, and inserts it. Only then does the drive-side load/thread run
  // (robot already free). Rewind needs no robot and happens beforehand.
  auto exchange = [this, d, &lib, target](bool had_tape) {
    if (expired_) {
      // Deadline passed during the rewind: stop before asking for the
      // robot. The cartridge stays mounted (rewound) — a legal idle state.
      ctx_[d.index()].switch_target = TapeId{};
      ctx_[d.index()].busy = false;
      return;
    }
    const Seconds asked_at = engine_.now();
    const sim::Resource::Ticket ticket =
        lib.robot().acquire([this, d, &lib, target, had_tape, asked_at]() {
      ctx_[d.index()].robot_ticket = sim::Resource::kInvalidTicket;
      ctx_[d.index()].robot_held = true;
      robot_wait_this_request_ += engine_.now() - asked_at;
      if (config_.tracer != nullptr && engine_.now() > asked_at) {
        config_.tracer->record(obs::Span{
            obs::Track::kDrive, d.value(), obs::Phase::kRobotWait, asked_at,
            engine_.now(), config_.tracer->current_request(), target, {}});
      }
      if (expired_) {
        // Granted after the deadline (cancel() came too late or lost the
        // race): give the arm straight back and stand down.
        lib.robot().release();
        ctx_[d.index()].robot_held = false;
        ctx_[d.index()].switch_target = TapeId{};
        ctx_[d.index()].busy = false;
        return;
      }
      if (fault_ != nullptr && !fault_->drive_online(d, engine_.now())) {
        // The drive died while queued for the robot; hand the arm on.
        on_drive_failure(d);
        return;
      }
      auto do_moves = [this, d, &lib, target, had_tape]() {
        const Seconds move = robot_move_delay(
            lib, had_tape ? lib.robot_exchange_time() : lib.robot_move_time());
        engine_.schedule_in(move, [this, d, &lib, target]() {
          if (fault_ != nullptr && !fault_->drive_online(d, engine_.now())) {
            // Died while the robot was carrying cartridges; the target
            // goes back to its cell via the failure path.
            on_drive_failure(d);
            return;
          }
          if (!config_.robot_holds_load) {
            lib.robot().release();
            ctx_[d.index()].robot_held = false;
          }
          attempt_load(d, target);
        });
      };
      if (!had_tape) {
        do_moves();
        return;
      }
      // Eject under robot supervision, then carry.
      tape::TapeDrive& dr = system_.drive(d);
      const Seconds unload = dr.start_unload();
      schedule_activity(d, unload, [this, d, do_moves]() {
        const TapeId old = system_.drive(d).finish_unload();
        system_.note_unmounted(old);
        // A failover may have demanded the evicted tape after this switch
        // committed; hand it back to the queue now that it is out of the
        // drive (no-op unless it is needed and unclaimed).
        requeue_if_needed(old);
        do_moves();
      });
    });
    // Remember the waiter so a deadline can withdraw it; the grant (which
    // fires as a separate event, never inside acquire) clears it again.
    ctx_[d.index()].robot_ticket = ticket;
  };

  if (drive.empty()) {
    exchange(false);
    return;
  }

  const Seconds rewind = drive.start_rewind();
  schedule_activity(d, rewind, [this, d, exchange]() {
    system_.drive(d).finish_rewind();
    exchange(true);
  });
}

void RetrievalSimulator::attempt_load(DriveId d, TapeId target) {
  tape::TapeDrive& drive = system_.drive(d);
  if (governor_.enabled() && ctx_[d.index()].mount_retries == 0) {
    // First attempt of this mount chain: useful work that earns the retry
    // budget its tokens.
    governor_.note_demand(GovernorClass::kRetry);
  }
  const Seconds load = drive.start_load(target);
  schedule_activity(d, load, [this, d, target]() {
    if (fault_ != nullptr && fault_->mount_attempt_fails(d, engine_.now())) {
      if (governor_.enabled()) {
        governor_.note_outcome(BreakerScope::kDrive,
                               static_cast<std::uint32_t>(d.index()), false,
                               engine_.now());
      }
      on_mount_failure(d, target);
      return;
    }
    if (governor_.enabled()) {
      governor_.note_outcome(BreakerScope::kDrive,
                             static_cast<std::uint32_t>(d.index()), true,
                             engine_.now());
    }
    finish_mount(d, target);
  });
}

void RetrievalSimulator::finish_mount(DriveId d, TapeId target) {
  tape::TapeLibrary& lib = system_.library(system_.library_of_drive(d));
  if (config_.robot_holds_load) {
    lib.robot().release();
    ctx_[d.index()].robot_held = false;
  }
  system_.drive(d).finish_load();
  system_.note_mounted(target, d);
  ++switches_this_request_;
  ++total_switches_;
  ctx_[d.index()].switch_target = TapeId{};
  ctx_[d.index()].mount_retries = 0;
  maybe_evacuate(target);  // mount-cycle wear may tip the health score
  serve_mounted(d);
}

void RetrievalSimulator::on_mount_failure(DriveId d, TapeId target) {
  TAPESIM_ASSERT(fault_ != nullptr);
  DriveCtx& ctx = ctx_[d.index()];
  tape::TapeDrive& drive = system_.drive(d);
  drive.fail_load();  // the load window was spent; cartridge never threaded
  const std::uint32_t attempts = ++mount_attempts_[target.value()];
  if (config_.tracer != nullptr) {
    config_.tracer->marker(obs::Track::kDrive, d.value(),
                           "mount failure on tape " +
                               std::to_string(target.value()));
  }
  const bool tape_exhausted =
      attempts >= config_.faults.max_mount_attempts_per_tape;
  if (!expired_ && !tape_exhausted &&
      ctx.mount_retries < config_.faults.mount_retry.max_retries) {
    const Seconds delay = config_.faults.mount_retry.delay(ctx.mount_retries);
    // A retry that can only land past the request's deadline is wasted
    // motion: the deadline event would expire the request before the retry
    // fires. Short-circuit straight into the give-up ladder.
    const bool past_slo =
        deadline_abs_.count() < metrics::RequestOutcome::kNoDeadline &&
        (engine_.now() + delay).count() >= deadline_abs_.count();
    const bool admitted =
        !governor_.enabled() ||
        governor_.admit(GovernorClass::kRetry, BreakerScope::kDrive,
                        static_cast<std::uint32_t>(d.index()), engine_.now());
    if (!past_slo && admitted) {
      ++ctx.mount_retries;
      ++mount_retries_this_request_;
      engine_.schedule_in(delay, [this, d, target]() {
        if (!fault_->drive_online(d, engine_.now())) {
          on_drive_failure(d);  // also requeues the target
          return;
        }
        attempt_load(d, target);
      });
      return;
    }
  }

  // This drive gives up on the cartridge: the robot returns it to its
  // cell, then either another drive gets a shot (failover) or — if the
  // cartridge has burned through its attempt budget everywhere — its data
  // completes as unavailable.
  ctx.switch_target = TapeId{};
  ctx.mount_retries = 0;
  const LibraryId lib_id = system_.library_of_drive(d);
  tape::TapeLibrary& lib = system_.library(lib_id);
  auto return_done = [this, d, target, tape_exhausted, lib_id, &lib]() {
    lib.robot().release();
    ctx_[d.index()].robot_held = false;
    ctx_[d.index()].busy = false;
    if (expired_) {
      // The request gave up on this cartridge at its deadline; it goes
      // back to its cell and stays there.
    } else if (tape_exhausted) {
      complete_tape_unavailable(target);
    } else {
      lib_queue_[system_.library_of_tape(target).index()].push_front(target);
    }
    ensure_progress(lib_id);
  };
  auto do_return = [this, &lib, return_done]() {
    const Seconds move = robot_move_delay(lib, lib.robot_move_time());
    engine_.schedule_in(move, return_done);
  };
  if (ctx.robot_held) {
    do_return();
  } else {
    lib.robot().acquire([this, d, do_return]() {
      ctx_[d.index()].robot_held = true;
      do_return();
    });
  }
}

// --- gray-failure mitigation --------------------------------------------

bool RetrievalSimulator::hedge_tombstoned(
    const catalog::TapeExtent& extent) const {
  return !hedge_cancelled_.empty() &&
         hedge_cancelled_.count(extent.object.value()) != 0;
}

void RetrievalSimulator::note_transfer_rate(DriveId d, Bytes amount,
                                            Seconds xfer) {
  if (xfer.count() <= 0.0 || amount.count() == 0) return;
  if (hedge_active()) {
    const Seconds native =
        duration_for(amount, system_.drive(d).spec().transfer_rate);
    const double ratio = xfer.count() / native.count();
    if (hedge_ratio_.size() < config_.hedge.history) {
      hedge_ratio_.push_back(ratio);
    } else {
      hedge_ratio_[hedge_ratio_next_] = ratio;
      hedge_ratio_next_ = (hedge_ratio_next_ + 1) % config_.hedge.history;
    }
  }
  if (detector_active()) {
    DetectorState& st = detector_[d.index()];
    const double rate = static_cast<double>(amount.count()) / xfer.count();
    st.tput_ewma = st.samples == 0
                       ? rate
                       : config_.detector.ewma_alpha * rate +
                             (1.0 - config_.detector.ewma_alpha) * st.tput_ewma;
    ++st.samples;
    evaluate_detector(d);
  }
}

void RetrievalSimulator::evaluate_detector(DriveId d) {
  DetectorState& st = detector_[d.index()];
  if (st.quarantined) return;
  if (st.samples < config_.detector.min_samples) return;
  std::vector<double> peers;
  peers.reserve(detector_.size());
  for (std::size_t i = 0; i < detector_.size(); ++i) {
    if (i == d.index()) continue;
    if (detector_[i].samples < config_.detector.min_samples) continue;
    peers.push_back(detector_[i].tput_ewma);
  }
  if (peers.empty()) return;
  std::sort(peers.begin(), peers.end());
  const double median = peers[peers.size() / 2];
  if (st.tput_ewma < config_.detector.fraction * median) {
    if (!(st.below_since < kNever)) st.below_since = engine_.now();
    if (!st.flagged &&
        engine_.now() - st.below_since >= config_.detector.window) {
      flag_drive(d);
    }
    return;
  }
  st.below_since = kNever;
  st.flagged = false;
}

void RetrievalSimulator::flag_drive(DriveId d) {
  DetectorState& st = detector_[d.index()];
  st.flagged = true;
  st.flagged_at = engine_.now();
  const bool truly_slow = fault_->drive_is_slow(d, engine_.now());
  if (truly_slow) {
    ++failslow_stats_.detected;
    const Seconds onset = fault_->drive_slow_since(d, engine_.now());
    const double lag = (engine_.now() - onset).count();
    failslow_stats_.detection_lag.add(lag);
    if (config_.tracer != nullptr) {
      config_.tracer->registry().counter("failslow.detected").inc();
      const auto layout = obs::BucketLayout::exponential(0.1, 1e5, 1.3);
      config_.tracer->registry()
          .histogram("failslow.detection_lag_s", layout)
          .record(lag);
      config_.tracer->marker(obs::Track::kQuarantine, d.value(),
                             "gray failure detected");
    }
  } else {
    ++failslow_stats_.false_positives;
    if (config_.tracer != nullptr) {
      config_.tracer->registry().counter("failslow.false_positives").inc();
      config_.tracer->marker(obs::Track::kQuarantine, d.value(),
                             "gray-failure false positive");
    }
  }
  if (!config_.detector.quarantine) return;
  st.quarantined = true;
  // The release target is the episode's end when the injector confirms one
  // (plus probation); a false positive sits out probation alone.
  const Seconds base =
      truly_slow ? fault_->drive_slow_until(d, engine_.now()) : engine_.now();
  st.release_at = base + config_.detector.probation;
  ++failslow_stats_.quarantines;
  if (config_.tracer != nullptr) {
    config_.tracer->registry().counter("failslow.quarantines").inc();
  }
}

bool RetrievalSimulator::drive_quarantined(DriveId d) {
  DetectorState& st = detector_[d.index()];
  if (!st.quarantined) return false;
  if (engine_.now() < st.release_at) return true;
  if (fault_->drive_is_slow(d, engine_.now())) {
    // Still inside a slow episode at the planned exit (a fresh one, or the
    // flagged one ran long): extend rather than re-admit a sick drive.
    st.release_at =
        fault_->drive_slow_until(d, engine_.now()) + config_.detector.probation;
    return true;
  }
  if (config_.tracer != nullptr) {
    config_.tracer->record(obs::Span{
        obs::Track::kQuarantine, d.value(), obs::Phase::kQuarantine,
        st.flagged_at, engine_.now(), config_.tracer->current_request(),
        TapeId{}, "released"});
  }
  st.quarantined = false;
  st.flagged = false;
  st.below_since = kNever;
  return false;
}

bool RetrievalSimulator::breaker_skip_drive(DriveId d) {
  if (!governor_.enabled()) return false;
  const Seconds now = engine_.now();
  if (!governor_.breaker_blocked(BreakerScope::kDrive,
                                 static_cast<std::uint32_t>(d.index()), now)) {
    return false;
  }
  // Step aside only when a live peer with a closed (or probing) breaker can
  // pick up the work; if the whole library is tripped, serving through the
  // open breaker beats wedging the queue.
  const LibraryId lib = system_.library_of_drive(d);
  const std::uint32_t per_lib = plan_->spec().library.drives_per_library;
  for (std::uint32_t i = 0; i < per_lib; ++i) {
    const DriveId peer{lib.value() * per_lib + i};
    if (!switch_eligible(peer)) continue;
    if (system_.drive(peer).failed()) continue;
    if (!governor_.breaker_blocked(BreakerScope::kDrive,
                                   static_cast<std::uint32_t>(peer.index()),
                                   now)) {
      return true;
    }
  }
  return false;
}

std::vector<LibraryId> RetrievalSimulator::breaker_down_libraries() {
  std::vector<LibraryId> blocked;
  if (!governor_.enabled() || governor_.breakers_open() == 0) return blocked;
  const Seconds now = engine_.now();
  for (std::uint32_t l = 0; l < plan_->spec().num_libraries; ++l) {
    if (governor_.breaker_blocked(BreakerScope::kLibrary, l, now) ||
        governor_.breaker_blocked(BreakerScope::kRobot, l, now)) {
      blocked.push_back(LibraryId{l});
    }
  }
  return blocked;
}

bool RetrievalSimulator::quarantine_fallback(LibraryId lib) {
  const std::uint32_t per_lib = plan_->spec().library.drives_per_library;
  for (std::uint32_t i = 0; i < per_lib; ++i) {
    const DriveId peer{lib.value() * per_lib + i};
    if (!switch_eligible(peer)) continue;
    if (system_.drive(peer).failed()) continue;
    // Raw state (not drive_quarantined) avoids release side effects while
    // scanning; a peer past its release time counts as healthy.
    const DetectorState& st = detector_[peer.index()];
    if (!st.quarantined || engine_.now() >= st.release_at) return false;
  }
  return true;
}

void RetrievalSimulator::quarantine_unmount(DriveId d) {
  tape::TapeDrive& drive = system_.drive(d);
  TAPESIM_ASSERT(!drive.empty() && drive.idle());
  DriveCtx& ctx = ctx_[d.index()];
  TAPESIM_ASSERT(!ctx.busy);
  ctx.busy = true;
  const LibraryId lib_id = system_.library_of_drive(d);
  tape::TapeLibrary& lib = system_.library(lib_id);
  const Seconds rewind = drive.start_rewind();
  schedule_activity(d, rewind, [this, d, lib_id, &lib]() {
    system_.drive(d).finish_rewind();
    const sim::Resource::Ticket ticket =
        lib.robot().acquire([this, d, lib_id, &lib]() {
      ctx_[d.index()].robot_ticket = sim::Resource::kInvalidTicket;
      ctx_[d.index()].robot_held = true;
      if (fault_ != nullptr && !fault_->drive_online(d, engine_.now())) {
        // Died while queued for the robot; the failure path (which also
        // releases the arm) recovers the cartridge.
        on_drive_failure(d);
        return;
      }
      tape::TapeDrive& dr = system_.drive(d);
      const Seconds unload = dr.start_unload();
      schedule_activity(d, unload, [this, d, lib_id, &lib]() {
        const TapeId old = system_.drive(d).finish_unload();
        system_.note_unmounted(old);
        const Seconds move = robot_move_delay(lib, lib.robot_move_time());
        engine_.schedule_in(move, [this, d, lib_id, &lib, old]() {
          lib.robot().release();
          ctx_[d.index()].robot_held = false;
          ctx_[d.index()].busy = false;
          // The evicted cartridge may carry demand (that is usually why
          // the quarantine guard fired); hand it to a healthy drive.
          requeue_if_needed(old);
          ensure_progress(lib_id);
        });
      });
    });
    ctx_[d.index()].robot_ticket = ticket;
  });
}

double RetrievalSimulator::hedge_threshold_ratio() const {
  std::vector<double> sorted(hedge_ratio_);
  std::sort(sorted.begin(), sorted.end());
  const double rank = (config_.hedge.percentile / 100.0) *
                      static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

void RetrievalSimulator::maybe_arm_hedge(DriveId d,
                                         const catalog::TapeExtent& extent,
                                         Seconds xfer) {
  if (!hedge_active() || expired_) return;
  if (hedge_ratio_.size() < config_.hedge.min_history) return;
  const std::uint32_t obj = extent.object.value();
  if (hedges_.count(obj) != 0 || hedge_cancelled_.count(obj) != 0) return;
  const Seconds native =
      duration_for(extent.size, system_.drive(d).spec().transfer_rate);
  const double threshold =
      std::max(hedge_threshold_ratio(), config_.hedge.min_overrun);
  const Seconds trigger{native.count() * threshold};
  if (xfer <= trigger) return;
  // The stream is already known to overrun the trigger: the alarm fires at
  // the moment a fast drive would have finished, and launches the race if
  // the transfer is still the chain's live head then.
  const Seconds eta = engine_.now() + xfer;
  engine_.schedule_in(trigger, [this, d, extent, eta]() {
    maybe_launch_hedge(d, extent, eta);
  });
}

void RetrievalSimulator::maybe_launch_hedge(DriveId d,
                                            catalog::TapeExtent extent,
                                            Seconds eta) {
  if (!hedge_active() || expired_) return;
  const std::uint32_t obj = extent.object.value();
  if (hedges_.count(obj) != 0 || hedge_cancelled_.count(obj) != 0) return;
  const ServeChain& chain = chain_[d.index()];
  if (!chain.active || chain.index >= chain.extents.size()) return;
  if (chain.extents[chain.index].object != extent.object) return;
  tape::TapeDrive& drive = system_.drive(d);
  if (drive.state() != tape::DriveState::kTransferring) return;
  // Budget gate: speculation may not burn more than the configured
  // fraction of the bandwidth spent on foreground bytes so far. Under
  // metastable shedding the governor tightens that fraction further.
  if (static_cast<double>(hedge_bytes_ + extent.size.count()) >
      config_.hedge.budget_fraction * governor_.budget_clamp() *
          static_cast<double>(served_bytes_)) {
    return;
  }
  const TapeId primary = drive.mounted();
  std::vector<TapeId> exclude;
  if (const auto it = tried_.find(obj); it != tried_.end()) {
    exclude = it->second;
  }
  if (std::find(exclude.begin(), exclude.end(), primary) == exclude.end()) {
    exclude.push_back(primary);
  }
  const catalog::ObjectRecord* alt = nullptr;
  std::vector<LibraryId> down;
  if (outage_active()) down = down_libraries();
  if (governor_.enabled()) {
    // Libraries behind an open breaker are as good as down for speculation.
    for (const LibraryId blib : breaker_down_libraries()) {
      if (std::find(down.begin(), down.end(), blib) == down.end()) {
        down.push_back(blib);
      }
    }
  }
  if (outage_active() || !down.empty()) {
    alt = catalog_.best_replica(extent.object, exclude, down);
  } else {
    alt = catalog_.best_replica(extent.object, exclude);
  }
  if (alt == nullptr) return;
  // Only cross-library hedges: a same-library replica would contend for
  // the very robot and drives the slow leg is clogging.
  if (system_.library_of_tape(alt->tape) == system_.library_of_drive(d)) {
    return;
  }
  if (governor_.enabled() &&
      !governor_.admit(GovernorClass::kHedge, BreakerScope::kLibrary,
                       static_cast<std::uint32_t>(
                           system_.library_of_tape(alt->tape).index()),
                       engine_.now())) {
    return;
  }
  Hedge h;
  h.primary = primary;
  h.alt = alt->tape;
  h.primary_eta = eta;
  h.issued_at = engine_.now();
  hedges_.emplace(obj, h);
  hedge_bytes_ += extent.size.count();
  ++failslow_stats_.hedges_issued;
  if (config_.tracer != nullptr) {
    config_.tracer->registry().counter("failslow.hedges_issued").inc();
    config_.tracer->marker(
        obs::Track::kHedge, config_.tracer->current_request().value(),
        "hedge issued for object " + std::to_string(obj));
  }
  route_extent(*alt);
}

void RetrievalSimulator::settle_hedge_winner(
    DriveId d, const catalog::TapeExtent& extent) {
  if (!hedge_active()) return;
  const auto it = hedges_.find(extent.object.value());
  if (it == hedges_.end()) return;
  const Hedge h = it->second;
  hedges_.erase(it);
  const TapeId on = system_.drive(d).mounted();
  const bool won = on == h.alt;
  if (won) {
    ++failslow_stats_.hedges_won;
    if (!h.primary_dead) {
      const double margin = (h.primary_eta - engine_.now()).count();
      failslow_stats_.hedge_win_margin.add(margin);
      if (config_.tracer != nullptr) {
        const auto layout = obs::BucketLayout::exponential(0.1, 1e5, 1.3);
        config_.tracer->registry()
            .histogram("failslow.hedge_win_margin_s", layout)
            .record(margin);
      }
    }
  } else {
    ++failslow_stats_.hedges_lost;
  }
  record_hedge_settled(won ? "hedge won" : "hedge lost", h.issued_at);
  hedge_cancelled_.insert(extent.object.value());
  if (won && h.primary_dead) return;  // the loser already died; no cancel
  cancel_hedge_loser(extent.object, won ? h.primary : h.alt);
}

void RetrievalSimulator::cancel_hedge_loser(ObjectId obj, TapeId loser) {
  // Withdraw queued work first: the loser's tape may still be waiting for
  // a drive, or a switch may be en route to fetch it.
  if (const auto it = needed_.find(loser.value()); it != needed_.end()) {
    auto& vec = it->second;
    vec.erase(std::remove_if(vec.begin(), vec.end(),
                             [obj](const catalog::TapeExtent& e) {
                               return e.object == obj;
                             }),
              vec.end());
    if (vec.empty()) {
      needed_.erase(it);
      const LibraryId lib_id = system_.library_of_tape(loser);
      auto& queue = lib_queue_[lib_id.index()];
      const auto q = std::find(queue.begin(), queue.end(), loser);
      if (q != queue.end()) queue.erase(q);
      for (DriveCtx& c : ctx_) {
        if (c.switch_target != loser) continue;
        if (c.robot_ticket == sim::Resource::kInvalidTicket) continue;
        // Still in the robot's queue: withdraw the switch outright. Once
        // the grant fired the exchange completes and the mounted cartridge
        // simply finds no demand.
        if (system_.library(lib_id).robot().cancel(c.robot_ticket)) {
          c.robot_ticket = sim::Resource::kInvalidTicket;
          c.switch_target = TapeId{};
          c.busy = false;
        }
      }
    }
  }
  // An active chain on the loser: splice out the object's future extents;
  // a clean in-flight transfer of it is retracted mid-stream through the
  // engine's cancel machinery.
  for (std::uint32_t i = 0; i < ctx_.size(); ++i) {
    const DriveId d{i};
    tape::TapeDrive& drive = system_.drive(d);
    ServeChain& chain = chain_[i];
    if (!chain.active || drive.empty() || drive.mounted() != loser) continue;
    for (std::size_t k = chain.extents.size(); k-- > chain.index + 1;) {
      if (chain.extents[k].object == obj) {
        chain.extents.erase(chain.extents.begin() +
                            static_cast<std::ptrdiff_t>(k));
      }
    }
    if (chain.index < chain.extents.size() &&
        chain.extents[chain.index].object == obj &&
        drive.state() == tape::DriveState::kTransferring &&
        ctx_[i].transfer_event != 0) {
      engine_.cancel(ctx_[i].transfer_event);
      ctx_[i].transfer_event = 0;
      const Bytes before = drive.head();
      drive.abort_transfer(engine_.now() - ctx_[i].activity_start);
      const std::uint64_t wasted =
          Bytes::distance(before, drive.head()).count();
      failslow_stats_.hedge_bytes_wasted += wasted;
      if (config_.tracer != nullptr) {
        config_.tracer->registry()
            .counter("failslow.hedge_wasted_bytes")
            .inc(wasted);
      }
      if (ctx_[i].disk_held) {
        disk_streams_.release();
        ctx_[i].disk_held = false;
      }
      ++chain.index;
      chain.retries = 0;
      serve_step(d);
    }
    // Anything else (locating, waiting for a disk slot, retry backoff, or
    // a transfer with a fault interrupt booked) unwinds via the tombstone
    // at its next activity boundary.
  }
}

bool RetrievalSimulator::hedge_absorb_failure(
    TapeId on, const catalog::TapeExtent& extent) {
  if (!hedge_active()) return false;
  const auto it = hedges_.find(extent.object.value());
  if (it == hedges_.end()) return false;
  Hedge& h = it->second;
  if (on == h.alt) {
    const bool primary_dead = h.primary_dead;
    const Seconds issued = h.issued_at;
    hedges_.erase(it);
    ++failslow_stats_.hedges_lost;
    record_hedge_settled(
        primary_dead ? "both hedge legs failed" : "hedge leg failed", issued);
    // With the primary still streaming the object stays covered (no
    // tombstone: the primary's completion must count normally); with both
    // legs dead the caller runs the ordinary failover ladder.
    return !primary_dead;
  }
  if (on == h.primary && !h.primary_dead) {
    // The primary died mid-race: the speculative leg silently becomes the
    // real one and carries the object's accounting from here.
    h.primary_dead = true;
    return true;
  }
  return false;
}

void RetrievalSimulator::record_hedge_settled(const char* verdict,
                                              Seconds issued_at) {
  if (config_.tracer == nullptr) return;
  const bool won = std::string(verdict) == "hedge won";
  config_.tracer->registry()
      .counter(won ? "failslow.hedges_won" : "failslow.hedges_lost")
      .inc();
  config_.tracer->record(obs::Span{
      obs::Track::kHedge, config_.tracer->current_request().value(),
      obs::Phase::kHedge, issued_at, engine_.now(),
      config_.tracer->current_request(), TapeId{}, verdict});
}

// --- replica failover ---------------------------------------------------

void RetrievalSimulator::fail_extent(TapeId on,
                                     const catalog::TapeExtent& extent) {
  // Cancelled hedge losers were settled by the winner; a failing hedged
  // leg hands the object to its racing twin instead of failing over.
  if (hedge_tombstoned(extent) || hedge_absorb_failure(on, extent)) return;
  if (catalog_.has_replicas()) {
    auto& tried = tried_[extent.object.value()];
    if (std::find(tried.begin(), tried.end(), on) == tried.end()) {
      tried.push_back(on);
    }
    // Failover work is governed: a replica behind an open breaker is
    // deprioritised (used only when no healthy copy exists), and the
    // attempt itself must clear the failover budget — over budget, the
    // extent fails fast into the unavailable ladder.
    const std::vector<LibraryId> blocked =
        governor_.enabled() ? breaker_down_libraries()
                            : std::vector<LibraryId>{};
    if (!outage_active()) {
      const catalog::ObjectRecord* alt = nullptr;
      if (!blocked.empty()) {
        alt = catalog_.best_replica(extent.object, tried, blocked);
      }
      if (alt == nullptr) alt = catalog_.best_replica(extent.object, tried);
      if (alt != nullptr) {
        if (governor_.enabled() &&
            !governor_.admit(GovernorClass::kFailover)) {
          extent_unavailable(extent);
          return;
        }
        route_extent(*alt);
        return;
      }
    } else {
      const std::vector<LibraryId> down = down_libraries();
      const catalog::ObjectRecord* alt = nullptr;
      if (!blocked.empty()) {
        std::vector<LibraryId> avoid = down;
        for (const LibraryId blib : blocked) {
          if (std::find(avoid.begin(), avoid.end(), blib) == avoid.end()) {
            avoid.push_back(blib);
          }
        }
        alt = catalog_.best_replica(extent.object, tried, avoid);
      }
      if (alt == nullptr) {
        alt = catalog_.best_replica(extent.object, tried, down);
      }
      if (alt != nullptr) {
        if (governor_.enabled() &&
            !governor_.admit(GovernorClass::kFailover)) {
          extent_unavailable(extent);
          return;
        }
        route_extent(*alt);
        return;
      }
      // Every remaining live copy sits behind a transiently downed library
      // (destroyed libraries' cartridges are Lost in the catalog and were
      // skipped above): park the extent on the best of them and serve it
      // when the library returns. Parking is not governed — it spends no
      // drive time now and is the last road to availability.
      if (const catalog::ObjectRecord* parked =
              catalog_.best_replica(extent.object, tried)) {
        park_extent(*parked);
        return;
      }
    }
  }
  extent_unavailable(extent);
}

void RetrievalSimulator::park_extent(const catalog::ObjectRecord& copy) {
  needed_[copy.tape.value()].push_back(
      catalog::TapeExtent{copy.object, copy.offset, copy.size});
  ++outage_stats_.extents_parked;
  ++extents_parked_this_request_;
  // Arms the restore watch via ensure_progress (no-op if the cartridge is
  // stuck in a downed drive — the parked-work scan covers that case).
  requeue_if_needed(copy.tape);
}

void RetrievalSimulator::route_extent(const catalog::ObjectRecord& alt) {
  const TapeId tp = alt.tape;
  const bool was_needed = needed_.count(tp.value()) != 0;
  needed_[tp.value()].push_back(
      catalog::TapeExtent{alt.object, alt.offset, alt.size});
  if (was_needed) return;  // a drive already owns (or is queued for) it
  if (const auto holder = system_.drive_holding(tp)) {
    const DriveId d = *holder;
    if (system_.drive(d).failed()) {
      recover_cartridge(d);
      return;
    }
    if (!ctx_[d.index()].busy) {
      engine_.schedule_in(Seconds{0.0}, [this, d]() {
        if (ctx_[d.index()].busy) return;
        const tape::TapeDrive& dr = system_.drive(d);
        if (dr.failed() || dr.empty()) return;
        if (needed_.count(dr.mounted().value()) != 0) serve_mounted(d);
      });
    }
    // Busy holder: serve_step's chain-end check picks the extent up.
    return;
  }
  // A mount of this tape may already be en route (complete_tape_unavailable
  // drops demand, not in-flight switches); queueing it again would mount
  // the cartridge twice.
  for (const DriveCtx& c : ctx_) {
    if (c.switch_target == tp) return;
  }
  if (repair_claimed(tp) || scrub_claimed(tp)) {
    return;  // served when the background claim releases it
  }
  const LibraryId lib = system_.library_of_tape(tp);
  lib_queue_[lib.index()].push_front(tp);  // failover priority
  engine_.schedule_in(Seconds{0.0}, [this, lib]() {
    kick_idle_drives(lib);
    ensure_progress(lib);
  });
}

void RetrievalSimulator::on_cartridge_health_change(
    TapeId tp, tape::CartridgeHealth health) {
  catalog_.set_tape_health(tp, to_replica_health(health));
  if (journal_ != nullptr) {
    journal_->log_set_tape_health(tp, to_replica_health(health),
                                  engine_.now());
  }
  if (config_.repair.enabled) schedule_repairs_for(tp);
}

// --- background repair --------------------------------------------------

void RetrievalSimulator::schedule_repairs_for(TapeId tp) {
  if (!repair_active()) return;
  // Every object with a copy on the degraded/lost tape may now be below
  // the target replication factor.
  for (const catalog::TapeExtent& e : catalog_.extents_on(tp)) {
    std::uint32_t good = 0;
    auto count = [&](const catalog::ObjectRecord& copy) {
      if (catalog_.tape_retired(copy.tape)) return;
      if (catalog_.tape_health(copy.tape) == catalog::ReplicaHealth::kGood) {
        ++good;
      }
    };
    if (const catalog::ObjectRecord* primary = catalog_.lookup(e.object)) {
      count(*primary);
    }
    for (const catalog::ObjectRecord& copy : catalog_.replicas(e.object)) {
      count(copy);
    }
    std::uint32_t pending = 0;
    if (const auto it = repair_pending_.find(e.object.value());
        it != repair_pending_.end()) {
      pending = it->second;
    }
    if (good + pending >= target_copies_) continue;
    const std::uint32_t deficit = target_copies_ - good - pending;
    for (std::uint32_t i = 0; i < deficit; ++i) {
      RepairJob job;
      job.object = e.object;
      job.size = e.size;
      if (dr_tag_.valid()) {
        // Scheduled from inside register_outage's disaster loss loop: this
        // copy replaces data destroyed with the site.
        job.dr_from = dr_tag_;
        ++outage_stats_.dr_jobs;
        ++dr_outstanding_[dr_tag_.value()];
        if (config_.tracer != nullptr) {
          config_.tracer->registry().counter("outage.dr_jobs").inc();
        }
      }
      repair_queue_.push_back(job);
      ++repair_pending_[e.object.value()];
      ++repair_stats_.jobs_scheduled;
    }
  }
  engine_.schedule_in(Seconds{0.0}, [this]() { pump_repairs(); });
}

void RetrievalSimulator::pump_repairs() {
  if (!copy_engine_active() || repair_queue_.empty()) return;
  const std::uint32_t total = plan_->spec().total_drives();
  for (std::uint32_t dv = 0; dv < total; ++dv) {
    if (repair_queue_.empty() || active_repairs_ >= repair_concurrency_cap()) {
      return;
    }
    maybe_start_repair(DriveId{dv});
  }
}

std::uint32_t RetrievalSimulator::repair_concurrency_cap() const {
  // While disaster-recovery jobs are outstanding the surge cap applies; it
  // falls back to the steady-state cap once the last DR job settles.
  if (dr_outstanding_.empty()) return config_.repair.max_concurrent;
  return std::max(config_.repair.max_concurrent,
                  config_.faults.outage.dr_max_concurrent);
}

bool RetrievalSimulator::repair_claimed(TapeId tp) const {
  for (const DriveCtx& c : ctx_) {
    if (!c.repair.has_value()) continue;
    // Only the tape of the job's active phase is claimed; the read source
    // of a write-phase job is free again.
    const TapeId using_tp = c.repair->read_done ? c.repair->target
                                                : c.repair->source;
    if (using_tp == tp) return true;
  }
  return false;
}

void RetrievalSimulator::requeue_if_needed(TapeId tp) {
  if (!tp.valid() || needed_.count(tp.value()) == 0) return;
  if (system_.drive_holding(tp).has_value()) return;
  for (const DriveCtx& c : ctx_) {
    if (c.switch_target == tp) return;
  }
  if (repair_claimed(tp) || scrub_claimed(tp)) return;
  const LibraryId lib = system_.library_of_tape(tp);
  auto& queue = lib_queue_[lib.index()];
  if (std::find(queue.begin(), queue.end(), tp) != queue.end()) return;
  queue.push_front(tp);
  engine_.schedule_in(Seconds{0.0}, [this, lib]() {
    kick_idle_drives(lib);
    ensure_progress(lib);
  });
}

bool RetrievalSimulator::tape_claimed(TapeId tp, DriveId self) const {
  for (std::uint32_t i = 0; i < ctx_.size(); ++i) {
    if (DriveId{i} == self) continue;
    const DriveCtx& c = ctx_[i];
    if (c.switch_target == tp) return true;
    if (c.repair.has_value() &&
        (c.repair->source == tp || c.repair->target == tp)) {
      return true;
    }
    if (c.scrub.has_value() && c.scrub->tape == tp) return true;
  }
  return false;
}

const catalog::ObjectRecord* RetrievalSimulator::pick_repair_source(
    DriveId d, const RepairJob& job) const {
  const LibraryId lib = system_.library_of_drive(d);
  const catalog::ObjectRecord* best = nullptr;
  int best_rank = 100;
  auto consider = [&](const catalog::ObjectRecord& copy) {
    if (system_.library_of_tape(copy.tape) != lib) return;
    if (catalog_.tape_retired(copy.tape)) {
      // An evacuated copy still exists physically, but the point of the
      // evacuation was to stop touching that cartridge; the drained copy
      // serves as the source instead. (A still-evacuating tape is not yet
      // retired, so the evacuation's own reads pass this check.)
      return;
    }
    const catalog::ReplicaHealth h = catalog_.tape_health(copy.tape);
    if (h == catalog::ReplicaHealth::kLost) return;
    const auto holder = system_.drive_holding(copy.tape);
    if (holder.has_value() && *holder != d) return;  // mounted elsewhere
    if (tape_claimed(copy.tape, d)) return;
    if (needed_.count(copy.tape.value()) != 0) return;  // foreground owns it
    // Good media beats degraded; already mounted on this drive beats a
    // switch.
    int rank = h == catalog::ReplicaHealth::kGood ? 0 : 2;
    if (!(holder.has_value() && *holder == d)) rank += 1;
    if (rank < best_rank) {
      best_rank = rank;
      best = &copy;
    }
  };
  if (const catalog::ObjectRecord* primary = catalog_.lookup(job.object)) {
    consider(*primary);
  }
  for (const catalog::ObjectRecord& copy : catalog_.replicas(job.object)) {
    consider(copy);
  }
  return best;
}

TapeId RetrievalSimulator::pick_repair_target(DriveId d,
                                              const RepairJob& job) const {
  const LibraryId lib = system_.library_of_drive(d);
  const std::uint32_t num_libs = plan_->spec().num_libraries;
  // Library anti-affinity: prefer a library holding no live copy; writing
  // into a copy-holding library is allowed only once every library holds
  // one (r > #libraries).
  std::vector<bool> lib_has_copy(num_libs, false);
  auto mark = [&](const catalog::ObjectRecord& copy) {
    if (catalog_.tape_health(copy.tape) == catalog::ReplicaHealth::kLost ||
        catalog_.tape_retired(copy.tape)) {
      return;
    }
    lib_has_copy[system_.library_of_tape(copy.tape).index()] = true;
  };
  if (const catalog::ObjectRecord* primary = catalog_.lookup(job.object)) {
    mark(*primary);
  }
  for (const catalog::ObjectRecord& copy : catalog_.replicas(job.object)) {
    mark(copy);
  }
  if (outage_active()) {
    // A destroyed library can never host a copy again; counting it as
    // covered keeps anti-affinity from wedging disaster-recovery repairs
    // waiting on a placement that cannot exist.
    for (std::uint32_t l = 0; l < num_libs; ++l) {
      if (system_.library_state(LibraryId{l}) ==
          tape::LibraryState::kDestroyed) {
        lib_has_copy[l] = true;
      }
    }
  }
  const bool all_covered =
      std::all_of(lib_has_copy.begin(), lib_has_copy.end(),
                  [](bool b) { return b; });
  if (lib_has_copy[lib.index()] && !all_covered) return TapeId{};

  auto holds_copy = [&](TapeId t) {
    if (const catalog::ObjectRecord* primary = catalog_.lookup(job.object);
        primary != nullptr && primary->tape == t) {
      return true;
    }
    for (const catalog::ObjectRecord& copy : catalog_.replicas(job.object)) {
      if (copy.tape == t) return true;
    }
    return false;
  };
  auto eligible = [&](TapeId t) {
    if (catalog_.tape_health(t) != catalog::ReplicaHealth::kGood) {
      return false;
    }
    // Never write fresh copies onto media on its way out of service.
    if (catalog_.tape_retired(t) || evacuating_.count(t.value()) != 0) {
      return false;
    }
    if (repair_writing_.count(t.value()) != 0) return false;
    if (needed_.count(t.value()) != 0) return false;  // foreground demand
    if (holds_copy(t)) return false;
    if (catalog_.used_on(t) + job.size >
        plan_->spec().library.tape_capacity) {
      return false;
    }
    const auto holder = system_.drive_holding(t);
    if (holder.has_value() && *holder != d) return false;
    if (tape_claimed(t, d)) return false;
    return true;
  };
  // The tape already in the drive avoids a whole switch.
  const tape::TapeDrive& drive = system_.drive(d);
  if (!drive.empty() && system_.library_of_tape(drive.mounted()) == lib &&
      eligible(drive.mounted())) {
    return drive.mounted();
  }
  const std::uint32_t per_lib = plan_->spec().library.tapes_per_library;
  for (std::uint32_t i = 0; i < per_lib; ++i) {
    const TapeId t{lib.value() * per_lib + i};
    if (eligible(t)) return t;
  }
  return TapeId{};
}

void RetrievalSimulator::maybe_start_repair(DriveId d) {
  if (!copy_engine_active() || repair_queue_.empty()) return;
  // Under overload pressure every idle drive belongs to the foreground;
  // repair jobs keep their queue slots and resume when pressure clears.
  if (overload_pressure_) return;
  if (active_repairs_ >= repair_concurrency_cap()) return;
  if (!switch_eligible(d)) return;
  DriveCtx& ctx = ctx_[d.index()];
  if (ctx.busy || ctx.recovery_pending) return;
  if (!drive_available(d)) return;
  // Quarantined drives take no background copies either; next_repair_wake
  // covers their release so drain_repairs keeps waiting instead of
  // abandoning jobs. An open drive breaker likewise rules out volunteering.
  if (detector_active() && drive_quarantined(d)) return;
  if (governor_.enabled() &&
      governor_.breaker_blocked(BreakerScope::kDrive,
                                static_cast<std::uint32_t>(d.index()),
                                engine_.now())) {
    return;
  }
  const tape::TapeDrive& drive = system_.drive(d);
  if (!(drive.idle() || drive.empty())) return;
  if (!drive.empty() && needed_.count(drive.mounted().value()) != 0) return;
  if (!lib_queue_[system_.library_of_drive(d).index()].empty()) return;
  for (auto it = repair_queue_.begin(); it != repair_queue_.end();) {
    if (!it->read_done && catalog_.best_replica(it->object) == nullptr) {
      // Every copy is lost; the object cannot be re-replicated.
      RepairJob dead = std::move(*it);
      it = repair_queue_.erase(it);
      abandon_repair(std::move(dead));
      continue;
    }
    if (it->read_done) {
      const TapeId target = pick_repair_target(d, *it);
      if (target.valid()) {
        RepairJob job = std::move(*it);
        repair_queue_.erase(it);
        job.target = target;
        job.write_offset = catalog_.used_on(target);
        repair_writing_.insert(target.value());
        start_repair(d, std::move(job));
        return;
      }
    } else {
      if (const catalog::ObjectRecord* src = pick_repair_source(d, *it)) {
        RepairJob job = std::move(*it);
        repair_queue_.erase(it);
        job.source = src->tape;
        job.source_offset = src->offset;
        start_repair(d, std::move(job));
        return;
      }
    }
    ++it;
  }
}

void RetrievalSimulator::start_repair(DriveId d, RepairJob job) {
  DriveCtx& ctx = ctx_[d.index()];
  ctx.busy = true;
  if (!job.has_started) {
    job.has_started = true;
    job.started = engine_.now();
  }
  const bool writing = job.read_done;
  const TapeId tp = writing ? job.target : job.source;
  ctx.repair = std::move(job);
  ++active_repairs_;
  const tape::TapeDrive& drive = system_.drive(d);
  if (!drive.empty() && drive.mounted() == tp) {
    if (writing) {
      repair_write_locate(d);
    } else {
      repair_read(d);
    }
    return;
  }
  repair_mount(d, tp, [this, d, writing]() {
    if (writing) {
      repair_write_locate(d);
    } else {
      repair_read(d);
    }
  });
}

void RetrievalSimulator::repair_mount(DriveId d, TapeId target,
                                      std::function<void()> then) {
  tape::TapeDrive& drive = system_.drive(d);
  tape::TapeLibrary& lib = system_.library(system_.library_of_drive(d));
  // Same physics as begin_switch — rewind, robot exchange, load — but no
  // request-side accounting: repair traffic is not a tape switch of any
  // request and draws no queue-wait spans.
  auto exchange = [this, d, &lib, target, then](bool had_tape) {
    lib.robot().acquire([this, d, &lib, target, had_tape, then]() {
      ctx_[d.index()].robot_held = true;
      if (fault_ != nullptr && !fault_->drive_online(d, engine_.now())) {
        on_drive_failure(d);
        return;
      }
      auto do_moves = [this, d, &lib, target, had_tape, then]() {
        const Seconds move = robot_move_delay(
            lib, had_tape ? lib.robot_exchange_time() : lib.robot_move_time());
        engine_.schedule_in(move, [this, d, &lib, target, then]() {
          if (fault_ != nullptr && !fault_->drive_online(d, engine_.now())) {
            on_drive_failure(d);
            return;
          }
          if (!config_.robot_holds_load) {
            lib.robot().release();
            ctx_[d.index()].robot_held = false;
          }
          tape::TapeDrive& dr = system_.drive(d);
          const Seconds load = dr.start_load(target);
          schedule_activity(d, load, [this, d, target, &lib, then]() {
            if (fault_ != nullptr &&
                fault_->mount_attempt_fails(d, engine_.now())) {
              if (ctx_[d.index()].scrub.has_value()) {
                scrub_mount_failure(d);
              } else {
                repair_mount_failure(d);
              }
              return;
            }
            if (config_.robot_holds_load) {
              lib.robot().release();
              ctx_[d.index()].robot_held = false;
            }
            system_.drive(d).finish_load();
            system_.note_mounted(target, d);
            then();
          });
        });
      };
      if (!had_tape) {
        do_moves();
        return;
      }
      tape::TapeDrive& dr = system_.drive(d);
      const Seconds unload = dr.start_unload();
      schedule_activity(d, unload, [this, d, do_moves]() {
        const TapeId old = system_.drive(d).finish_unload();
        system_.note_unmounted(old);
        // Demand for the evicted tape may have arrived mid-repair; this
        // drive will not serve it, so put it back in foreground rotation.
        requeue_if_needed(old);
        do_moves();
      });
    });
  };
  if (drive.empty()) {
    exchange(false);
    return;
  }
  const Seconds rewind = drive.start_rewind();
  schedule_activity(d, rewind, [this, d, exchange]() {
    system_.drive(d).finish_rewind();
    exchange(true);
  });
}

void RetrievalSimulator::repair_mount_failure(DriveId d) {
  DriveCtx& ctx = ctx_[d.index()];
  TAPESIM_ASSERT(ctx.repair.has_value());
  system_.drive(d).fail_load();
  if (config_.tracer != nullptr) {
    config_.tracer->marker(obs::Track::kDrive, d.value(),
                           "mount failure during repair");
  }
  RepairJob job = std::move(*ctx.repair);
  ctx.repair.reset();
  --active_repairs_;
  const TapeId attempted = job.read_done ? job.target : job.source;
  if (job.target.valid()) {
    repair_writing_.erase(job.target.value());
    job.target = TapeId{};
  }
  if (!job.read_done) job.source = TapeId{};
  ++job.attempts;
  const bool keep = job.attempts < kMaxRepairAttempts;
  tape::TapeLibrary& lib = system_.library(system_.library_of_drive(d));
  // The robot returns the unthreadable cartridge to its cell; a repair
  // job gets no retry ladder — it just goes to the back of the queue.
  auto return_done = [this, d, &lib, job = std::move(job), keep,
                      attempted]() mutable {
    lib.robot().release();
    ctx_[d.index()].robot_held = false;
    ctx_[d.index()].busy = false;
    if (keep) {
      repair_queue_.push_back(std::move(job));
    } else {
      abandon_repair(std::move(job));
    }
    requeue_if_needed(attempted);
    release_repair_drive(d);
  };
  auto do_return = [this, &lib, return_done = std::move(return_done)]() mutable {
    const Seconds move = robot_move_delay(lib, lib.robot_move_time());
    engine_.schedule_in(move, std::move(return_done));
  };
  if (ctx.robot_held) {
    do_return();
  } else {
    lib.robot().acquire([this, d, do_return = std::move(do_return)]() mutable {
      ctx_[d.index()].robot_held = true;
      do_return();
    });
  }
}

void RetrievalSimulator::repair_read(DriveId d) {
  DriveCtx& ctx = ctx_[d.index()];
  TAPESIM_ASSERT(ctx.repair.has_value());
  tape::TapeDrive& drive = system_.drive(d);
  const Seconds locate = drive.start_locate(ctx.repair->source_offset);
  schedule_activity(d, locate, [this, d]() {
    system_.drive(d).finish_locate();
    disk_streams_.acquire([this, d]() {
      ctx_[d.index()].disk_held = true;
      if (fault_ != nullptr && !fault_->drive_online(d, engine_.now())) {
        disk_streams_.release();
        ctx_[d.index()].disk_held = false;
        on_drive_failure(d);
        return;
      }
      repair_read_transfer(d);
    });
  });
}

void RetrievalSimulator::repair_read_transfer(DriveId d) {
  DriveCtx& ctx = ctx_[d.index()];
  RepairJob& job = *ctx.repair;
  tape::TapeDrive& drive = system_.drive(d);
  const TapeId tp = job.source;
  const Seconds xfer = drive.start_transfer(
      job.size, fault_->drive_rate_multiplier(d, engine_.now()));
  ctx.activity_start = engine_.now();
  auto complete = [this, d, xfer]() {
    disk_streams_.release();
    ctx_[d.index()].disk_held = false;
    system_.drive(d).finish_transfer();
    repair_pace(d, xfer, [this, d]() { finish_repair_read(d); });
  };
  // Repair reads suffer media errors and drive failures like any other
  // read; mirror begin_transfer's precedence (hardware beats media).
  std::optional<Seconds> media_at;
  if (const auto frac =
          fault_->media_error(tp, job.size, system_.cartridge_health(tp),
                              engine_.now())) {
    media_at = xfer * *frac;
  }
  const Seconds horizon = media_at.has_value() ? *media_at : xfer;
  if (const auto fail_after =
          fault_->failure_within(d, engine_.now(), horizon)) {
    const sim::EventId done = engine_.schedule_in(xfer, std::move(complete));
    engine_.schedule_in(*fail_after, [this, d, done]() {
      engine_.cancel(done);
      on_drive_failure(d);
    });
    return;
  }
  if (media_at.has_value()) {
    engine_.schedule_in(*media_at, [this, d]() { repair_media_error(d); });
    return;
  }
  engine_.schedule_in(xfer, std::move(complete));
}

void RetrievalSimulator::repair_media_error(DriveId d) {
  DriveCtx& ctx = ctx_[d.index()];
  TAPESIM_ASSERT(ctx.repair.has_value());
  tape::TapeDrive& drive = system_.drive(d);
  const TapeId tp = drive.mounted();
  drive.abort_transfer(engine_.now() - ctx.activity_start);
  disk_streams_.release();
  ctx.disk_held = false;
  const tape::CartridgeHealth health = fault_->record_media_error(tp);
  if (health != system_.cartridge_health(tp)) {
    system_.set_cartridge_health(tp, health);
    on_cartridge_health_change(tp, health);
  }
  if (config_.tracer != nullptr) {
    config_.tracer->marker(obs::Track::kDrive, d.value(),
                           "media error during repair on tape " +
                               std::to_string(tp.value()));
  }
  RepairJob job = std::move(*ctx.repair);
  ctx.repair.reset();
  --active_repairs_;
  ctx.busy = false;
  job.source = TapeId{};  // re-pick: this copy may have just degraded
  ++job.attempts;
  if (job.attempts >= kMaxRepairAttempts) {
    abandon_repair(std::move(job));
  } else {
    repair_queue_.push_back(std::move(job));
  }
  release_repair_drive(d);
}

void RetrievalSimulator::finish_repair_read(DriveId d) {
  DriveCtx& ctx = ctx_[d.index()];
  TAPESIM_ASSERT(ctx.repair.has_value());
  RepairJob job = std::move(*ctx.repair);
  ctx.repair.reset();
  --active_repairs_;
  ctx.busy = false;
  job.read_done = true;
  // The staged data should land on tape promptly: the write half goes to
  // the front of the queue (usually a drive in another library takes it).
  repair_queue_.push_front(std::move(job));
  release_repair_drive(d);
}

void RetrievalSimulator::repair_write_locate(DriveId d) {
  DriveCtx& ctx = ctx_[d.index()];
  TAPESIM_ASSERT(ctx.repair.has_value());
  tape::TapeDrive& drive = system_.drive(d);
  const Seconds locate = drive.start_locate(ctx.repair->write_offset);
  schedule_activity(d, locate, [this, d]() {
    system_.drive(d).finish_locate();
    disk_streams_.acquire([this, d]() {
      ctx_[d.index()].disk_held = true;
      if (fault_ != nullptr && !fault_->drive_online(d, engine_.now())) {
        disk_streams_.release();
        ctx_[d.index()].disk_held = false;
        on_drive_failure(d);
        return;
      }
      repair_write_transfer(d);
    });
  });
}

void RetrievalSimulator::repair_write_transfer(DriveId d) {
  DriveCtx& ctx = ctx_[d.index()];
  RepairJob& job = *ctx.repair;
  tape::TapeDrive& drive = system_.drive(d);
  const Seconds xfer = drive.start_transfer(
      job.size, fault_->drive_rate_multiplier(d, engine_.now()));
  ctx.activity_start = engine_.now();
  auto complete = [this, d, xfer]() {
    disk_streams_.release();
    ctx_[d.index()].disk_held = false;
    system_.drive(d).finish_transfer();
    repair_pace(d, xfer, [this, d]() { complete_repair(d); });
  };
  // Writes go to a healthy tape: no media-error draw (the error model is
  // a per-read draw), but the drive can still die mid-write.
  if (const auto fail_after =
          fault_->failure_within(d, engine_.now(), xfer)) {
    const sim::EventId done = engine_.schedule_in(xfer, std::move(complete));
    engine_.schedule_in(*fail_after, [this, d, done]() {
      engine_.cancel(done);
      on_drive_failure(d);
    });
    return;
  }
  engine_.schedule_in(xfer, std::move(complete));
}

void RetrievalSimulator::background_pace(DriveId d, Seconds xfer,
                                         double fraction,
                                         std::function<void()> next) {
  if (fraction >= 1.0) {
    next();
    return;
  }
  // Full-rate transfer + idle tail: the drive's average background
  // throughput is fraction × native rate, while per-byte transfer
  // accounting (DriveStats, span conservation) stays at native rate.
  const Seconds pace = xfer * ((1.0 - fraction) / fraction);
  engine_.schedule_in(pace, [this, d, next = std::move(next)]() {
    if (fault_ != nullptr && !fault_->drive_online(d, engine_.now())) {
      on_drive_failure(d);
      return;
    }
    next();
  });
}

void RetrievalSimulator::repair_pace(DriveId d, Seconds xfer,
                                     std::function<void()> next) {
  const DriveCtx& ctx = ctx_[d.index()];
  const bool dr = ctx.repair.has_value() && ctx.repair->dr_from.valid();
  // Under metastable shedding the governor clamps repair/DR bandwidth so
  // recovery work stops competing with collapsing foreground goodput.
  background_pace(d, xfer,
                  (dr ? config_.faults.outage.dr_bandwidth_fraction
                      : config_.repair.bandwidth_fraction) *
                      governor_.repair_clamp(),
                  std::move(next));
}

void RetrievalSimulator::complete_repair(DriveId d) {
  DriveCtx& ctx = ctx_[d.index()];
  TAPESIM_ASSERT(ctx.repair.has_value());
  RepairJob job = std::move(*ctx.repair);
  ctx.repair.reset();
  --active_repairs_;
  ctx.busy = false;
  const LibraryId lib = system_.library_of_tape(job.target);
  const bool ok = catalog_.insert_replica(catalog::ObjectRecord{
      job.object, job.size, lib, job.target, job.write_offset});
  TAPESIM_ASSERT_MSG(ok, "repair produced an invalid replica");
  if (journal_ != nullptr) {
    journal_->log_insert_replica(
        catalog::ObjectRecord{job.object, job.size, lib, job.target,
                              job.write_offset},
        engine_.now());
  }
  repair_writing_.erase(job.target.value());
  const auto it = repair_pending_.find(job.object.value());
  TAPESIM_ASSERT(it != repair_pending_.end() && it->second > 0);
  if (--it->second == 0) repair_pending_.erase(it);
  ++repair_stats_.jobs_completed;
  repair_stats_.bytes_copied += job.size.count();
  if (in_request_) ++repaired_this_request_;
  if (config_.tracer != nullptr) {
    config_.tracer->record(obs::Span{obs::Track::kRepair, job.object.value(),
                                     obs::Phase::kRepair, job.started,
                                     engine_.now(), RequestId{}, job.target,
                                     {}});
    config_.tracer->registry().counter("repair.completed").inc();
    config_.tracer->registry().counter("repair.copied_bytes").inc(job.size.count());
  }
  if (job.evac_from.valid()) {
    ++evac_stats_.objects_moved;
    if (config_.tracer != nullptr) {
      config_.tracer->registry().counter("evac.objects_moved").inc();
    }
    note_evac_job_done(job.evac_from);
  }
  if (job.dr_from.valid()) {
    outage_stats_.dr_bytes += job.size.count();
    if (config_.tracer != nullptr) {
      config_.tracer->registry().counter("outage.dr_bytes")
          .inc(job.size.count());
    }
    note_dr_job_done(job.dr_from);
  }
  release_repair_drive(d);
}

void RetrievalSimulator::abandon_repair(RepairJob job) {
  ++repair_stats_.jobs_abandoned;
  if (job.target.valid()) repair_writing_.erase(job.target.value());
  const auto it = repair_pending_.find(job.object.value());
  TAPESIM_ASSERT(it != repair_pending_.end() && it->second > 0);
  if (--it->second == 0) repair_pending_.erase(it);
  if (config_.tracer != nullptr) {
    config_.tracer->marker(obs::Track::kRepair, job.object.value(),
                           "repair abandoned");
  }
  if (job.evac_from.valid()) note_evac_job_done(job.evac_from);
  if (job.dr_from.valid()) note_dr_job_done(job.dr_from);
}

void RetrievalSimulator::release_repair_drive(DriveId d) {
  // Foreground work first: a tape this drive holds may have been demanded
  // while the repair ran, or its library queue may have filled up.
  engine_.schedule_in(Seconds{0.0}, [this, d]() {
    DriveCtx& c = ctx_[d.index()];
    if (c.busy) return;
    const tape::TapeDrive& dr = system_.drive(d);
    if (dr.failed()) return;
    if (!dr.empty() && needed_.count(dr.mounted().value()) != 0) {
      serve_mounted(d);
      return;
    }
    next_action(d);  // pulls the lib queue, or falls back to more repair
  });
  engine_.schedule_in(Seconds{0.0}, [this]() { pump_repairs(); });
}

Seconds RetrievalSimulator::next_repair_wake() {
  if (fault_ == nullptr) return kNever;
  const Seconds now = engine_.now();
  Seconds wake = kNever;
  if (outage_active()) {
    for (std::uint32_t l = 0; l < plan_->spec().num_libraries; ++l) {
      if (system_.library_state(LibraryId{l}) == tape::LibraryState::kDown) {
        wake = std::min(wake, outage_watch_[l].restore_at);
      }
    }
  }
  for (std::uint32_t i = 0; i < ctx_.size(); ++i) {
    const DriveId d{i};
    if (detector_active() && detector_[i].quarantined) {
      // A quarantined fleet must not strand queued copies: wake at the
      // earliest release (drive_quarantined re-extends it if the drive
      // is observed still slow then).
      wake = std::min(wake, detector_[i].release_at);
    }
    if (!system_.drive(d).failed()) continue;
    if (const auto back = fault_->next_online_at(d, now)) {
      wake = std::min(wake, *back);
    }
  }
  return wake;
}

void RetrievalSimulator::drain_repairs() {
  if (!copy_engine_active()) return;
  std::size_t stable = repair_queue_.size() + 1;
  while (active_repairs_ > 0 || !repair_queue_.empty()) {
    pump_repairs();
    engine_.run();
    if (active_repairs_ == 0 && repair_queue_.size() == stable) {
      // No job could start and the event loop went idle. A transiently
      // downed drive or library may still be due back — the lazy fault
      // timelines hold that instant, and nothing else arms a wake for
      // background copies (the ensure_progress watches only cover
      // foreground demand). Sleep until it and try again.
      const Seconds wake = next_repair_wake();
      if (wake < kNever) {
        engine_.schedule_at(std::max(wake, engine_.now()),
                            [this]() { pump_repairs(); });
        continue;
      }
      // The world is static with jobs still queued: every remaining job
      // has no reachable source or no placeable target, and no future
      // event changes that. Abandon them so the DR and evacuation
      // ledgers settle instead of wedging half-open.
      while (!repair_queue_.empty()) {
        RepairJob dead = std::move(repair_queue_.front());
        repair_queue_.pop_front();
        abandon_repair(std::move(dead));
      }
      break;
    }
    stable = repair_queue_.size();
  }
}

// --- background scrubbing -----------------------------------------------

bool RetrievalSimulator::scrub_claimed(TapeId tp) const {
  for (const DriveCtx& c : ctx_) {
    if (c.scrub.has_value() && c.scrub->tape == tp) return true;
  }
  return false;
}

bool RetrievalSimulator::scrub_yield_needed(DriveId d) const {
  if (overload_pressure_) return true;
  if (governor_.scrub_paused()) return true;
  if (!lib_queue_[system_.library_of_drive(d).index()].empty()) return true;
  const DriveCtx& c = ctx_[d.index()];
  return c.scrub.has_value() && needed_.count(c.scrub->tape.value()) != 0;
}

TapeId RetrievalSimulator::pick_scrub_tape(DriveId d) const {
  const Seconds now = engine_.now();
  auto due = [&](TapeId t) {
    if (catalog_.used_on(t).count() == 0) return false;  // nothing to verify
    if (now - last_scrub_[t.index()] < config_.scrub.interval) return false;
    if (system_.cartridge_lost(t)) return false;
    if (catalog_.tape_retired(t)) return false;
    if (evacuating_.count(t.value()) != 0) return false;
    if (needed_.count(t.value()) != 0) return false;  // foreground owns it
    const auto holder = system_.drive_holding(t);
    if (holder.has_value() && *holder != d) return false;
    if (tape_claimed(t, d)) return false;
    return true;
  };
  // The mounted cartridge skips the whole robot exchange; take it when due.
  const tape::TapeDrive& drive = system_.drive(d);
  if (!drive.empty() && due(drive.mounted())) return drive.mounted();
  const LibraryId lib = system_.library_of_drive(d);
  const std::uint32_t per_lib = plan_->spec().library.tapes_per_library;
  TapeId best{};
  Seconds best_last{kNever};
  for (std::uint32_t i = 0; i < per_lib; ++i) {
    const TapeId t{lib.value() * per_lib + i};
    if (!due(t)) continue;
    if (!best.valid() || last_scrub_[t.index()] < best_last) {
      best = t;
      best_last = last_scrub_[t.index()];
    }
  }
  return best;  // most overdue first; invalid when nothing is due
}

void RetrievalSimulator::maybe_start_scrub(DriveId d) {
  if (!scrub_active()) return;
  // New passes start only while foreground work is outstanding: scrub
  // traffic rides inside request drains, so engine_.run() still terminates
  // (a pass started on the last extent's completion could make more tapes
  // due by advancing time, forever). In-flight passes drain normally.
  if (remaining_extents_ == 0) return;
  if (overload_pressure_) return;
  // First lever of metastable shedding: scrub is the most deferrable
  // amplification class, so it pauses before repair or budgets tighten.
  if (governor_.scrub_paused()) return;
  if (active_scrubs_ >= config_.scrub.max_concurrent) return;
  if (!switch_eligible(d)) return;
  DriveCtx& ctx = ctx_[d.index()];
  if (ctx.busy || ctx.recovery_pending) return;
  if (!drive_available(d)) return;
  if (detector_active() && drive_quarantined(d)) return;
  if (governor_.enabled() &&
      governor_.breaker_blocked(BreakerScope::kDrive,
                                static_cast<std::uint32_t>(d.index()),
                                engine_.now())) {
    return;
  }
  const tape::TapeDrive& drive = system_.drive(d);
  if (!(drive.idle() || drive.empty())) return;
  if (!drive.empty() && needed_.count(drive.mounted().value()) != 0) return;
  if (!lib_queue_[system_.library_of_drive(d).index()].empty()) return;
  const TapeId tp = pick_scrub_tape(d);
  if (!tp.valid()) return;
  start_scrub(d, tp);
}

void RetrievalSimulator::start_scrub(DriveId d, TapeId tp) {
  DriveCtx& ctx = ctx_[d.index()];
  ctx.busy = true;
  ScrubJob job;
  job.tape = tp;
  job.end = catalog_.used_on(tp);
  job.started = engine_.now();
  ctx.scrub = job;
  ++active_scrubs_;
  const tape::TapeDrive& drive = system_.drive(d);
  if (!drive.empty() && drive.mounted() == tp) {
    scrub_segment(d);
    return;
  }
  repair_mount(d, tp, [this, d]() { scrub_segment(d); });
}

void RetrievalSimulator::scrub_segment(DriveId d) {
  DriveCtx& ctx = ctx_[d.index()];
  TAPESIM_ASSERT(ctx.scrub.has_value());
  if (!fault_->drive_online(d, engine_.now())) {
    on_drive_failure(d);
    return;
  }
  if (scrub_yield_needed(d)) {
    end_scrub_pass(d, /*completed=*/false);
    return;
  }
  const ScrubJob& job = *ctx.scrub;
  if (job.next_offset >= job.end) {
    end_scrub_pass(d, /*completed=*/true);
    return;
  }
  const Bytes seg{std::min(config_.scrub.segment.count(),
                           (job.end - job.next_offset).count())};
  tape::TapeDrive& drive = system_.drive(d);
  const Seconds locate = drive.start_locate(job.next_offset);
  schedule_activity(d, locate, [this, d, seg]() {
    system_.drive(d).finish_locate();
    scrub_transfer(d, seg);
  });
}

void RetrievalSimulator::scrub_transfer(DriveId d, Bytes seg) {
  DriveCtx& ctx = ctx_[d.index()];
  TAPESIM_ASSERT(ctx.scrub.has_value());
  const TapeId tp = ctx.scrub->tape;
  tape::TapeDrive& drive = system_.drive(d);
  const Seconds xfer = drive.start_transfer(
      seg, fault_->drive_rate_multiplier(d, engine_.now()));
  ctx.activity_start = engine_.now();
  // Verification is drive-internal (read + checksum); no staging-disk slot
  // is held, so scrubbing never queues behind foreground streams.
  auto complete = [this, d, seg, xfer]() {
    system_.drive(d).finish_transfer();
    scrub_segment_done(d, seg, xfer);
  };
  // A verify read suffers active media errors and drive failures like any
  // read (hardware beats media). Latent decay damage does not interrupt
  // it — finding that damage is the point — and is folded in at the
  // segment boundary instead.
  std::optional<Seconds> media_at;
  if (const auto frac =
          fault_->media_error(tp, seg, system_.cartridge_health(tp),
                              engine_.now())) {
    media_at = xfer * *frac;
  }
  const Seconds horizon = media_at.has_value() ? *media_at : xfer;
  if (const auto fail_after =
          fault_->failure_within(d, engine_.now(), horizon)) {
    const sim::EventId done = engine_.schedule_in(xfer, std::move(complete));
    engine_.schedule_in(*fail_after, [this, d, done]() {
      engine_.cancel(done);
      on_drive_failure(d);
    });
    return;
  }
  if (media_at.has_value()) {
    engine_.schedule_in(*media_at, [this, d]() { scrub_media_error(d); });
    return;
  }
  engine_.schedule_in(xfer, std::move(complete));
}

void RetrievalSimulator::scrub_media_error(DriveId d) {
  DriveCtx& ctx = ctx_[d.index()];
  TAPESIM_ASSERT(ctx.scrub.has_value());
  tape::TapeDrive& drive = system_.drive(d);
  const TapeId tp = ctx.scrub->tape;
  drive.abort_transfer(engine_.now() - ctx.activity_start);
  const tape::CartridgeHealth health = fault_->record_media_error(tp);
  if (health != system_.cartridge_health(tp)) {
    system_.set_cartridge_health(tp, health);
    on_cartridge_health_change(tp, health);
  }
  if (config_.tracer != nullptr) {
    config_.tracer->marker(obs::Track::kDrive, d.value(),
                           "media error during scrub on tape " +
                               std::to_string(tp.value()));
  }
  maybe_evacuate(tp);
  // No retry ladder for verification: the error is recorded, the pass
  // aborts, and the cartridge comes due again after the usual interval.
  end_scrub_pass(d, /*completed=*/false);
}

void RetrievalSimulator::scrub_segment_done(DriveId d, Bytes seg,
                                            Seconds xfer) {
  DriveCtx& ctx = ctx_[d.index()];
  TAPESIM_ASSERT(ctx.scrub.has_value());
  ScrubJob& job = *ctx.scrub;
  job.next_offset += seg;
  job.verified += seg.count();
  // Observation granularity is the cartridge: a verify read sweeps the
  // whole decay timeline, so every event accrued so far surfaces here.
  std::uint32_t found = 0;
  const tape::CartridgeHealth health =
      fault_->observe_damage(job.tape, engine_.now(), &found);
  if (found > 0) {
    job.found += found;
    if (health != system_.cartridge_health(job.tape)) {
      system_.set_cartridge_health(job.tape, health);
      on_cartridge_health_change(job.tape, health);
    }
    maybe_evacuate(job.tape);
  }
  if (system_.cartridge_lost(job.tape)) {
    // Verified into oblivion: the accumulated damage pushed the cartridge
    // over the loss threshold. Nothing left to protect here.
    end_scrub_pass(d, /*completed=*/false);
    return;
  }
  background_pace(d, xfer, config_.scrub.bandwidth_fraction,
                  [this, d]() { scrub_segment(d); });
}

void RetrievalSimulator::scrub_mount_failure(DriveId d) {
  DriveCtx& ctx = ctx_[d.index()];
  TAPESIM_ASSERT(ctx.scrub.has_value());
  system_.drive(d).fail_load();
  if (config_.tracer != nullptr) {
    config_.tracer->marker(obs::Track::kDrive, d.value(),
                           "mount failure during scrub");
  }
  tape::TapeLibrary& lib = system_.library(system_.library_of_drive(d));
  // The robot returns the unthreadable cartridge; the pass aborts and the
  // tape stays due (no last_scrub_ update), so a later drive retries it.
  auto return_done = [this, d, &lib]() {
    lib.robot().release();
    ctx_[d.index()].robot_held = false;
    end_scrub_pass(d, /*completed=*/false);
  };
  auto do_return = [this, &lib, return_done]() {
    const Seconds move = robot_move_delay(lib, lib.robot_move_time());
    engine_.schedule_in(move, return_done);
  };
  if (ctx.robot_held) {
    do_return();
  } else {
    lib.robot().acquire([this, d, do_return]() {
      ctx_[d.index()].robot_held = true;
      do_return();
    });
  }
}

void RetrievalSimulator::end_scrub_pass(DriveId d, bool completed) {
  DriveCtx& ctx = ctx_[d.index()];
  TAPESIM_ASSERT(ctx.scrub.has_value());
  const ScrubJob job = *ctx.scrub;
  ctx.scrub.reset();
  --active_scrubs_;
  ctx.busy = false;
  scrub_stats_.bytes_verified += job.verified;
  scrub_stats_.latent_found += job.found;
  if (completed) {
    last_scrub_[job.tape.index()] = engine_.now();
    ++scrub_stats_.passes;
  } else {
    ++scrub_stats_.passes_aborted;
  }
  if (config_.tracer != nullptr) {
    config_.tracer->record(obs::Span{
        obs::Track::kScrub, job.tape.value(), obs::Phase::kScrub, job.started,
        engine_.now(), RequestId{}, job.tape,
        completed ? std::string{} : std::string{"aborted"}});
    if (completed) config_.tracer->registry().counter("scrub.passes").inc();
    config_.tracer->registry().counter("scrub.verified_bytes")
        .inc(job.verified);
    config_.tracer->registry().counter("scrub.latent_found").inc(job.found);
  }
  // Foreground first (the pass may have yielded exactly because its tape
  // was demanded), then further background work.
  requeue_if_needed(job.tape);
  release_repair_drive(d);
}

// --- health-driven evacuation -------------------------------------------

double RetrievalSimulator::health_score(TapeId tp) const {
  const std::uint32_t latent = fault_->latent_observed_on(tp);
  const std::uint32_t total_errors = fault_->media_errors_on(tp);
  TAPESIM_ASSERT(total_errors >= latent);
  return config_.evacuation.score(total_errors - latent, latent,
                                  system_.mount_count(tp));
}

void RetrievalSimulator::maybe_evacuate(TapeId tp) {
  if (!evac_active() || !tp.valid()) return;
  if (catalog_.tape_retired(tp) || evacuating_.count(tp.value()) != 0) return;
  if (system_.cartridge_lost(tp)) return;  // too late; failover owns it
  if (health_score(tp) > config_.evacuation.threshold) return;
  begin_evacuation(tp);
}

void RetrievalSimulator::begin_evacuation(TapeId tp) {
  evacuating_.insert(tp.value());
  ++evac_stats_.started;
  std::uint32_t jobs = 0;
  for (const catalog::TapeExtent& e : catalog_.extents_on(tp)) {
    RepairJob job;
    job.object = e.object;
    job.size = e.size;
    job.evac_from = tp;
    repair_queue_.push_back(job);
    ++repair_pending_[e.object.value()];
    ++repair_stats_.jobs_scheduled;
    ++jobs;
  }
  if (config_.tracer != nullptr) {
    config_.tracer->marker(obs::Track::kScrub, tp.value(),
                           "evacuation started: " + std::to_string(jobs) +
                               " objects");
    config_.tracer->registry().counter("evac.started").inc();
  }
  if (jobs == 0) {
    // Nothing stored on the cartridge: retire it outright.
    finish_evacuation(tp);
    return;
  }
  evac_outstanding_[tp.value()] = jobs;
  engine_.schedule_in(Seconds{0.0}, [this]() { pump_repairs(); });
}

void RetrievalSimulator::note_evac_job_done(TapeId tp) {
  const auto it = evac_outstanding_.find(tp.value());
  TAPESIM_ASSERT(it != evac_outstanding_.end() && it->second > 0);
  if (--it->second == 0) {
    evac_outstanding_.erase(it);
    finish_evacuation(tp);
  }
}

void RetrievalSimulator::finish_evacuation(TapeId tp) {
  // Retire only a fully drained cartridge: every object on it must have a
  // live copy somewhere else. With abandoned jobs (all sources lost, or
  // attempts exhausted) the cartridge stays in service — losing access to
  // its marginal copies would be worse — and stays marked `evacuating_` so
  // the policy does not thrash on it.
  const TapeId exclude[] = {tp};
  for (const catalog::TapeExtent& e : catalog_.extents_on(tp)) {
    if (catalog_.best_replica(e.object, exclude) == nullptr) {
      if (config_.tracer != nullptr) {
        config_.tracer->marker(obs::Track::kScrub, tp.value(),
                               "evacuation incomplete: tape stays in service");
      }
      return;
    }
  }
  catalog_.retire_tape(tp);
  if (journal_ != nullptr) journal_->log_retire_tape(tp, engine_.now());
  ++evac_stats_.completed;
  if (config_.tracer != nullptr) {
    config_.tracer->marker(obs::Track::kScrub, tp.value(),
                           "cartridge retired");
  }
}

// --- metadata durability + crash recovery --------------------------------

void RetrievalSimulator::take_checkpoint() {
  journal_->checkpoint(catalog_, engine_.now());
  ++recovery_stats_.checkpoints;
  if (config_.tracer != nullptr) {
    config_.tracer->registry().counter("recovery.checkpoints").inc();
  }
}

void RetrievalSimulator::reconcile_metadata() {
  // Crashes and the checkpoint cadence are observed lazily at admission
  // boundaries, where the event queue is empty (run_request runs the
  // engine to quiescence), so recovery can advance the clock synchronously
  // without racing any in-flight activity.
  if (fault_ != nullptr) {
    while (const auto crash = fault_->next_metadata_crash(engine_.now())) {
      recover_from_crash(crash->at, crash->torn);
    }
  }
  if (journal_->checkpoint_due(engine_.now())) take_checkpoint();
}

void RetrievalSimulator::recover_from_crash(Seconds at, double torn) {
  ++recovery_stats_.crashes;
  const Seconds snapshot_age = at - journal_->snapshot_at();
  recovery_stats_.snapshot_age.add(snapshot_age.count());
  // A disabled torn tail passes a draw of 1.0: the whole unsynced suffix
  // survives (the injector consumed the real draw either way, so both
  // timelines match draw-for-draw).
  const catalog::Journal::CrashCut cut =
      journal_->crash_cut(at, config_.faults.crash.torn_tail ? torn : 1.0);
  catalog::ObjectCatalog recovered = journal_->replay();
  if (config_.journal.fsync == catalog::FsyncPolicy::kSync) {
    // Synchronous fsync never loses an acknowledged mutation: the replayed
    // catalog must equal the live one before any reconciliation.
    TAPESIM_ASSERT_MSG(cut.lost == 0, "synchronous fsync lost a mutation");
    TAPESIM_ASSERT_MSG(recovered.equals(catalog_),
                       "sync-fsync replay diverged from the live catalog");
  }
  const std::vector<catalog::JournalRecord> lost = journal_->take_lost();
  for (const catalog::JournalRecord& rec : lost) {
    // Reconciliation against tape reality: a lost mutation's payload is
    // re-derivable from the physical world — repair-written replica bytes
    // sit on their target cartridge (label + extent scan), health and
    // retirement re-surface from cartridge state — at a scrub-like
    // per-record cost. Re-applying the record models that rediscovery.
    catalog::Journal::apply(recovered, rec);
  }
  TAPESIM_ASSERT_MSG(recovered.equals(catalog_),
                     "crash recovery failed to converge on the live catalog");
  recovery_stats_.records_replayed += cut.survivors;
  recovery_stats_.lost_mutations += cut.lost;
  recovery_stats_.reconciled_mutations += lost.size();
  const Seconds duration =
      config_.journal.recovery_base +
      Seconds{config_.journal.replay_per_record.count() *
              static_cast<double>(cut.survivors)} +
      Seconds{config_.journal.reconcile_per_record.count() *
              static_cast<double>(cut.lost)};
  recovery_stats_.downtime += duration;
  recovery_stats_.rto.add(duration.count());
  const Seconds back_at = at + duration;
  bool parked = false;
  if (back_at > engine_.now()) {
    // The admission arrived inside the metadata-unavailable window: park
    // it by advancing the (empty) engine to the recovery's end.
    parked = true;
    ++recovery_stats_.admissions_parked;
    recovery_stats_.parked += back_at - engine_.now();
    engine_.schedule_at(back_at, []() {});
    engine_.run();
  }
  // The recovered server checkpoints immediately: the replayed state is
  // the new baseline and the surviving log truncates.
  take_checkpoint();
  if (config_.tracer != nullptr) {
    obs::Tracer& tr = *config_.tracer;
    tr.record(obs::Span{obs::Track::kRecovery,
                        static_cast<std::uint32_t>(recovery_stats_.crashes),
                        obs::Phase::kRecovery, at, back_at, RequestId{},
                        TapeId{}, {}});
    const auto layout = obs::BucketLayout::exponential(0.1, 1e5, 1.3);
    tr.registry().counter("recovery.crashes").inc();
    tr.registry().counter("recovery.records_replayed").inc(cut.survivors);
    tr.registry().counter("recovery.lost_mutations").inc(cut.lost);
    tr.registry().counter("recovery.reconciled_mutations").inc(lost.size());
    tr.registry().histogram("recovery.metadata_rto_s", layout)
        .record(duration.count());
    tr.registry().histogram("recovery.snapshot_age_s", layout)
        .record(snapshot_age.count());
    tr.registry().gauge("recovery.downtime_s")
        .set(recovery_stats_.downtime.count());
    if (parked) tr.registry().counter("recovery.admissions_parked").inc();
  }
}

metrics::RequestOutcome RetrievalSimulator::run_request(RequestId id) {
  return run_request(id, RequestContext{});
}

metrics::RequestOutcome RetrievalSimulator::run_request(
    RequestId id, const RequestContext& rctx) {
  TAPESIM_ASSERT_MSG(!in_request_, "requests are strictly sequential");
  // Observe the metadata crash/checkpoint timelines before admission. A
  // recovery window reaching past now advances the clock, but the request
  // is accounted from its arrival: the parked time lands in its response.
  const Seconds arrival = engine_.now();
  if (journal_ != nullptr) reconcile_metadata();
  in_request_ = true;
  if (config_.tracer != nullptr) config_.tracer->set_current_request(id);
  const workload::Workload& wl = plan_->workload();
  const workload::Request& request = wl.request(id);

  // Reset per-request state.
  t0_ = arrival;
  deadline_abs_ = rctx.deadline;
  priority_ = rctx.priority;
  expired_ = false;
  deadline_event_ = 0;
  bytes_expired_this_request_ = Bytes{};
  extents_expired_this_request_ = 0;
  const bool has_deadline =
      deadline_abs_.count() < metrics::RequestOutcome::kNoDeadline;

  if (has_deadline && deadline_abs_ <= engine_.now()) {
    // Dead on arrival (the admission layer normally sheds these), or the
    // deadline drowned inside a metadata-recovery window: account every
    // byte as expired without touching the engine. Without a journal,
    // now() == t0_ and this is the plain dead-on-arrival check.
    metrics::RequestOutcome outcome;
    outcome.request = id;
    outcome.status = metrics::RequestStatus::kDeadlineExpired;
    outcome.priority = priority_;
    outcome.deadline = std::max(Seconds{0.0}, deadline_abs_ - t0_);
    outcome.response = outcome.deadline;
    for (const ObjectId o : request.objects) {
      const catalog::ObjectRecord* rec = catalog_.lookup(o);
      TAPESIM_ASSERT_MSG(rec != nullptr, "request references unplaced object");
      outcome.bytes += rec->size;
      ++outcome.extents_expired;
    }
    outcome.bytes_expired = outcome.bytes;
    if (config_.tracer != nullptr) {
      config_.tracer->set_current_request(RequestId{});
    }
    in_request_ = false;
    return outcome;
  }
  last_transfer_end_ = t0_;
  last_finisher_ = DriveId{};
  switches_this_request_ = 0;
  robot_wait_this_request_ = Seconds{};
  bytes_unavailable_this_request_ = Bytes{};
  extents_unavailable_this_request_ = 0;
  failovers_this_request_ = 0;
  extents_parked_this_request_ = 0;
  mount_retries_this_request_ = 0;
  media_retries_this_request_ = 0;
  served_from_replica_this_request_ = 0;
  repaired_this_request_ = 0;
  latent_hits_this_request_ = 0;
  tried_.clear();
  mount_attempts_.clear();
  needed_.clear();
  remaining_extents_ = 0;
  // Hedge races never straddle requests: every record settles at the
  // winner, a leg failure, or the deadline. Tombstones only suppress
  // stale legs within their own request.
  TAPESIM_ASSERT(hedges_.empty());
  hedge_cancelled_.clear();
  for (auto& dr : drive_req_) dr = DriveReq{};
  for (auto& q : lib_queue_) q.clear();

  // Reconcile every library with its outage timeline before resolution, so
  // routing below sees up/down/destroyed states current at submit time.
  if (outage_active()) {
    for (std::uint32_t l = 0; l < plan_->spec().num_libraries; ++l) {
      library_operational(LibraryId{l});
    }
  }
  const std::vector<LibraryId> down = down_libraries();
  auto library_down = [&](LibraryId l) {
    return std::find(down.begin(), down.end(), l) != down.end();
  };
  auto park_resolved = [&](const catalog::ObjectRecord& copy, ObjectId o) {
    // Every live copy sits behind a transiently downed library: park the
    // extent on the best of them; it is served after the restore.
    needed_[copy.tape.value()].push_back(
        catalog::TapeExtent{o, copy.offset, copy.size});
    ++remaining_extents_;
    ++outage_stats_.extents_parked;
    ++extents_parked_this_request_;
  };

  // Resolve the request through the indexing database.
  Bytes total_bytes{};
  for (const ObjectId o : request.objects) {
    const catalog::ObjectRecord* rec = catalog_.lookup(o);
    TAPESIM_ASSERT_MSG(rec != nullptr, "request references unplaced object");
    total_bytes += rec->size;
    const bool lost = fault_ != nullptr && system_.cartridge_lost(rec->tape);
    const bool retired = catalog_.tape_retired(rec->tape);
    if (lost || retired) {
      // The primary is gone (or preemptively drained); resolve against the
      // best surviving copy in a live library. Catalog health tracks
      // cartridge escalations and retirements, so dead copies are skipped
      // automatically.
      if (const catalog::ObjectRecord* alt =
              catalog_.best_replica(o, {}, down)) {
        if (retired && !lost) {
          // Without the evacuation this read would have gone to failing
          // media; count the save.
          ++evac_stats_.preempted_unavailables;
          if (config_.tracer != nullptr) {
            config_.tracer->registry()
                .counter("evac.preempted_unavailables")
                .inc();
          }
        }
        needed_[alt->tape.value()].push_back(
            catalog::TapeExtent{o, alt->offset, alt->size});
        ++remaining_extents_;
        continue;
      }
      if (!down.empty()) {
        if (const catalog::ObjectRecord* alt = catalog_.best_replica(o)) {
          park_resolved(*alt, o);
          continue;
        }
      }
      // Data on a lost cartridge completes immediately as unavailable.
      bytes_unavailable_this_request_ += rec->size;
      ++extents_unavailable_this_request_;
      continue;
    }
    if (library_down(rec->library)) {
      // Healthy primary behind a downed library: fail over to a copy in a
      // surviving one, or park on the primary until the restore.
      if (const catalog::ObjectRecord* alt =
              catalog_.best_replica(o, {}, down)) {
        ++outage_stats_.failovers;
        if (config_.tracer != nullptr) {
          config_.tracer->registry().counter("outage.failovers").inc();
        }
        needed_[alt->tape.value()].push_back(
            catalog::TapeExtent{o, alt->offset, alt->size});
        ++remaining_extents_;
        continue;
      }
      park_resolved(*rec, o);
      continue;
    }
    needed_[rec->tape.value()].push_back(
        catalog::TapeExtent{o, rec->offset, rec->size});
    ++remaining_extents_;
  }
  const auto tapes_touched = static_cast<std::uint32_t>(needed_.size());

  // Partition needed tapes into mounted vs offline (per library).
  std::vector<std::pair<TapeId, Bytes>> offline;  // with requested bytes
  std::vector<DriveId> mounted_serving;
  for (const auto& [tape_value, extents] : needed_) {
    const TapeId tp{tape_value};
    Bytes bytes{};
    for (const auto& e : extents) bytes += e.size;
    if (const auto holder = system_.drive_holding(tp)) {
      mounted_serving.push_back(*holder);
    } else if (repair_claimed(tp) || scrub_claimed(tp)) {
      // A background job is mounting this tape right now; queueing it too
      // would mount the cartridge twice. The job's release re-dispatches.
    } else {
      offline.emplace_back(tp, bytes);
    }
  }
  // Longest-requested-work first, so the biggest transfers start earliest.
  std::sort(offline.begin(), offline.end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second > b.second;
              return a.first < b.first;
            });
  for (const auto& [tp, bytes] : offline) {
    lib_queue_[system_.library_of_tape(tp).index()].push_back(tp);
  }

  // Kick off drives holding requested tapes.
  std::sort(mounted_serving.begin(), mounted_serving.end());
  for (const DriveId d : mounted_serving) {
    engine_.schedule_in(Seconds{0.0}, [this, d]() { serve_mounted(d); });
  }

  // Drives whose mounted tape holds nothing requested may switch at once.
  // Least-popular mounted tapes go first (the [11] replacement policy);
  // empty drives are cheapest of all and lead the order.
  std::vector<DriveId> idle_candidates;
  for (std::uint32_t dv = 0; dv < plan_->spec().total_drives(); ++dv) {
    const DriveId d{dv};
    if (!switch_eligible(d)) continue;
    if (fault_ != nullptr && !drive_available(d)) continue;
    const tape::TapeDrive& drive = system_.drive(d);
    if (!drive.empty() && needed_.count(drive.mounted().value()) != 0) {
      continue;  // will serve first, then fall into next_action()
    }
    idle_candidates.push_back(d);
  }
  const auto& popularity = plan_->mount_policy.tape_popularity;
  auto eviction_cost = [&](DriveId d) {
    const tape::TapeDrive& drive = system_.drive(d);
    if (drive.empty()) return -1.0;
    if (popularity.empty()) return 0.0;
    return popularity[drive.mounted().index()];
  };
  std::sort(idle_candidates.begin(), idle_candidates.end(),
            [&](DriveId a, DriveId b) {
              const double ca = eviction_cost(a);
              const double cb = eviction_cost(b);
              if (ca != cb) return ca < cb;
              return a < b;
            });
  for (const DriveId d : idle_candidates) {
    engine_.schedule_in(Seconds{0.0}, [this, d]() { next_action(d); });
  }
  if (fault_ != nullptr) {
    // A library whose entire drive fleet is down would otherwise leave its
    // queue untouched and wedge the run.
    for (std::uint32_t lib = 0; lib < plan_->spec().num_libraries; ++lib) {
      engine_.schedule_in(Seconds{0.0}, [this, lib]() {
        ensure_progress(LibraryId{lib});
      });
    }
  }

  // Arm the deadline last: equal-time dispatch is FIFO, so service events
  // scheduled above win ties at the deadline instant.
  if (has_deadline && remaining_extents_ > 0) {
    deadline_event_ =
        engine_.schedule_at(deadline_abs_, [this]() { on_deadline(); });
  }

  engine_.run();
  TAPESIM_ASSERT_MSG(remaining_extents_ == 0,
                     "request finished with unserved objects");
  TAPESIM_ASSERT(needed_.empty());
  TAPESIM_ASSERT_MSG(hedges_.empty(), "hedge race outlived its request");

  metrics::RequestOutcome outcome;
  outcome.request = id;
  outcome.bytes = total_bytes;
  // An expired request is answered ("sorry, too late") exactly at its
  // deadline; trailing doomed activity drains on the simulator's clock but
  // not on the caller's.
  outcome.response =
      expired_ ? deadline_abs_ - t0_ : last_transfer_end_ - t0_;
  outcome.priority = priority_;
  outcome.deadline = deadline_abs_ - t0_;  // infinity stays infinity
  outcome.bytes_expired = bytes_expired_this_request_;
  outcome.extents_expired = extents_expired_this_request_;
  outcome.bytes_unavailable = bytes_unavailable_this_request_;
  outcome.extents_unavailable = extents_unavailable_this_request_;
  outcome.failovers = failovers_this_request_;
  outcome.extents_parked = extents_parked_this_request_;
  if (extents_parked_this_request_ > 0) {
    ++outage_stats_.requests_parked;
    if (config_.tracer != nullptr) {
      config_.tracer->registry().counter("outage.requests_parked").inc();
    }
  }
  outcome.mount_retries = mount_retries_this_request_;
  outcome.media_retries = media_retries_this_request_;
  outcome.served_from_replica = served_from_replica_this_request_;
  outcome.repaired = repaired_this_request_;
  outcome.latent_hits = latent_hits_this_request_;
  if (expired_) {
    outcome.status = metrics::RequestStatus::kDeadlineExpired;
  } else if (bytes_unavailable_this_request_.count() == 0) {
    outcome.status = metrics::RequestStatus::kServed;
  } else if (bytes_unavailable_this_request_ == total_bytes) {
    outcome.status = metrics::RequestStatus::kUnavailable;
  } else {
    outcome.status = metrics::RequestStatus::kPartial;
  }
  if (last_finisher_.valid()) {
    outcome.seek = drive_req_[last_finisher_.index()].seek_done;
    outcome.transfer = drive_req_[last_finisher_.index()].transfer_done;
  } else {
    // Nothing was served; only possible when every byte was unavailable
    // or the deadline fired before the first extent landed.
    TAPESIM_ASSERT(outcome.status == metrics::RequestStatus::kUnavailable ||
                   outcome.status ==
                       metrics::RequestStatus::kDeadlineExpired);
  }
  outcome.switch_time = outcome.response - outcome.seek - outcome.transfer;
  // Clamp floating-point dust from the subtraction to exactly zero.
  if (outcome.switch_time.count() < 1e-9 &&
      outcome.switch_time.count() > -1e-6) {
    outcome.switch_time = Seconds{0.0};
  }
  outcome.robot_wait = robot_wait_this_request_;
  outcome.tape_switches = switches_this_request_;
  outcome.tapes_touched = tapes_touched;
  for (const auto& dr : drive_req_) {
    if (dr.used) ++outcome.drives_used;
  }
  // Accounting identity: the critical drive spends the whole response in
  // seek, transfer, or switch-side activity, so switch time is never
  // negative (up to floating-point slack).
  TAPESIM_ASSERT_MSG(outcome.switch_time.count() >= -1e-6,
                     "switch-time decomposition went negative");
  if (config_.tracer != nullptr) {
    obs::Tracer& tr = *config_.tracer;
    tr.record(obs::Span{obs::Track::kRequest, id.value(),
                        obs::Phase::kRequest, t0_, t0_ + outcome.response, id,
                        TapeId{}, {}});
    if (expired_) {
      tr.record(obs::Span{obs::Track::kOverload, id.value(),
                          obs::Phase::kExpired, t0_, t0_ + outcome.response,
                          id, TapeId{}, {}});
    }
    const auto layout = obs::BucketLayout::exponential(0.1, 1e5, 1.3);
    tr.registry().histogram("sched.request.response_s", layout)
        .record(outcome.response.count());
    tr.registry().histogram("sched.request.robot_wait_s", layout)
        .record(outcome.robot_wait.count());
    tr.registry().counter("sched.request.switches")
        .inc(outcome.tape_switches);
    tr.registry().counter("sched.requests").inc();
    if (fault_ != nullptr) {
      const fault::FaultCounters& c = fault_->counters();
      tr.registry().counter("fault.drive_failures")
          .inc(c.drive_failures - prev_fault_counters_.drive_failures);
      tr.registry().counter("fault.mount_failures")
          .inc(c.mount_failures - prev_fault_counters_.mount_failures);
      tr.registry().counter("fault.media_errors")
          .inc(c.media_errors - prev_fault_counters_.media_errors);
      tr.registry().counter("fault.robot_jams")
          .inc(c.robot_jams - prev_fault_counters_.robot_jams);
      tr.registry().counter("fault.failovers").inc(outcome.failovers);
      if (config_.faults.latent_decay_mtbf.count() > 0.0) {
        tr.registry().counter("fault.latent_events")
            .inc(c.latent_events - prev_fault_counters_.latent_events);
        tr.registry().counter("fault.latent_observed")
            .inc(c.latent_observed - prev_fault_counters_.latent_observed);
      }
      if (config_.faults.failslow.enabled()) {
        tr.registry().counter("failslow.episodes")
            .inc((c.slow_episodes + c.robot_slow_episodes) -
                 (prev_fault_counters_.slow_episodes +
                  prev_fault_counters_.robot_slow_episodes));
        tr.registry().gauge("failslow.drive_s")
            .set(c.slow_drive_seconds);
      }
      prev_fault_counters_ = c;
    }
    if (replicated_) {
      tr.registry().counter("sched.served_from_replica")
          .inc(outcome.served_from_replica);
    }
    tr.set_current_request(RequestId{});
  }
  in_request_ = false;
  return outcome;
}

}  // namespace tapesim::sched
