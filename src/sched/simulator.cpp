#include "sched/simulator.hpp"

#include <algorithm>

#include "obs/tracer.hpp"
#include "util/assert.hpp"
#include "util/log.hpp"

namespace tapesim::sched {

RetrievalSimulator::RetrievalSimulator(const core::PlacementPlan& plan,
                                       SimulatorConfig config)
    : plan_(&plan),
      system_(plan.spec(), engine_),
      catalog_(plan.to_catalog()),
      config_(config),
      disk_streams_(engine_, "disk", config.max_concurrent_streams) {
  catalog_.validate(plan.spec().library.tape_capacity);
  for (const auto& [drive, tp] : plan_->mount_policy.initial_mounts) {
    system_.setup_mount(tp, drive);
  }
  drive_req_.resize(plan.spec().total_drives());
  lib_queue_.resize(plan.spec().num_libraries);
  if (config_.tracer != nullptr) {
    config_.tracer->bind(engine_);
    config_.tracer->observe(system_);
  }
}

RetrievalSimulator::~RetrievalSimulator() {
  // The tracer outlives us; make sure it stops referencing our engine and
  // drives. Spans and metrics stay available for export.
  if (config_.tracer != nullptr) config_.tracer->detach();
}

bool RetrievalSimulator::switch_eligible(DriveId d) const {
  return !plan_->mount_policy.pinned(d);
}

std::vector<catalog::TapeExtent> RetrievalSimulator::plan_extent_order(
    DriveId d) const {
  const tape::TapeDrive& drive = system_.drive(d);
  const TapeId tp = drive.mounted();
  const auto it = needed_.find(tp.value());
  TAPESIM_ASSERT(it != needed_.end());
  std::vector<catalog::TapeExtent> extents = it->second;
  if (!config_.optimize_seek_order || extents.size() < 2) return extents;

  std::sort(extents.begin(), extents.end(),
            [](const catalog::TapeExtent& a, const catalog::TapeExtent& b) {
              return a.offset < b.offset;
            });
  // Reads always move forward over an object, so compare the exact head
  // travel of an ascending sweep against a descending one and take the
  // cheaper. Ascending: reach the first extent, then cross the gaps.
  // Descending: reach the last extent, then jump backward over each
  // just-read extent to the start of the previous one.
  const Bytes head = drive.head();
  auto dist = [](Bytes a, Bytes b) { return Bytes::distance(a, b).count(); };
  std::uint64_t asc = dist(head, extents.front().offset);
  for (std::size_t i = 1; i < extents.size(); ++i) {
    asc += dist(extents[i - 1].offset + extents[i - 1].size,
                extents[i].offset);
  }
  std::uint64_t desc = dist(head, extents.back().offset);
  for (std::size_t i = extents.size(); i-- > 1;) {
    desc += dist(extents[i].offset + extents[i].size,
                 extents[i - 1].offset);
  }
  if (desc < asc) std::reverse(extents.begin(), extents.end());
  return extents;
}

void RetrievalSimulator::serve_mounted(DriveId d) {
  tape::TapeDrive& drive = system_.drive(d);
  const TapeId tp = drive.mounted();
  TAPESIM_ASSERT(tp.valid());
  const auto it = needed_.find(tp.value());
  if (it == needed_.end()) {
    next_action(d);
    return;
  }
  auto extents = plan_extent_order(d);
  needed_.erase(it);
  drive_req_[d.index()].used = true;

  // Chain locate+transfer for each extent through the engine. The shared
  // index walks the captured extent list. The recursive step function
  // captures only a weak reference to itself — pending engine events hold
  // the owning shared_ptr, so the chain frees itself when it ends (a
  // self-owning std::function would leak by reference cycle).
  auto state = std::make_shared<std::pair<std::vector<catalog::TapeExtent>,
                                          std::size_t>>(std::move(extents),
                                                        std::size_t{0});
  auto step = std::make_shared<std::function<void()>>();
  *step = [this, d, state,
           weak = std::weak_ptr<std::function<void()>>(step)]() {
    tape::TapeDrive& dr = system_.drive(d);
    auto& [list, index] = *state;
    if (index >= list.size()) {
      next_action(d);
      return;
    }
    const std::shared_ptr<std::function<void()>> self = weak.lock();
    TAPESIM_ASSERT(self != nullptr);
    const catalog::TapeExtent extent = list[index];
    ++index;
    const Seconds locate = dr.start_locate(extent.offset);
    drive_req_[d.index()].seek += locate;
    engine_.schedule_in(locate, [this, d, extent, self]() {
      system_.drive(d).finish_locate();
      // A finite disk array may make the drive wait for a streaming slot;
      // that wait lands in the switch-side component of the decomposition.
      disk_streams_.acquire([this, d, extent, self]() {
        tape::TapeDrive& dr2 = system_.drive(d);
        const Seconds xfer = dr2.start_transfer(extent.size);
        drive_req_[d.index()].transfer += xfer;
        engine_.schedule_in(xfer, [this, d, self]() {
          disk_streams_.release();
          system_.drive(d).finish_transfer();
          extent_done(d);
          (*self)();
        });
      });
    });
  };
  (*step)();
}

void RetrievalSimulator::extent_done(DriveId d) {
  TAPESIM_ASSERT(remaining_extents_ > 0);
  --remaining_extents_;
  drive_req_[d.index()].finish = engine_.now();
  if (engine_.now() > last_transfer_end_ ||
      (engine_.now() == last_transfer_end_ && !last_finisher_.valid())) {
    last_transfer_end_ = engine_.now();
    last_finisher_ = d;
  }
}

void RetrievalSimulator::next_action(DriveId d) {
  if (!switch_eligible(d)) return;
  const LibraryId lib = system_.library_of_drive(d);
  auto& queue = lib_queue_[lib.index()];
  if (queue.empty()) return;
  const TapeId target = queue.front();
  queue.pop_front();
  if (config_.tracer != nullptr) {
    // The tape has been demanded since the request started; a drive just
    // picked it up, ending its time in the library queue.
    config_.tracer->record(obs::Span{
        obs::Track::kRequest, config_.tracer->current_request().value(),
        obs::Phase::kQueueWait, t0_, engine_.now(),
        config_.tracer->current_request(), target, {}});
  }
  begin_switch(d, target);
}

void RetrievalSimulator::begin_switch(DriveId d, TapeId target) {
  tape::TapeDrive& drive = system_.drive(d);
  drive_req_[d.index()].used = true;
  tape::TapeLibrary& lib = system_.library(system_.library_of_drive(d));

  // The robot must be at the drive for the whole cartridge handoff: it
  // receives the ejecting cartridge, returns it to its cell, fetches the
  // new one, and inserts it. Only then does the drive-side load/thread run
  // (robot already free). Rewind needs no robot and happens beforehand.
  auto exchange = [this, d, &lib, target](bool had_tape) {
    const Seconds asked_at = engine_.now();
    lib.robot().acquire([this, d, &lib, target, had_tape, asked_at]() {
      robot_wait_this_request_ += engine_.now() - asked_at;
      if (config_.tracer != nullptr && engine_.now() > asked_at) {
        config_.tracer->record(obs::Span{
            obs::Track::kDrive, d.value(), obs::Phase::kRobotWait, asked_at,
            engine_.now(), config_.tracer->current_request(), target, {}});
      }
      auto do_moves = [this, d, &lib, target, had_tape]() {
        const Seconds move = had_tape ? lib.robot_exchange_time()
                                      : lib.robot_move_time();
        engine_.schedule_in(move, [this, d, &lib, target]() {
          if (!config_.robot_holds_load) lib.robot().release();
          tape::TapeDrive& dr = system_.drive(d);
          const Seconds load = dr.start_load(target);
          engine_.schedule_in(load, [this, d, &lib, target]() {
            if (config_.robot_holds_load) lib.robot().release();
            system_.drive(d).finish_load();
            system_.note_mounted(target, d);
            ++switches_this_request_;
            ++total_switches_;
            serve_mounted(d);
          });
        });
      };
      if (!had_tape) {
        do_moves();
        return;
      }
      // Eject under robot supervision, then carry.
      tape::TapeDrive& dr = system_.drive(d);
      const Seconds unload = dr.start_unload();
      engine_.schedule_in(unload, [this, d, do_moves]() {
        const TapeId old = system_.drive(d).finish_unload();
        system_.note_unmounted(old);
        do_moves();
      });
    });
  };

  if (drive.empty()) {
    exchange(false);
    return;
  }

  const Seconds rewind = drive.start_rewind();
  engine_.schedule_in(rewind, [this, d, exchange]() {
    system_.drive(d).finish_rewind();
    exchange(true);
  });
}

metrics::RequestOutcome RetrievalSimulator::run_request(RequestId id) {
  TAPESIM_ASSERT_MSG(!in_request_, "requests are strictly sequential");
  in_request_ = true;
  if (config_.tracer != nullptr) config_.tracer->set_current_request(id);
  const workload::Workload& wl = plan_->workload();
  const workload::Request& request = wl.request(id);

  // Reset per-request state.
  t0_ = engine_.now();
  last_transfer_end_ = t0_;
  last_finisher_ = DriveId{};
  switches_this_request_ = 0;
  robot_wait_this_request_ = Seconds{};
  needed_.clear();
  remaining_extents_ = 0;
  for (auto& dr : drive_req_) dr = DriveReq{};
  for (auto& q : lib_queue_) q.clear();

  // Resolve the request through the indexing database.
  Bytes total_bytes{};
  for (const ObjectId o : request.objects) {
    const catalog::ObjectRecord* rec = catalog_.lookup(o);
    TAPESIM_ASSERT_MSG(rec != nullptr, "request references unplaced object");
    needed_[rec->tape.value()].push_back(
        catalog::TapeExtent{o, rec->offset, rec->size});
    ++remaining_extents_;
    total_bytes += rec->size;
  }
  const auto tapes_touched = static_cast<std::uint32_t>(needed_.size());

  // Partition needed tapes into mounted vs offline (per library).
  std::vector<std::pair<TapeId, Bytes>> offline;  // with requested bytes
  std::vector<DriveId> mounted_serving;
  for (const auto& [tape_value, extents] : needed_) {
    const TapeId tp{tape_value};
    Bytes bytes{};
    for (const auto& e : extents) bytes += e.size;
    if (const auto holder = system_.drive_holding(tp)) {
      mounted_serving.push_back(*holder);
    } else {
      offline.emplace_back(tp, bytes);
    }
  }
  // Longest-requested-work first, so the biggest transfers start earliest.
  std::sort(offline.begin(), offline.end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second > b.second;
              return a.first < b.first;
            });
  for (const auto& [tp, bytes] : offline) {
    lib_queue_[system_.library_of_tape(tp).index()].push_back(tp);
  }

  // Kick off drives holding requested tapes.
  std::sort(mounted_serving.begin(), mounted_serving.end());
  for (const DriveId d : mounted_serving) {
    engine_.schedule_in(Seconds{0.0}, [this, d]() { serve_mounted(d); });
  }

  // Drives whose mounted tape holds nothing requested may switch at once.
  // Least-popular mounted tapes go first (the [11] replacement policy);
  // empty drives are cheapest of all and lead the order.
  std::vector<DriveId> idle_candidates;
  for (std::uint32_t dv = 0; dv < plan_->spec().total_drives(); ++dv) {
    const DriveId d{dv};
    if (!switch_eligible(d)) continue;
    const tape::TapeDrive& drive = system_.drive(d);
    if (!drive.empty() && needed_.count(drive.mounted().value()) != 0) {
      continue;  // will serve first, then fall into next_action()
    }
    idle_candidates.push_back(d);
  }
  const auto& popularity = plan_->mount_policy.tape_popularity;
  auto eviction_cost = [&](DriveId d) {
    const tape::TapeDrive& drive = system_.drive(d);
    if (drive.empty()) return -1.0;
    if (popularity.empty()) return 0.0;
    return popularity[drive.mounted().index()];
  };
  std::sort(idle_candidates.begin(), idle_candidates.end(),
            [&](DriveId a, DriveId b) {
              const double ca = eviction_cost(a);
              const double cb = eviction_cost(b);
              if (ca != cb) return ca < cb;
              return a < b;
            });
  for (const DriveId d : idle_candidates) {
    engine_.schedule_in(Seconds{0.0}, [this, d]() { next_action(d); });
  }

  engine_.run();
  TAPESIM_ASSERT_MSG(remaining_extents_ == 0,
                     "request finished with unserved objects");
  TAPESIM_ASSERT(needed_.empty());

  metrics::RequestOutcome outcome;
  outcome.request = id;
  outcome.bytes = total_bytes;
  outcome.response = last_transfer_end_ - t0_;
  TAPESIM_ASSERT(last_finisher_.valid());
  outcome.seek = drive_req_[last_finisher_.index()].seek;
  outcome.transfer = drive_req_[last_finisher_.index()].transfer;
  outcome.switch_time = outcome.response - outcome.seek - outcome.transfer;
  // Clamp floating-point dust from the subtraction to exactly zero.
  if (outcome.switch_time.count() < 1e-9 &&
      outcome.switch_time.count() > -1e-6) {
    outcome.switch_time = Seconds{0.0};
  }
  outcome.robot_wait = robot_wait_this_request_;
  outcome.tape_switches = switches_this_request_;
  outcome.tapes_touched = tapes_touched;
  for (const auto& dr : drive_req_) {
    if (dr.used) ++outcome.drives_used;
  }
  // Accounting identity: the critical drive spends the whole response in
  // seek, transfer, or switch-side activity, so switch time is never
  // negative (up to floating-point slack).
  TAPESIM_ASSERT_MSG(outcome.switch_time.count() >= -1e-6,
                     "switch-time decomposition went negative");
  if (config_.tracer != nullptr) {
    obs::Tracer& tr = *config_.tracer;
    tr.record(obs::Span{obs::Track::kRequest, id.value(),
                        obs::Phase::kRequest, t0_, last_transfer_end_, id,
                        TapeId{}, {}});
    const auto layout = obs::BucketLayout::exponential(0.1, 1e5, 1.3);
    tr.registry().histogram("sched.request.response_s", layout)
        .record(outcome.response.count());
    tr.registry().histogram("sched.request.robot_wait_s", layout)
        .record(outcome.robot_wait.count());
    tr.registry().counter("sched.request.switches")
        .inc(outcome.tape_switches);
    tr.registry().counter("sched.requests").inc();
    tr.set_current_request(RequestId{});
  }
  in_request_ = false;
  return outcome;
}

}  // namespace tapesim::sched
