// Recovery-work governor: retry budgets, circuit breakers, and
// metastable-failure protection.
//
// PRs 2-9 gave the scheduler a rich reactive-recovery arsenal — mount and
// media retries, replica failover, hedged reads, two-phase repair, DR
// surges, scrub — but each path self-regulates in isolation. A strong
// enough trigger (a flash crowd colliding with a fault burst) can push
// the fleet into a *metastable* regime where the recovery work itself
// keeps goodput collapsed after the trigger ends: retries multiply
// demand, failovers burn extra mounts, hedges burn extra bandwidth, and
// the backlog never drains. This layer governs all amplification work
// with three composable mechanisms:
//
//   1. Per-class retry budgets: token buckets that earn tokens from
//      first-attempt demand and spend one per amplification attempt, so
//      retry traffic is capped as a *ratio* of useful work instead of
//      multiplying under stress. Over-budget attempts fail fast into the
//      existing unavailable/expired ladders with exact accounting
//      (attempts == admitted + fast_failed, always).
//   2. Per-resource circuit breakers: drive-, library-, and robot-scoped
//      breakers (closed -> open on failure-rate-over-window -> half-open
//      probing) that short-circuit doomed attempts before they consume
//      mount/robot capacity. Probing is deterministic: the first
//      attempt to arrive after the open window expires is the probe
//      (event order is deterministic, so probe selection is too).
//   3. Metastable-state detection + load-aware shedding: a goodput
//      collapse detector (binned served-rate against an EWMA of
//      pre-trigger goodput, frozen while shedding so the baseline cannot
//      adapt downward into the collapse) that sheds amplification work
//      in escalating levels — pause scrub, then clamp repair/DR
//      bandwidth, then tighten hedge and retry budgets — and releases in
//      reverse order with hysteresis as goodput recovers.
//
// The governor is a *passive* deterministic state machine: it draws no
// randomness, schedules no engine events, and every state transition
// happens lazily at a query or feed point (the same discipline as the
// fault timelines). A disabled governor adds zero draws and zero events,
// so governor-off runs are bit-identical to baseline.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/error.hpp"
#include "util/units.hpp"

namespace tapesim::obs {
class Tracer;
class Counter;
class Gauge;
}  // namespace tapesim::obs

namespace tapesim::sched {

/// Classes of amplification work the budgets meter.
enum class GovernorClass : std::uint8_t {
  kRetry = 0,     ///< Mount/media retry attempts on an existing chain.
  kFailover = 1,  ///< Re-routes to another replica after a failure.
  kHedge = 2,     ///< Speculative hedged-read launches.
};

/// Resource scopes the circuit breakers protect.
enum class BreakerScope : std::uint8_t {
  kDrive = 0,    ///< One lane per drive (mount outcomes).
  kLibrary = 1,  ///< One lane per library (extent-serve outcomes).
  kRobot = 2,    ///< One lane per library robot (jam outcomes).
};

enum class BreakerState : std::uint8_t { kClosed, kOpen, kHalfOpen };

[[nodiscard]] const char* to_string(GovernorClass c);
[[nodiscard]] const char* to_string(BreakerScope s);
[[nodiscard]] const char* to_string(BreakerState s);

/// Token-bucket budgets for amplification work: each class earns
/// `ratio` tokens per unit of first-attempt demand and spends one token
/// per attempt, capped at `burst` banked tokens.
struct GovernorBudgetConfig {
  bool enabled = true;
  /// Tokens earned per first-attempt demand unit, per class, in (0, 1].
  double retry_ratio = 0.5;
  double failover_ratio = 0.5;
  double hedge_ratio = 0.25;
  /// Bucket capacity (maximum banked attempts); buckets start full so a
  /// cold start does not fail-fast the first legitimate retries.
  double burst = 8.0;

  [[nodiscard]] Status try_validate() const;
};

/// Failure-rate-over-window circuit breakers.
struct GovernorBreakerConfig {
  bool enabled = true;
  /// Open when the failure fraction over the window reaches this, (0, 1].
  double failure_threshold = 0.6;
  /// Outcomes inside the window required before the rate is trusted.
  std::uint32_t min_samples = 5;
  /// Sliding window the failure rate is computed over.
  Seconds window{600.0};
  /// Open dwell: attempts are short-circuited this long, then the
  /// breaker goes half-open and the next attempt probes.
  Seconds open_duration{300.0};
  /// Consecutive half-open successes required to close.
  std::uint32_t close_after = 2;

  [[nodiscard]] Status try_validate() const;
};

/// Goodput-collapse detector + escalating shed ladder.
struct GovernorMetastableConfig {
  bool enabled = true;
  /// Served-goodput accounting bin; the detector evaluates once per bin.
  Seconds bin{120.0};
  /// Smoothing factor of the pre-trigger goodput EWMA, in (0, 1].
  double ewma_alpha = 0.2;
  /// Hysteresis band on the rate/EWMA ratio: below `collapse_fraction`
  /// counts as collapsed, at or above `recover_fraction` counts as
  /// recovered, and the band between them holds the current level.
  double collapse_fraction = 0.5;
  double recover_fraction = 0.8;
  /// Queue depth that must accompany a collapsed rate (low goodput with
  /// an empty queue is an idle fleet, not a metastable one).
  std::size_t min_queue_depth = 4;
  /// Consecutive collapsed bins before the shed level escalates.
  std::uint32_t trip_bins = 2;
  /// Consecutive recovered bins before the shed level releases.
  std::uint32_t release_bins = 2;
  /// Multiplier on repair/DR bandwidth fractions at shed level >= 2.
  double repair_clamp = 0.25;
  /// Multiplier on budget earn ratios and the hedge bandwidth budget at
  /// shed level >= 3.
  double budget_clamp = 0.5;

  [[nodiscard]] Status try_validate() const;
};

/// Master governor configuration. Defaults inert: a default-constructed
/// GovernorConfig is the exact ungoverned simulator.
struct GovernorConfig {
  bool enabled = false;
  GovernorBudgetConfig budgets{};
  GovernorBreakerConfig breaker{};
  GovernorMetastableConfig metastable{};

  [[nodiscard]] Status try_validate() const;
};

/// Exact per-class admission ledger. Invariants (checked by benches and
/// the chaos soak): attempts == admitted + fast_failed and
/// fast_failed == budget_denied + breaker_denied.
struct BudgetLedger {
  std::uint64_t demand = 0;    ///< First-attempt demand units observed.
  std::uint64_t attempts = 0;  ///< Admission decisions requested.
  std::uint64_t admitted = 0;
  std::uint64_t fast_failed = 0;
  std::uint64_t budget_denied = 0;   ///< fast_failed: bucket empty.
  std::uint64_t breaker_denied = 0;  ///< fast_failed: breaker open.
};

/// Running totals, mirrored 1:1 into the obs registry's governor.*
/// counters at event time.
struct GovernorStats {
  std::array<BudgetLedger, 3> ledgers{};  ///< Indexed by GovernorClass.
  std::uint64_t breaker_opened = 0;    ///< closed -> open trips.
  std::uint64_t breaker_reopened = 0;  ///< half-open probe failures.
  std::uint64_t breaker_closed = 0;    ///< half-open -> closed recoveries.
  std::uint64_t breaker_probes = 0;    ///< Outcomes observed half-open.
  std::uint64_t metastable_trips = 0;     ///< Shed level 0 -> 1 onsets.
  std::uint64_t metastable_releases = 0;  ///< Shed level 1 -> 0 ends.
  std::uint64_t shed_escalations = 0;  ///< Every level increment.

  [[nodiscard]] const BudgetLedger& ledger(GovernorClass c) const {
    return ledgers[static_cast<std::size_t>(c)];
  }
};

/// The governor itself. Passive and deterministic: no RNG, no engine
/// events; every method takes the current simulation time and advances
/// lazy state (breaker dwells, goodput bins) before acting.
class RecoveryGovernor {
 public:
  RecoveryGovernor() = default;

  /// Sizes the breaker lanes and attaches the obs mirror (tracer may be
  /// null). Called once by the simulator constructor; cheap when the
  /// config is disabled.
  void configure(const GovernorConfig& config, std::size_t drives,
                 std::size_t libraries, obs::Tracer* tracer);

  [[nodiscard]] bool enabled() const { return config_.enabled; }
  [[nodiscard]] const GovernorConfig& config() const { return config_; }
  [[nodiscard]] const GovernorStats& stats() const { return stats_; }

  // --- per-class budgets ---

  /// One unit of first-attempt demand for `cls` (earns tokens).
  void note_demand(GovernorClass cls);

  /// One admission decision against the class budget only. Exactly one
  /// ledger slot (admitted or fast_failed) is charged per call.
  [[nodiscard]] bool admit(GovernorClass cls);

  /// Admission decision gated by a resource breaker first, then the
  /// class budget. Breaker denials and budget denials are accounted
  /// separately but both fail fast.
  [[nodiscard]] bool admit(GovernorClass cls, BreakerScope scope,
                           std::uint32_t lane, Seconds now);

  // --- per-resource circuit breakers ---

  /// Feeds one attempt outcome on a resource. Drives the closed -> open
  /// -> half-open -> closed state machine; half-open outcomes count as
  /// probes.
  void note_outcome(BreakerScope scope, std::uint32_t lane, bool ok,
                    Seconds now);

  /// Pure enforcement peek: true while the breaker is open (dwell not
  /// yet expired). Advances the lazy open -> half-open transition.
  [[nodiscard]] bool breaker_blocked(BreakerScope scope, std::uint32_t lane,
                                     Seconds now);

  [[nodiscard]] BreakerState breaker_state(BreakerScope scope,
                                           std::uint32_t lane, Seconds now);

  /// Breakers currently tripped (open or half-open).
  [[nodiscard]] std::size_t breakers_open() const { return open_count_; }

  // --- metastability detection + shed ladder ---

  /// Goodput bytes served (deadline-met work), stamped at `now`.
  void note_served(Bytes amount, Seconds now);

  /// Latest pending-queue depth (sampled by the feeder at its own
  /// cadence; the detector reads the most recent value per bin).
  void note_queue_depth(std::size_t depth, Seconds now);

  /// Current shed level, 0 (none) through 3 (full shed).
  [[nodiscard]] std::uint32_t shed_level() const { return shed_level_; }

  /// Level >= 1: background scrub passes must not start.
  [[nodiscard]] bool scrub_paused() const;

  /// Level >= 2: multiplier on repair/DR bandwidth fractions (1.0
  /// below level 2).
  [[nodiscard]] double repair_clamp() const;

  /// Level >= 3: multiplier on budget earn ratios and the hedge
  /// bandwidth budget (1.0 below level 3).
  [[nodiscard]] double budget_clamp() const;

  /// Closes the books at run end: emits kBreaker spans for any breaker
  /// still tripped and refreshes the gauges. Idempotent per open window.
  void finish(Seconds now);

 private:
  struct Outcome {
    Seconds at{};
    bool ok = false;
  };

  /// One breaker lane: a ring of recent outcomes plus the state machine.
  struct Breaker {
    BreakerState state = BreakerState::kClosed;
    Seconds opened_at{};   ///< First trip of the current open episode.
    Seconds open_until{};  ///< Dwell end; half-open after this.
    std::uint32_t half_open_ok = 0;
    std::array<Outcome, 32> ring{};
    std::uint32_t ring_size = 0;  ///< Valid entries (<= ring.size()).
    std::uint32_t ring_next = 0;  ///< Next write slot.
  };

  [[nodiscard]] Breaker& lane(BreakerScope scope, std::uint32_t index);
  void advance(Breaker& b, Seconds now);
  [[nodiscard]] bool over_threshold(const Breaker& b, Seconds now) const;
  void open_breaker(Breaker& b, BreakerScope scope, std::uint32_t index,
                    Seconds now, bool reopen);
  void close_breaker(Breaker& b, BreakerScope scope, std::uint32_t index,
                     Seconds now);
  void record_decision(GovernorClass cls, bool admitted, bool breaker_denied);
  void roll_bins(Seconds now);
  void evaluate_bin(double rate);
  void set_shed_level(std::uint32_t level);
  [[nodiscard]] std::uint32_t span_lane(BreakerScope scope,
                                        std::uint32_t index) const;

  GovernorConfig config_{};
  obs::Tracer* tracer_ = nullptr;
  GovernorStats stats_{};

  // Budgets: banked tokens per class; buckets start full (burst).
  std::array<double, 3> tokens_{};

  // Breakers, one vector per scope (library and robot share lane count).
  std::array<std::vector<Breaker>, 3> breakers_{};
  std::size_t open_count_ = 0;

  // Metastable detector.
  Seconds bin_start_{};
  double bin_bytes_ = 0.0;
  double ewma_rate_ = 0.0;  ///< Pre-trigger goodput EWMA (bytes/s).
  bool ewma_ready_ = false;
  std::size_t queue_depth_ = 0;
  std::uint32_t collapsed_bins_ = 0;
  std::uint32_t recovered_bins_ = 0;
  std::uint32_t shed_level_ = 0;

  // Resolved obs instruments (null when no tracer): one counter per
  // mirrored stat so the event path touches no string maps.
  struct Mirror {
    std::array<obs::Counter*, 3> attempts{};
    std::array<obs::Counter*, 3> admitted{};
    std::array<obs::Counter*, 3> fast_failed{};
    obs::Counter* breaker_opened = nullptr;
    obs::Counter* breaker_reopened = nullptr;
    obs::Counter* breaker_closed = nullptr;
    obs::Counter* breaker_probes = nullptr;
    obs::Counter* metastable_trips = nullptr;
    obs::Counter* metastable_releases = nullptr;
    obs::Counter* shed_escalations = nullptr;
    obs::Gauge* shed_level = nullptr;
    obs::Gauge* breakers_open = nullptr;
  } mirror_{};
};

}  // namespace tapesim::sched
