#include "sched/scrub.hpp"

namespace tapesim::sched {

Status ScrubConfig::try_validate() const {
  StatusBuilder check("ScrubConfig");
  check.require(interval.count() >= 0.0, "scrub interval must be >= 0");
  check.require(!enabled || interval.count() > 0.0,
                "scrub interval must be positive when scrubbing is enabled");
  check.require(bandwidth_fraction > 0.0 && bandwidth_fraction <= 1.0,
                "scrub bandwidth fraction must be in (0, 1]");
  check.require(!enabled || max_concurrent > 0,
                "scrubbing needs at least one drive slot when enabled");
  check.require(segment.count() > 0, "scrub segment must be positive");
  return check.take();
}

Status EvacuationConfig::try_validate() const {
  StatusBuilder check("EvacuationConfig");
  check.require(threshold >= 0.0 && threshold <= 1.0,
                "evacuation threshold must be in [0, 1]");
  check.require(error_weight >= 0.0, "error weight must be >= 0");
  check.require(latent_weight >= 0.0, "latent weight must be >= 0");
  check.require(mount_rating > 0.0, "mount rating must be positive");
  return check.take();
}

}  // namespace tapesim::sched
