// Proactive integrity: background scrubbing and health-driven evacuation.
//
// Latent media decay (fault/model.hpp) damages cartridges silently; nothing
// escalates until a read trips over the damage. The scrub scheduler closes
// that gap: idle drives cycle through full-tape verification passes —
// real robot/load/locate/stream physics, strictly behind foreground and
// repair traffic, duty-cycle capped like repair — surfacing latent damage
// into the per-tape health the catalog tracks. Evacuation acts on what
// scrubbing (and ordinary reads) learn: when a cartridge's health score
// falls below threshold, every object on it is copied off via the
// two-phase repair path *before* requests start failing, and the tape is
// retired from serving rotation.
#pragma once

#include <algorithm>
#include <cstdint>

#include "util/error.hpp"
#include "util/ids.hpp"
#include "util/units.hpp"

namespace tapesim::sched {

struct ScrubConfig {
  /// Master switch; scrubbing also requires an enabled fault model (the
  /// injector owns the decay timelines being verified).
  bool enabled = false;
  /// Target verification cadence per cartridge: a tape becomes due for a
  /// pass once this much simulated time passed since its last one.
  Seconds interval{7 * 86400.0};
  /// Average fraction of a drive's native transfer rate one scrub pass may
  /// consume, implemented as idle pacing after each full-rate segment.
  double bandwidth_fraction = 0.25;
  /// Scrub passes holding drives simultaneously (across all libraries).
  std::uint32_t max_concurrent = 1;
  /// Verification granularity: the pass yields to foreground demand at
  /// every segment boundary, so this bounds how long a scrubbing drive can
  /// hold out against a request that wants it.
  Bytes segment{std::uint64_t{8} << 30};

  [[nodiscard]] Status try_validate() const;
};

/// One in-flight verification pass over a cartridge.
struct ScrubJob {
  TapeId tape{};
  Bytes next_offset{};  ///< Verified up to here.
  Bytes end{};          ///< Used bytes at pass start.
  Seconds started{};    ///< Pass begin (spans the scrub lane).
  std::uint64_t verified = 0;  ///< Bytes verified this pass.
  std::uint32_t found = 0;     ///< Latent events surfaced this pass.
};

struct ScrubStats {
  std::uint64_t passes = 0;          ///< Full-tape passes completed.
  std::uint64_t passes_aborted = 0;  ///< Yielded to foreground or faulted.
  std::uint64_t bytes_verified = 0;
  std::uint64_t latent_found = 0;    ///< Damage events surfaced by scrubs.
};

struct EvacuationConfig {
  /// Master switch; evacuation also requires an enabled fault model.
  bool enabled = false;
  /// Health-score floor in [0, 1]: a cartridge scoring at or below this is
  /// evacuated. 0 never triggers (scores are clamped above it only at
  /// exactly 0 wear), 1 evacuates on the first blemish.
  double threshold = 0.35;
  /// Score penalty per observed read error (excluding latent findings).
  double error_weight = 0.15;
  /// Score penalty per latent damage event surfaced by a scrub or read.
  double latent_weight = 0.1;
  /// Mount-cycle rating: score loses mounts/rating (mechanical wear).
  double mount_rating = 5000.0;

  [[nodiscard]] Status try_validate() const;

  /// Health score of a cartridge given its observed history; 1 is pristine,
  /// 0 is fully worn. Clamped to [0, 1].
  [[nodiscard]] double score(std::uint32_t read_errors,
                             std::uint32_t latent_found,
                             std::uint32_t mounts) const {
    const double s = 1.0 - error_weight * read_errors -
                     latent_weight * latent_found - mounts / mount_rating;
    return std::clamp(s, 0.0, 1.0);
  }
};

struct EvacStats {
  std::uint64_t started = 0;    ///< Cartridges whose evacuation began.
  std::uint64_t completed = 0;  ///< Cartridges fully drained and retired.
  std::uint64_t objects_moved = 0;
  /// Extents a request would have aimed at a retired cartridge but that
  /// resolved to the evacuated copy instead — unavailability preempted.
  std::uint64_t preempted_unavailables = 0;
};

}  // namespace tapesim::sched
