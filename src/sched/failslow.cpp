#include "sched/failslow.hpp"

namespace tapesim::sched {

Status GrayDetectorConfig::try_validate() const {
  StatusBuilder check("GrayDetectorConfig");
  check.require(fraction > 0.0 && fraction < 1.0,
                "detector fraction must be in (0, 1)");
  check.require(window.count() > 0.0, "detector window must be positive");
  check.require(min_samples > 0, "detector needs at least one sample");
  check.require(ewma_alpha > 0.0 && ewma_alpha <= 1.0,
                "EWMA alpha must be in (0, 1]");
  check.require(probation.count() >= 0.0, "probation must be >= 0");
  return check.take();
}

Status HedgeConfig::try_validate() const {
  StatusBuilder check("HedgeConfig");
  check.require(percentile > 0.0 && percentile <= 100.0,
                "hedge percentile must be in (0, 100]");
  check.require(min_history > 0, "hedge history floor must be positive");
  check.require(history >= min_history,
                "hedge history capacity must cover min_history");
  check.require(min_overrun >= 1.0, "min overrun must be >= 1");
  check.require(budget_fraction > 0.0 && budget_fraction <= 1.0,
                "hedge budget fraction must be in (0, 1]");
  return check.take();
}

}  // namespace tapesim::sched
