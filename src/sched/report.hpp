// Utilization reporting for simulation runs.
//
// Aggregates the per-drive activity accounting (tape::DriveStats) and the
// per-robot busy time into a fleet report: how much of the elapsed window
// each drive spent streaming vs repositioning vs handling cartridges, and
// how hot each robot ran. The reports drive the CLI's `run --utilization`
// output and the conservation checks in the test suite.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "tape/system.hpp"
#include "util/units.hpp"

namespace tapesim::sched {

struct DriveUtilization {
  DriveId drive;
  Seconds transferring{};
  Seconds locating{};
  Seconds rewinding{};
  Seconds loading{};
  Seconds unloading{};
  Bytes bytes_read{};
  std::uint64_t mounts = 0;
  /// Fault-injection accounting; zero without faults.
  std::uint64_t failures = 0;
  Seconds downtime{};

  [[nodiscard]] Seconds active() const {
    return transferring + locating + rewinding + loading + unloading;
  }
  /// Fraction of `elapsed` the drive spent doing anything.
  [[nodiscard]] double busy_fraction(Seconds elapsed) const {
    return elapsed.count() <= 0.0 ? 0.0
                                  : active().count() / elapsed.count();
  }
  /// Fraction of `elapsed` spent actually streaming data.
  [[nodiscard]] double streaming_fraction(Seconds elapsed) const {
    return elapsed.count() <= 0.0
               ? 0.0
               : transferring.count() / elapsed.count();
  }
};

struct RobotUtilization {
  LibraryId library;
  Seconds busy{};
  std::uint64_t grants = 0;

  [[nodiscard]] double busy_fraction(Seconds elapsed) const {
    return elapsed.count() <= 0.0 ? 0.0 : busy.count() / elapsed.count();
  }
};

struct UtilizationReport {
  Seconds elapsed{};
  std::vector<DriveUtilization> drives;
  std::vector<RobotUtilization> robots;

  [[nodiscard]] Bytes total_bytes_read() const;
  [[nodiscard]] std::uint64_t total_mounts() const;
  /// Mean streaming fraction across drives — the fleet's effective duty
  /// cycle (the paper: "the tape drive hardly works in streaming mode most
  /// of the time").
  [[nodiscard]] double mean_streaming_fraction() const;

  void print(std::ostream& os) const;
};

/// Snapshots utilization from a tape system after a run.
[[nodiscard]] UtilizationReport utilization_report(
    const tape::TapeSystem& system, Seconds elapsed);

}  // namespace tapesim::sched
