#include "sched/overload.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "obs/tracer.hpp"
#include "util/assert.hpp"

namespace tapesim::sched {

Seconds DeadlinePolicy::deadline_for(Bytes bytes) const {
  if (!enabled) return Seconds{metrics::RequestOutcome::kNoDeadline};
  return base + per_gb * bytes.gigabytes();
}

const char* to_string(ShedPolicy p) {
  switch (p) {
    case ShedPolicy::kNone: return "none";
    case ShedPolicy::kTailDrop: return "tail_drop";
    case ShedPolicy::kPriority: return "priority";
  }
  return "?";
}

Status OverloadConfig::try_validate() const {
  StatusBuilder check("OverloadConfig");
  if (deadline.enabled) {
    check.require(deadline.base.count() > 0.0,
                  "deadline base must be positive");
    check.require(deadline.per_gb.count() >= 0.0,
                  "deadline per_gb must be non-negative");
  }
  check.require(admission.token_rate >= 0.0,
                "token rate must be non-negative");
  check.require(admission.token_rate == 0.0 || admission.token_burst >= 1.0,
                "token burst must admit at least one request");
  check.require(!admission.reject_hopeless || deadline.enabled,
                "reject_hopeless requires deadlines");
  return check.take();
}

void OverloadConfig::validate() const {
  const Status s = try_validate();
  if (!s.ok()) throw std::invalid_argument(s.message());
}

OverloadRunner::OverloadRunner(RetrievalSimulator& sim, OverloadConfig config,
                               obs::Tracer* tracer)
    : sim_(sim), config_(std::move(config)), tracer_(tracer) {
  config_.validate();
  tokens_ = config_.admission.token_burst;
}

OverloadReport OverloadRunner::run(
    std::span<const workload::TimedRequest> arrivals) {
  TAPESIM_ASSERT_MSG(
      std::is_sorted(arrivals.begin(), arrivals.end(),
                     [](const workload::TimedRequest& a,
                        const workload::TimedRequest& b) {
                       return a.time < b.time;
                     }),
      "arrival stream must be sorted by time");
  OverloadReport report;
  report.outcomes.reserve(arrivals.size());
  sim::Engine& eng = sim_.engine();
  const Seconds start =
      arrivals.empty() ? eng.now() : std::max(eng.now(), arrivals.front().time);

  std::size_t next = 0;
  while (next < arrivals.size() || !queue_.empty()) {
    // Everything that has arrived by now goes through admission, in
    // arrival order (the lag only means decisions for requests that
    // landed during the previous service are taken when the server
    // frees; the token bucket still refills on arrival timestamps).
    while (next < arrivals.size() && arrivals[next].time <= eng.now()) {
      admit(arrivals[next++], report);
    }
    cull_expired(report);
    if (queue_.empty()) {
      if (next >= arrivals.size()) break;
      // Idle until the next arrival. Advancing the clock through the
      // engine lets pending background work (repairs, watches) use the
      // gap; pressure is off because nothing foreground waits.
      if (config_.pause_repair_under_pressure) {
        sim_.set_overload_pressure(false);
      }
      eng.schedule_at(std::max(eng.now(), arrivals[next].time), []() {});
      eng.run();
      continue;
    }
    serve(pick_next(), report);
  }
  sim_.set_overload_pressure(false);
  report.makespan = eng.now() > start ? eng.now() - start : Seconds{0.0};
  return report;
}

bool OverloadRunner::admit(const workload::TimedRequest& arrival,
                           OverloadReport& report) {
  const workload::Workload& wl = sim_.workload();
  Queued q;
  q.arrival = arrival;
  q.bytes = wl.request_bytes(arrival.request);
  q.deadline_abs = config_.deadline.enabled
                       ? arrival.time + config_.deadline.deadline_for(q.bytes)
                       : Seconds{metrics::RequestOutcome::kNoDeadline};
  q.seq = next_seq_++;

  const AdmissionPolicy& adm = config_.admission;
  if (config_.shed != ShedPolicy::kNone) {
    // Arrival governor: a token bucket refilled by arrival timestamps.
    if (adm.token_rate > 0.0) {
      tokens_ = std::min(
          adm.token_burst,
          tokens_ + (arrival.time - last_refill_).count() * adm.token_rate);
      last_refill_ = arrival.time;
      if (tokens_ < 1.0) {
        ++report.shed_admit;
        record_shed(q, "token bucket", report);
        return false;
      }
      tokens_ -= 1.0;
    }

    // Per-library byte bound: no single robot/drive pool may accumulate
    // an unbounded backlog of queued demand.
    if (adm.max_queued_bytes_per_library.count() > 0) {
      std::unordered_map<std::uint32_t, Bytes> per_lib;
      for (const ObjectId o : wl.request(arrival.request).objects) {
        if (const catalog::ObjectRecord* rec = sim_.catalog().lookup(o)) {
          per_lib[rec->library.value()] += rec->size;
        }
      }
      q.lib_bytes.assign(per_lib.begin(), per_lib.end());
      std::sort(q.lib_bytes.begin(), q.lib_bytes.end());
      for (const auto& [lib, bytes] : q.lib_bytes) {
        if (queued_lib_bytes_[lib] + bytes > adm.max_queued_bytes_per_library) {
          ++report.shed_admit;
          record_shed(q, "library byte bound", report);
          return false;
        }
      }
    }

    // Depth bound.
    if (adm.max_queue_depth > 0 && queue_.size() >= adm.max_queue_depth) {
      if (config_.shed == ShedPolicy::kTailDrop) {
        ++report.shed_admit;
        record_shed(q, "queue full", report);
        return false;
      }
      // Priority shedding: the lowest-priority latest-deadline entry —
      // arrival included — makes room for the rest.
      const auto worse = [](const Queued& a, const Queued& b) {
        if (a.arrival.priority != b.arrival.priority) {
          return a.arrival.priority < b.arrival.priority;
        }
        if (a.deadline_abs != b.deadline_abs) {
          return a.deadline_abs > b.deadline_abs;
        }
        return a.seq > b.seq;
      };
      std::size_t victim = queue_.size();  // sentinel: the arrival itself
      for (std::size_t i = 0; i < queue_.size(); ++i) {
        if (victim == queue_.size() ? worse(queue_[i], q)
                                    : worse(queue_[i], queue_[victim])) {
          victim = i;
        }
      }
      if (victim == queue_.size()) {
        ++report.shed_admit;
        record_shed(q, "queue full", report);
        return false;
      }
      const Queued evicted = queue_[victim];
      remove_queued(victim);
      ++report.shed_evicted;
      record_shed(evicted, "evicted by higher priority", report);
    }

    // Reject-hopeless: if the predicted backlog already puts this
    // request's completion past its deadline, rejecting now is kinder
    // than an inevitable mid-service expiry.
    if (adm.reject_hopeless && config_.deadline.enabled &&
        estimator_.observations() > 0) {
      const Seconds begin = std::max(sim_.engine().now(), arrival.time);
      const Seconds finish =
          begin + backlog_estimate() + estimator_.estimate(q.bytes);
      if (finish > q.deadline_abs) {
        ++report.shed_hopeless;
        record_shed(q, "deadline unreachable", report);
        return false;
      }
    }
  }

  for (const auto& [lib, bytes] : q.lib_bytes) {
    queued_lib_bytes_[lib] += bytes;
  }
  queue_.push_back(std::move(q));
  return true;
}

void OverloadRunner::cull_expired(OverloadReport& report) {
  if (!config_.deadline.enabled) return;
  const Seconds now = sim_.engine().now();
  for (std::size_t i = 0; i < queue_.size();) {
    if (queue_[i].deadline_abs > now) {
      ++i;
      continue;
    }
    const Queued q = queue_[i];
    remove_queued(i);
    // The simulator's dead-on-arrival path does the accounting: every
    // byte expired, no engine work.
    RequestContext ctx;
    ctx.deadline = q.deadline_abs;
    ctx.priority = q.arrival.priority;
    metrics::RequestOutcome outcome = sim_.run_request(q.arrival.request, ctx);
    ++report.expired_in_queue;
    report.metrics.add(outcome);
    const Seconds waited = q.deadline_abs - q.arrival.time;
    report.admitted_sojourn.add(waited.count());
    if (tracer_ != nullptr) {
      tracer_->record(obs::Span{obs::Track::kOverload,
                                q.arrival.request.value(), obs::Phase::kExpired,
                                q.arrival.time, q.deadline_abs,
                                q.arrival.request, TapeId{},
                                "expired in queue"});
      tracer_->registry().counter("overload.expired").inc();
    }
    report.outcomes.push_back(
        OverloadOutcome{std::move(outcome), q.arrival.time, waited, waited});
  }
}

std::size_t OverloadRunner::pick_next() const {
  TAPESIM_ASSERT(!queue_.empty());
  std::size_t best = 0;
  for (std::size_t i = 1; i < queue_.size(); ++i) {
    const Queued& a = queue_[i];
    const Queued& b = queue_[best];
    if (config_.shed == ShedPolicy::kPriority) {
      if (a.arrival.priority != b.arrival.priority) {
        if (a.arrival.priority > b.arrival.priority) best = i;
        continue;
      }
      if (a.deadline_abs != b.deadline_abs) {
        if (a.deadline_abs < b.deadline_abs) best = i;
        continue;
      }
    }
    if (a.seq < b.seq) best = i;
  }
  return best;
}

void OverloadRunner::serve(std::size_t index, OverloadReport& report) {
  const Queued q = queue_[index];
  remove_queued(index);
  // Pressure reflects backlog beyond the request now starting; repairs
  // stay paused while foreground work waits behind this one.
  if (config_.pause_repair_under_pressure) {
    sim_.set_overload_pressure(!queue_.empty());
  }
  sim::Engine& eng = sim_.engine();
  const Seconds begin = eng.now();
  const Seconds wait = begin - q.arrival.time;
  RequestContext ctx;
  ctx.deadline = q.deadline_abs;
  ctx.priority = q.arrival.priority;
  metrics::RequestOutcome outcome = sim_.run_request(q.arrival.request, ctx);
  // The estimator learns true server occupancy (doomed drains included):
  // that is what delays the next queued request.
  estimator_.observe(outcome.bytes, eng.now() - begin);
  if (sim_.governor().enabled()) {
    // Metastable-detector feeds: goodput is deadline-met bytes, and the
    // backlog behind the request that just finished is the queue-depth
    // signal that separates collapse from an idle lull.
    sim_.governor().note_served(
        outcome.met_deadline() ? outcome.bytes_served() : Bytes{}, eng.now());
    sim_.governor().note_queue_depth(queue_.size(), eng.now());
  }
  report.metrics.add(outcome);

  const bool expired =
      outcome.status == metrics::RequestStatus::kDeadlineExpired;
  OverloadOutcome rec;
  rec.arrival = q.arrival.time;
  rec.queue_wait = wait;
  rec.sojourn = expired ? q.deadline_abs - q.arrival.time
                        : begin + outcome.response - q.arrival.time;
  report.admitted_sojourn.add(rec.sojourn.count());
  report.queue_waits.add(wait.count());
  if (expired) {
    ++report.expired_in_service;
  } else if (outcome.status == metrics::RequestStatus::kServed) {
    ++report.served;
  }
  if (tracer_ != nullptr) {
    if (expired) {
      tracer_->registry().counter("overload.expired").inc();
    } else if (outcome.status == metrics::RequestStatus::kServed) {
      tracer_->registry().counter("overload.served").inc();
    }
  }
  rec.outcome = std::move(outcome);
  report.outcomes.push_back(std::move(rec));
}

void OverloadRunner::record_shed(const Queued& q, const char* reason,
                                 OverloadReport& report) {
  metrics::RequestOutcome outcome;
  outcome.request = q.arrival.request;
  outcome.bytes = q.bytes;
  outcome.status = metrics::RequestStatus::kShed;
  outcome.priority = q.arrival.priority;
  if (config_.deadline.enabled) {
    outcome.deadline = q.deadline_abs - q.arrival.time;
  }
  report.metrics.add(outcome);
  if (tracer_ != nullptr) {
    tracer_->record(obs::Span{obs::Track::kOverload, q.arrival.request.value(),
                              obs::Phase::kShed, q.arrival.time, q.arrival.time,
                              q.arrival.request, TapeId{}, reason});
    tracer_->registry().counter("overload.shed").inc();
  }
  report.outcomes.push_back(
      OverloadOutcome{std::move(outcome), q.arrival.time, Seconds{}, Seconds{}});
}

void OverloadRunner::remove_queued(std::size_t index) {
  TAPESIM_ASSERT(index < queue_.size());
  for (const auto& [lib, bytes] : queue_[index].lib_bytes) {
    queued_lib_bytes_[lib] -= bytes;
  }
  queue_.erase(queue_.begin() +
               static_cast<std::ptrdiff_t>(index));
}

Seconds OverloadRunner::backlog_estimate() const {
  Seconds total{};
  for (const Queued& q : queue_) total += estimator_.estimate(q.bytes);
  return total;
}

}  // namespace tapesim::sched
