#include "sched/governor.hpp"

#include <algorithm>
#include <string>

#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "obs/tracer.hpp"
#include "util/assert.hpp"

namespace tapesim::sched {

const char* to_string(GovernorClass c) {
  switch (c) {
    case GovernorClass::kRetry: return "retry";
    case GovernorClass::kFailover: return "failover";
    case GovernorClass::kHedge: return "hedge";
  }
  return "?";
}

const char* to_string(BreakerScope s) {
  switch (s) {
    case BreakerScope::kDrive: return "drive";
    case BreakerScope::kLibrary: return "library";
    case BreakerScope::kRobot: return "robot";
  }
  return "?";
}

const char* to_string(BreakerState s) {
  switch (s) {
    case BreakerState::kClosed: return "closed";
    case BreakerState::kOpen: return "open";
    case BreakerState::kHalfOpen: return "half-open";
  }
  return "?";
}

Status GovernorBudgetConfig::try_validate() const {
  StatusBuilder check("GovernorBudgetConfig");
  check.require(retry_ratio > 0.0 && retry_ratio <= 1.0,
                "retry budget ratio must be in (0, 1]");
  check.require(failover_ratio > 0.0 && failover_ratio <= 1.0,
                "failover budget ratio must be in (0, 1]");
  check.require(hedge_ratio > 0.0 && hedge_ratio <= 1.0,
                "hedge budget ratio must be in (0, 1]");
  check.require(burst >= 1.0, "budget burst must allow at least one attempt");
  return check.take();
}

Status GovernorBreakerConfig::try_validate() const {
  StatusBuilder check("GovernorBreakerConfig");
  check.require(failure_threshold > 0.0 && failure_threshold <= 1.0,
                "breaker failure threshold must be in (0, 1]");
  check.require(min_samples > 0, "breaker min samples must be positive");
  check.require(window.count() > 0.0, "breaker window must be positive");
  check.require(open_duration.count() > 0.0,
                "breaker open duration must be positive");
  check.require(close_after > 0,
                "breaker close-after count must be positive");
  return check.take();
}

Status GovernorMetastableConfig::try_validate() const {
  StatusBuilder check("GovernorMetastableConfig");
  check.require(bin.count() > 0.0, "goodput bin must be positive");
  check.require(ewma_alpha > 0.0 && ewma_alpha <= 1.0,
                "EWMA alpha must be in (0, 1]");
  check.require(collapse_fraction > 0.0 && collapse_fraction < 1.0,
                "collapse fraction must be in (0, 1)");
  check.require(recover_fraction > 0.0 && recover_fraction <= 1.0,
                "recover fraction must be in (0, 1]");
  check.require(collapse_fraction < recover_fraction,
                "hysteresis band must be ordered: collapse < recover");
  check.require(trip_bins > 0, "trip bin count must be positive");
  check.require(release_bins > 0, "release bin count must be positive");
  check.require(repair_clamp > 0.0 && repair_clamp <= 1.0,
                "repair clamp must be in (0, 1]");
  check.require(budget_clamp > 0.0 && budget_clamp <= 1.0,
                "budget clamp must be in (0, 1]");
  return check.take();
}

Status GovernorConfig::try_validate() const {
  StatusBuilder check("GovernorConfig");
  check.merge(budgets.try_validate());
  check.merge(breaker.try_validate());
  check.merge(metastable.try_validate());
  return check.take();
}

void RecoveryGovernor::configure(const GovernorConfig& config,
                                 std::size_t drives, std::size_t libraries,
                                 obs::Tracer* tracer) {
  config_ = config;
  stats_ = GovernorStats{};
  tokens_.fill(config.budgets.burst);
  breakers_[static_cast<std::size_t>(BreakerScope::kDrive)]
      .assign(drives, Breaker{});
  breakers_[static_cast<std::size_t>(BreakerScope::kLibrary)]
      .assign(libraries, Breaker{});
  breakers_[static_cast<std::size_t>(BreakerScope::kRobot)]
      .assign(libraries, Breaker{});
  open_count_ = 0;
  bin_start_ = Seconds{0.0};
  bin_bytes_ = 0.0;
  ewma_rate_ = 0.0;
  ewma_ready_ = false;
  queue_depth_ = 0;
  collapsed_bins_ = 0;
  recovered_bins_ = 0;
  shed_level_ = 0;
  tracer_ = config.enabled ? tracer : nullptr;
  mirror_ = Mirror{};
  if (tracer_ == nullptr) return;
  obs::Registry& reg = tracer_->registry();
  for (std::size_t i = 0; i < 3; ++i) {
    const std::string cls = to_string(static_cast<GovernorClass>(i));
    mirror_.attempts[i] = &reg.counter("governor." + cls + "_attempts");
    mirror_.admitted[i] = &reg.counter("governor." + cls + "_admitted");
    mirror_.fast_failed[i] = &reg.counter("governor." + cls + "_fast_failed");
  }
  mirror_.breaker_opened = &reg.counter("governor.breaker_opened");
  mirror_.breaker_reopened = &reg.counter("governor.breaker_reopened");
  mirror_.breaker_closed = &reg.counter("governor.breaker_closed");
  mirror_.breaker_probes = &reg.counter("governor.breaker_probes");
  mirror_.metastable_trips = &reg.counter("governor.metastable_trips");
  mirror_.metastable_releases = &reg.counter("governor.metastable_releases");
  mirror_.shed_escalations = &reg.counter("governor.shed_escalations");
  mirror_.shed_level = &reg.gauge("governor.shed_level");
  mirror_.breakers_open = &reg.gauge("governor.breakers_open");
  mirror_.shed_level->set(0.0);
  mirror_.breakers_open->set(0.0);
}

// --- budgets ---

void RecoveryGovernor::note_demand(GovernorClass cls) {
  if (!config_.enabled) return;
  const std::size_t i = static_cast<std::size_t>(cls);
  ++stats_.ledgers[i].demand;
  if (!config_.budgets.enabled) return;
  double ratio = config_.budgets.retry_ratio;
  if (cls == GovernorClass::kFailover) ratio = config_.budgets.failover_ratio;
  if (cls == GovernorClass::kHedge) ratio = config_.budgets.hedge_ratio;
  // Shed level 3 tightens the earn rate, so budgets shrink exactly when
  // amplification is most dangerous.
  tokens_[i] = std::min(tokens_[i] + ratio * budget_clamp(),
                        config_.budgets.burst);
}

void RecoveryGovernor::record_decision(GovernorClass cls, bool admitted,
                                       bool breaker_denied) {
  const std::size_t i = static_cast<std::size_t>(cls);
  BudgetLedger& ledger = stats_.ledgers[i];
  ++ledger.attempts;
  if (mirror_.attempts[i] != nullptr) mirror_.attempts[i]->inc();
  if (admitted) {
    ++ledger.admitted;
    if (mirror_.admitted[i] != nullptr) mirror_.admitted[i]->inc();
    return;
  }
  ++ledger.fast_failed;
  if (breaker_denied) {
    ++ledger.breaker_denied;
  } else {
    ++ledger.budget_denied;
  }
  if (mirror_.fast_failed[i] != nullptr) mirror_.fast_failed[i]->inc();
}

bool RecoveryGovernor::admit(GovernorClass cls) {
  if (!config_.enabled) return true;
  const std::size_t i = static_cast<std::size_t>(cls);
  if (!config_.budgets.enabled) {
    record_decision(cls, true, false);
    return true;
  }
  const bool ok = tokens_[i] >= 1.0;
  if (ok) tokens_[i] -= 1.0;
  record_decision(cls, ok, false);
  return ok;
}

bool RecoveryGovernor::admit(GovernorClass cls, BreakerScope scope,
                             std::uint32_t lane, Seconds now) {
  if (!config_.enabled) return true;
  if (breaker_blocked(scope, lane, now)) {
    record_decision(cls, false, true);
    return false;
  }
  return admit(cls);
}

// --- breakers ---

RecoveryGovernor::Breaker& RecoveryGovernor::lane(BreakerScope scope,
                                                  std::uint32_t index) {
  auto& lanes = breakers_[static_cast<std::size_t>(scope)];
  TAPESIM_ASSERT(index < lanes.size());
  return lanes[index];
}

std::uint32_t RecoveryGovernor::span_lane(BreakerScope scope,
                                          std::uint32_t index) const {
  // kBreaker track lanes: drives keep their global id, libraries live at
  // 1000+, robots at 2000+ (fleets are far smaller than 1000 devices).
  return static_cast<std::uint32_t>(scope) * 1000u + index;
}

void RecoveryGovernor::advance(Breaker& b, Seconds now) {
  if (b.state == BreakerState::kOpen && now >= b.open_until) {
    b.state = BreakerState::kHalfOpen;
    b.half_open_ok = 0;
  }
}

bool RecoveryGovernor::over_threshold(const Breaker& b, Seconds now) const {
  std::uint32_t total = 0;
  std::uint32_t failures = 0;
  const Seconds cutoff = now - config_.breaker.window;
  for (std::uint32_t k = 0; k < b.ring_size; ++k) {
    const Outcome& o = b.ring[k];
    if (o.at < cutoff) continue;
    ++total;
    if (!o.ok) ++failures;
  }
  if (total < config_.breaker.min_samples) return false;
  return static_cast<double>(failures) >=
         config_.breaker.failure_threshold * static_cast<double>(total);
}

void RecoveryGovernor::open_breaker(Breaker& b, BreakerScope scope,
                                    std::uint32_t index, Seconds now,
                                    bool reopen) {
  b.state = BreakerState::kOpen;
  b.open_until = now + config_.breaker.open_duration;
  if (reopen) {
    ++stats_.breaker_reopened;
    if (mirror_.breaker_reopened != nullptr) mirror_.breaker_reopened->inc();
    return;  // same open episode: opened_at and the open count stand
  }
  b.opened_at = now;
  ++stats_.breaker_opened;
  ++open_count_;
  if (mirror_.breaker_opened != nullptr) mirror_.breaker_opened->inc();
  if (mirror_.breakers_open != nullptr) {
    mirror_.breakers_open->set(static_cast<double>(open_count_));
  }
  if (tracer_ != nullptr) {
    tracer_->marker(obs::Track::kBreaker, span_lane(scope, index),
                    std::string("breaker open: ") + to_string(scope) + " " +
                        std::to_string(index));
  }
}

void RecoveryGovernor::close_breaker(Breaker& b, BreakerScope scope,
                                     std::uint32_t index, Seconds now) {
  b.state = BreakerState::kClosed;
  b.half_open_ok = 0;
  // Forget pre-trip history: a closed breaker starts from a clean slate
  // instead of instantly re-opening on stale failures.
  b.ring_size = 0;
  b.ring_next = 0;
  ++stats_.breaker_closed;
  TAPESIM_ASSERT(open_count_ > 0);
  --open_count_;
  if (mirror_.breaker_closed != nullptr) mirror_.breaker_closed->inc();
  if (mirror_.breakers_open != nullptr) {
    mirror_.breakers_open->set(static_cast<double>(open_count_));
  }
  if (tracer_ != nullptr) {
    tracer_->record(obs::Span{obs::Track::kBreaker, span_lane(scope, index),
                              obs::Phase::kBreaker, b.opened_at, now,
                              RequestId{}, TapeId{},
                              std::string(to_string(scope)) + " " +
                                  std::to_string(index)});
  }
}

void RecoveryGovernor::note_outcome(BreakerScope scope, std::uint32_t lane_id,
                                    bool ok, Seconds now) {
  if (!config_.enabled || !config_.breaker.enabled) return;
  Breaker& b = lane(scope, lane_id);
  advance(b, now);
  switch (b.state) {
    case BreakerState::kOpen:
      // In-flight work finishing while the breaker dwells open carries no
      // new information: the trip has already been decided.
      return;
    case BreakerState::kHalfOpen: {
      ++stats_.breaker_probes;
      if (mirror_.breaker_probes != nullptr) mirror_.breaker_probes->inc();
      if (!ok) {
        open_breaker(b, scope, lane_id, now, /*reopen=*/true);
        return;
      }
      ++b.half_open_ok;
      if (b.half_open_ok >= config_.breaker.close_after) {
        close_breaker(b, scope, lane_id, now);
      }
      return;
    }
    case BreakerState::kClosed: {
      b.ring[b.ring_next] = Outcome{now, ok};
      b.ring_next = (b.ring_next + 1) % static_cast<std::uint32_t>(
                                            b.ring.size());
      b.ring_size = std::min<std::uint32_t>(
          b.ring_size + 1, static_cast<std::uint32_t>(b.ring.size()));
      if (!ok && over_threshold(b, now)) {
        open_breaker(b, scope, lane_id, now, /*reopen=*/false);
      }
      return;
    }
  }
}

bool RecoveryGovernor::breaker_blocked(BreakerScope scope, std::uint32_t lane_id,
                                       Seconds now) {
  if (!config_.enabled || !config_.breaker.enabled) return false;
  Breaker& b = lane(scope, lane_id);
  advance(b, now);
  return b.state == BreakerState::kOpen;
}

BreakerState RecoveryGovernor::breaker_state(BreakerScope scope,
                                             std::uint32_t lane_id,
                                             Seconds now) {
  if (!config_.enabled || !config_.breaker.enabled) {
    return BreakerState::kClosed;
  }
  Breaker& b = lane(scope, lane_id);
  advance(b, now);
  return b.state;
}

// --- metastability ---

void RecoveryGovernor::note_served(Bytes amount, Seconds now) {
  if (!config_.enabled || !config_.metastable.enabled) return;
  roll_bins(now);
  bin_bytes_ += amount.as_double();
}

void RecoveryGovernor::note_queue_depth(std::size_t depth, Seconds now) {
  if (!config_.enabled || !config_.metastable.enabled) return;
  roll_bins(now);
  queue_depth_ = depth;
}

void RecoveryGovernor::roll_bins(Seconds now) {
  const double bin = config_.metastable.bin.count();
  while (now.count() >= bin_start_.count() + bin) {
    evaluate_bin(bin_bytes_ / bin);
    bin_bytes_ = 0.0;
    bin_start_ += config_.metastable.bin;
  }
}

void RecoveryGovernor::evaluate_bin(double rate) {
  const GovernorMetastableConfig& ms = config_.metastable;
  if (shed_level_ == 0) {
    // The EWMA tracks healthy goodput only: it freezes the moment any
    // shedding starts, so the "pre-trigger" baseline cannot adapt
    // downward into the collapse and fake a recovery.
    if (rate > 0.0 || ewma_ready_) {
      ewma_rate_ = ewma_ready_
                       ? ms.ewma_alpha * rate + (1.0 - ms.ewma_alpha) * ewma_rate_
                       : rate;
      ewma_ready_ = true;
    }
  }
  if (!ewma_ready_ || ewma_rate_ <= 0.0) return;
  const bool collapsed =
      rate < ms.collapse_fraction * ewma_rate_ &&
      queue_depth_ >= ms.min_queue_depth;
  const bool recovered = rate >= ms.recover_fraction * ewma_rate_;
  collapsed_bins_ = collapsed ? collapsed_bins_ + 1 : 0;
  recovered_bins_ = recovered ? recovered_bins_ + 1 : 0;
  if (collapsed_bins_ >= ms.trip_bins && shed_level_ < 3) {
    set_shed_level(shed_level_ + 1);
    collapsed_bins_ = 0;
  } else if (recovered_bins_ >= ms.release_bins && shed_level_ > 0) {
    set_shed_level(shed_level_ - 1);
    recovered_bins_ = 0;
  }
}

void RecoveryGovernor::set_shed_level(std::uint32_t level) {
  const std::uint32_t prev = shed_level_;
  shed_level_ = level;
  if (level > prev) {
    ++stats_.shed_escalations;
    if (mirror_.shed_escalations != nullptr) mirror_.shed_escalations->inc();
    if (prev == 0) {
      ++stats_.metastable_trips;
      if (mirror_.metastable_trips != nullptr) {
        mirror_.metastable_trips->inc();
      }
    }
  } else if (level == 0 && prev > 0) {
    ++stats_.metastable_releases;
    if (mirror_.metastable_releases != nullptr) {
      mirror_.metastable_releases->inc();
    }
  }
  if (mirror_.shed_level != nullptr) {
    mirror_.shed_level->set(static_cast<double>(shed_level_));
  }
  if (tracer_ != nullptr) {
    tracer_->marker(obs::Track::kEngine, 0,
                    "governor shed level " + std::to_string(prev) + " -> " +
                        std::to_string(level));
  }
}

bool RecoveryGovernor::scrub_paused() const {
  return config_.enabled && config_.metastable.enabled && shed_level_ >= 1;
}

double RecoveryGovernor::repair_clamp() const {
  return (config_.enabled && config_.metastable.enabled && shed_level_ >= 2)
             ? config_.metastable.repair_clamp
             : 1.0;
}

double RecoveryGovernor::budget_clamp() const {
  return (config_.enabled && config_.metastable.enabled && shed_level_ >= 3)
             ? config_.metastable.budget_clamp
             : 1.0;
}

void RecoveryGovernor::finish(Seconds now) {
  if (!config_.enabled) return;
  for (std::size_t s = 0; s < breakers_.size(); ++s) {
    auto& lanes = breakers_[s];
    for (std::uint32_t i = 0; i < lanes.size(); ++i) {
      Breaker& b = lanes[i];
      advance(b, now);
      if (b.state == BreakerState::kClosed) continue;
      // Emit the still-open window as a span, then close the lane so
      // finish() stays idempotent; the close is bookkeeping, not a
      // recovery, so breaker_closed is *not* incremented.
      if (tracer_ != nullptr) {
        const auto scope = static_cast<BreakerScope>(s);
        tracer_->record(obs::Span{
            obs::Track::kBreaker, span_lane(scope, i), obs::Phase::kBreaker,
            b.opened_at, now, RequestId{}, TapeId{},
            std::string(to_string(scope)) + " " + std::to_string(i) +
                " (unclosed)"});
      }
      b.state = BreakerState::kClosed;
      b.ring_size = 0;
      b.ring_next = 0;
      TAPESIM_ASSERT(open_count_ > 0);
      --open_count_;
    }
  }
  if (mirror_.breakers_open != nullptr) {
    mirror_.breakers_open->set(static_cast<double>(open_count_));
  }
}

}  // namespace tapesim::sched
