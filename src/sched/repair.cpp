#include "sched/repair.hpp"

namespace tapesim::sched {

Status RepairConfig::try_validate() const {
  StatusBuilder check("RepairConfig");
  if (enabled) {
    check.require(bandwidth_fraction > 0.0 && bandwidth_fraction <= 1.0,
                  "bandwidth fraction must be in (0, 1]");
    check.require(max_concurrent > 0,
                  "need at least one concurrent repair slot");
  }
  return check.take();
}

}  // namespace tapesim::sched
