// Background re-replication: config, job state, and running totals.
//
// When a cartridge degrades or is lost, every object with a copy on it may
// fall below the target replication factor. The scheduler enqueues one
// repair job per missing copy; idle drives pick jobs up strictly after
// foreground demand, read the best surviving copy to the staging disk, and
// write a fresh copy onto a healthy tape in another library. The bandwidth
// cap is a duty cycle: transfers run at native drive rate (so the paper's
// time accounting is untouched) and the drive then idles long enough that
// its average repair rate is `bandwidth_fraction` of the native rate.
#pragma once

#include <cstdint>

#include "util/error.hpp"
#include "util/ids.hpp"
#include "util/units.hpp"

namespace tapesim::sched {

struct RepairConfig {
  /// Master switch; repair also requires a replicated catalog and an
  /// enabled fault model (without faults nothing ever degrades).
  bool enabled = false;
  /// Average fraction of a drive's native transfer rate a repair job may
  /// consume, implemented as idle pacing after each full-rate transfer.
  double bandwidth_fraction = 0.25;
  /// Repair jobs holding drives simultaneously (across all libraries).
  std::uint32_t max_concurrent = 1;

  [[nodiscard]] Status try_validate() const;
};

/// One pending or in-flight re-replication: copy `object` onto a fresh
/// tape. Runs in two drive occupancies — read the source copy to the
/// staging disk, then write from disk onto the target (usually in another
/// library, so a different drive).
struct RepairJob {
  ObjectId object;
  Bytes size{};
  TapeId source{};        ///< Copy being read; picked at read start.
  Bytes source_offset{};
  TapeId target{};        ///< Tape being written; picked at write start.
  Bytes write_offset{};
  Seconds started{};      ///< First drive activity (spans the repair lane).
  bool has_started = false;
  bool read_done = false;  ///< Data staged on disk; write half remains.
  std::uint32_t attempts = 0;
  /// When valid, this copy job drains that cartridge for health-driven
  /// evacuation (sched/scrub.hpp) rather than restoring replication.
  TapeId evac_from{};
  /// When valid, this job is disaster-recovery traffic re-replicating data
  /// lost with that destroyed library: it runs under the DR bandwidth cap
  /// and counts toward time-to-full-redundancy.
  LibraryId dr_from{};
};

struct RepairStats {
  std::uint64_t jobs_scheduled = 0;
  std::uint64_t jobs_completed = 0;
  std::uint64_t jobs_abandoned = 0;  ///< No surviving source, or gave up.
  std::uint64_t bytes_copied = 0;
};

}  // namespace tapesim::sched
