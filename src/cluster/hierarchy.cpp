#include "cluster/hierarchy.hpp"

#include <algorithm>
#include <numeric>

#include "util/assert.hpp"

namespace tapesim::cluster {
namespace {

/// Union-find with path halving and union by size.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n), size_(n, 1) {
    std::iota(parent_.begin(), parent_.end(), 0u);
  }

  std::uint32_t find(std::uint32_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  /// Merges the sets of a and b; returns the new root (or the common root).
  std::uint32_t unite(std::uint32_t a, std::uint32_t b) {
    a = find(a);
    b = find(b);
    if (a == b) return a;
    if (size_[a] < size_[b]) std::swap(a, b);
    parent_[b] = a;
    size_[a] += size_[b];
    return a;
  }

  [[nodiscard]] std::uint32_t set_size(std::uint32_t x) {
    return size_[find(x)];
  }

 private:
  std::vector<std::uint32_t> parent_;
  std::vector<std::uint32_t> size_;
};

/// Groups objects by union-find root into dense, validated clusters.
ObjectClusters materialize(UnionFind& uf,
                           const std::vector<double>& comp_cohesion,
                           const workload::Workload& workload) {
  const std::uint32_t n = workload.object_count();
  std::vector<std::vector<ObjectId>> members_by_root(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    members_by_root[uf.find(i)].push_back(ObjectId{i});
  }

  std::vector<Cluster> clusters;
  for (std::uint32_t root = 0; root < n; ++root) {
    auto& members = members_by_root[root];
    if (members.empty()) continue;
    Cluster c;
    c.id = ClusterId{static_cast<std::uint32_t>(clusters.size())};
    c.cohesion = members.size() > 1 ? comp_cohesion[root] : 0.0;
    std::sort(members.begin(), members.end(), [&](ObjectId x, ObjectId y) {
      const double px = workload.object_probability(x);
      const double py = workload.object_probability(y);
      if (px != py) return px > py;
      return x < y;
    });
    for (const ObjectId o : members) {
      c.total_bytes += workload.object_size(o);
      c.total_probability += workload.object_probability(o);
    }
    c.members = std::move(members);
    clusters.push_back(std::move(c));
  }
  return ObjectClusters{std::move(clusters), n};
}

}  // namespace

Dendrogram build_dendrogram(const SimilarityGraph& graph) {
  // Edges are pre-sorted by descending weight; each edge joining two
  // distinct components is a merge of the relationship tree.
  std::uint32_t max_id = 0;
  for (const auto& e : graph.edges())
    max_id = std::max({max_id, e.a.value(), e.b.value()});
  UnionFind uf(static_cast<std::size_t>(max_id) + 1);

  Dendrogram d;
  d.merges.reserve(graph.edge_count());
  for (const auto& e : graph.edges()) {
    if (uf.find(e.a.value()) == uf.find(e.b.value())) continue;
    uf.unite(e.a.value(), e.b.value());
    d.merges.push_back(Merge{e.a, e.b, e.weight});
  }
  return d;
}

ObjectClusters cluster_objects(const workload::Workload& workload,
                               const SimilarityGraph& graph,
                               const ClusterConstraints& constraints) {
  const std::uint32_t n = workload.object_count();
  UnionFind uf(n);

  // Track per-component stats so constrained merges are O(alpha(n)).
  std::vector<Bytes> comp_bytes(n);
  std::vector<double> comp_cohesion(n, 0.0);
  for (std::uint32_t i = 0; i < n; ++i)
    comp_bytes[i] = workload.objects()[i].size;

  for (const auto& e : graph.edges()) {
    if (e.weight < constraints.min_similarity) break;  // edges are sorted
    const std::uint32_t ra = uf.find(e.a.value());
    const std::uint32_t rb = uf.find(e.b.value());
    if (ra == rb) continue;
    if (constraints.max_objects != 0 &&
        uf.set_size(ra) + uf.set_size(rb) > constraints.max_objects) {
      continue;
    }
    if (constraints.max_bytes.count() != 0 &&
        comp_bytes[ra] + comp_bytes[rb] > constraints.max_bytes) {
      continue;
    }
    const Bytes merged_bytes = comp_bytes[ra] + comp_bytes[rb];
    const std::uint32_t root = uf.unite(ra, rb);
    comp_bytes[root] = merged_bytes;
    // Single linkage: the weakest edge accepted so far is the cohesion.
    comp_cohesion[root] = e.weight;
  }

  return materialize(uf, comp_cohesion, workload);
}

ObjectClusters cluster_by_requests(const workload::Workload& workload,
                                   const ClusterConstraints& constraints) {
  const std::uint32_t n = workload.object_count();
  UnionFind uf(n);
  std::vector<Bytes> comp_bytes(n);
  std::vector<double> comp_cohesion(n, 0.0);
  for (std::uint32_t i = 0; i < n; ++i)
    comp_bytes[i] = workload.objects()[i].size;

  // Requests in descending probability: the strongest cliques merge first.
  std::vector<const workload::Request*> order;
  order.reserve(workload.request_count());
  for (const workload::Request& r : workload.requests()) order.push_back(&r);
  std::sort(order.begin(), order.end(),
            [](const workload::Request* a, const workload::Request* b) {
              if (a->probability != b->probability)
                return a->probability > b->probability;
              return a->id < b->id;
            });

  std::unordered_map<std::uint32_t, std::uint32_t> root_count;
  for (const workload::Request* r : order) {
    if (r->probability < constraints.min_similarity) continue;
    if (r->objects.size() < 2) continue;

    // Pass 1: how many of this request's members sit in each component.
    root_count.clear();
    for (const ObjectId o : r->objects) {
      ++root_count[uf.find(o.value())];
    }

    // Mergeable components are the ones this request effectively owns:
    // singletons and components where our members form a majority. A
    // component dominated by *other* requests stays where it is — pulling
    // it over would relocate somebody else's cluster and chain groups
    // together until the caps cut everything into fragments.
    std::vector<std::pair<std::uint32_t, std::uint32_t>> mergeable;  // (count, root)
    for (const auto& [root, count] : root_count) {
      if (uf.set_size(root) == 1 || 2 * count >= uf.set_size(root)) {
        mergeable.emplace_back(count, root);
      }
    }
    std::sort(mergeable.begin(), mergeable.end(),
              [](const auto& a, const auto& b) {
                if (a.first != b.first) return a.first > b.first;
                return a.second < b.second;
              });

    // Pass 2: pack the owned fragments together, largest first; when a cap
    // would be exceeded, re-anchor so the residue still forms one coherent
    // secondary cluster instead of singletons.
    if (mergeable.empty()) continue;
    std::uint32_t anchor = mergeable.front().second;
    for (std::size_t i = 1; i < mergeable.size(); ++i) {
      const std::uint32_t other = uf.find(mergeable[i].second);
      const std::uint32_t a = uf.find(anchor);
      if (other == a) continue;
      const bool over_objects =
          constraints.max_objects != 0 &&
          uf.set_size(a) + uf.set_size(other) > constraints.max_objects;
      const bool over_bytes =
          constraints.max_bytes.count() != 0 &&
          comp_bytes[a] + comp_bytes[other] > constraints.max_bytes;
      if (over_objects || over_bytes) {
        anchor = other;
        continue;
      }
      const Bytes merged_bytes = comp_bytes[a] + comp_bytes[other];
      anchor = uf.unite(a, other);
      comp_bytes[anchor] = merged_bytes;
      comp_cohesion[anchor] = r->probability;
    }
  }

  return materialize(uf, comp_cohesion, workload);
}

ObjectClusters::ObjectClusters(std::vector<Cluster> clusters,
                               std::uint32_t object_count)
    : clusters_(std::move(clusters)), object_cluster_(object_count) {
  for (const Cluster& c : clusters_) {
    for (const ObjectId o : c.members) {
      TAPESIM_ASSERT(o.index() < object_cluster_.size());
      object_cluster_[o.index()] = c.id;
    }
  }
}

void ObjectClusters::validate(const workload::Workload& workload) const {
  TAPESIM_ASSERT(object_cluster_.size() == workload.object_count());
  std::vector<bool> seen(workload.object_count(), false);
  for (std::size_t ci = 0; ci < clusters_.size(); ++ci) {
    const Cluster& c = clusters_[ci];
    TAPESIM_ASSERT_MSG(c.id.index() == ci, "cluster ids must be dense");
    TAPESIM_ASSERT_MSG(!c.members.empty(), "clusters are non-empty");
    Bytes bytes{};
    double prob = 0.0;
    for (const ObjectId o : c.members) {
      TAPESIM_ASSERT_MSG(!seen[o.index()], "object in two clusters");
      seen[o.index()] = true;
      TAPESIM_ASSERT(object_cluster_[o.index()] == c.id);
      bytes += workload.object_size(o);
      prob += workload.object_probability(o);
    }
    TAPESIM_ASSERT_MSG(bytes == c.total_bytes, "cluster byte total drifted");
    TAPESIM_ASSERT_MSG(std::abs(prob - c.total_probability) < 1e-9,
                       "cluster probability total drifted");
  }
  for (std::size_t i = 0; i < seen.size(); ++i) {
    TAPESIM_ASSERT_MSG(seen[i], "object missing from all clusters");
  }
}

}  // namespace tapesim::cluster
