// Hierarchical clustering over the similarity graph (Section 5.1).
//
// Following Johnson's (1967) agglomerative scheme: repeatedly merge the two
// most similar groups. We use single linkage, which on a sparse graph
// reduces to processing edges in descending weight through a union-find —
// O(E log E) overall, feasible for the paper's 30,000 objects. The merge
// sequence forms the "object relationship tree"; cutting it at a preset
// probability threshold yields the clusters.
//
// The constrained variant additionally refuses merges that would exceed a
// member-count or byte-size cap. This realizes the paper's rule that a
// cluster should be "close to or less than" the tape-batch width, directly
// during tree construction instead of by post-hoc splitting.
#pragma once

#include <cstdint>
#include <vector>

#include "cluster/similarity.hpp"
#include "util/ids.hpp"
#include "util/units.hpp"
#include "workload/model.hpp"

namespace tapesim::cluster {

/// One merge step of the relationship tree.
struct Merge {
  ObjectId a;         ///< A representative member of the first group.
  ObjectId b;         ///< A representative member of the second group.
  double similarity;  ///< Linkage similarity at which the merge happened.
};

/// The full merge sequence (descending similarity). With a forest (graph
/// not connected) there are fewer than n-1 merges.
struct Dendrogram {
  std::vector<Merge> merges;
};

/// Builds the unconstrained relationship tree.
[[nodiscard]] Dendrogram build_dendrogram(const SimilarityGraph& graph);

/// A flat clustering: every object belongs to exactly one cluster
/// (objects that never co-occur above the threshold become singletons).
struct Cluster {
  ClusterId id;
  std::vector<ObjectId> members;  ///< Sorted by descending P(O) (ties: id).
  Bytes total_bytes{};
  /// Sum of member object probabilities — the "accumulated probability"
  /// the placement algorithm maximizes per batch.
  double total_probability = 0.0;
  /// Weakest linkage similarity that holds the cluster together; 0 for
  /// singletons.
  double cohesion = 0.0;
};

class ObjectClusters {
 public:
  ObjectClusters(std::vector<Cluster> clusters, std::uint32_t object_count);

  [[nodiscard]] const std::vector<Cluster>& clusters() const {
    return clusters_;
  }
  [[nodiscard]] std::size_t size() const { return clusters_.size(); }
  [[nodiscard]] const Cluster& cluster(ClusterId id) const {
    return clusters_[id.index()];
  }
  [[nodiscard]] ClusterId cluster_of(ObjectId o) const {
    return object_cluster_[o.index()];
  }

  /// Every object in exactly one cluster; per-cluster stats consistent
  /// with the workload. Aborts on violation.
  void validate(const workload::Workload& workload) const;

 private:
  std::vector<Cluster> clusters_;
  std::vector<ClusterId> object_cluster_;
};

struct ClusterConstraints {
  /// Merges below this similarity are ignored (the paper's "preset
  /// probability value" for the tree cut).
  double min_similarity = 0.0;
  /// Maximum members per cluster; 0 = unbounded.
  std::uint32_t max_objects = 0;
  /// Maximum total bytes per cluster; 0 = unbounded.
  Bytes max_bytes{0};
};

/// Constrained single-linkage clustering. Deterministic given inputs.
[[nodiscard]] ObjectClusters cluster_objects(
    const workload::Workload& workload, const SimilarityGraph& graph,
    const ClusterConstraints& constraints);

/// Request-major constrained clustering: processes requests in descending
/// probability and unions each request's members under the constraints.
///
/// Equivalent to walking the relationship tree request-clique by request-
/// clique instead of edge by edge: every intra-request pair has similarity
/// >= P(R), so this visits merges in a valid descending-linkage order while
/// guaranteeing that one request's objects end up in very few clusters.
/// Pure edge-ordered single linkage lacks that guarantee — equal-weight
/// edges from different requests interleave and the size caps then cut
/// every request into fragments, which destroys the "objects retrieved
/// together stay together" property the placement schemes rely on. This is
/// the default clustering of the experiment harness.
[[nodiscard]] ObjectClusters cluster_by_requests(
    const workload::Workload& workload, const ClusterConstraints& constraints);

}  // namespace tapesim::cluster
