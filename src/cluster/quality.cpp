#include "cluster/quality.hpp"

#include <algorithm>
#include <unordered_map>

namespace tapesim::cluster {

ClusterQuality evaluate_quality(const ObjectClusters& clusters,
                                const workload::Workload& workload) {
  ClusterQuality quality;
  for (const Cluster& c : clusters.clusters()) {
    quality.largest_cluster = std::max(quality.largest_cluster,
                                       c.members.size());
    if (c.members.size() > 1) ++quality.multi_member_clusters;
  }

  std::unordered_map<std::uint32_t, std::size_t> per_cluster;
  for (const workload::Request& r : workload.requests()) {
    per_cluster.clear();
    for (const ObjectId o : r.objects) {
      ++per_cluster[clusters.cluster_of(o).value()];
    }
    std::size_t best = 0;
    for (const auto& [cluster_id, count] : per_cluster) {
      best = std::max(best, count);
    }
    const double coverage =
        static_cast<double>(best) / static_cast<double>(r.objects.size());
    quality.mean_request_coverage += r.probability * coverage;
    quality.mean_clusters_per_request +=
        r.probability * static_cast<double>(per_cluster.size());
  }
  return quality;
}

}  // namespace tapesim::cluster
