// Object co-access similarity (Section 5.1).
//
// The similarity of two objects is the total probability of all requests
// containing both. Only object pairs that co-occur in at least one request
// have non-zero similarity, so the graph is built directly from the request
// list — this is the paper's "requests information are used to reduce the
// clustering computation costs".
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "util/ids.hpp"
#include "workload/model.hpp"

namespace tapesim::cluster {

class SimilarityGraph {
 public:
  struct Edge {
    ObjectId a;  ///< a < b by id.
    ObjectId b;
    double weight;
  };

  /// Builds the pairwise similarity graph from every request. O(sum of
  /// |R|^2 over requests) — with the paper's 300 requests of <= 150 objects
  /// this is a few million updates.
  [[nodiscard]] static SimilarityGraph from_workload(
      const workload::Workload& workload);

  /// Pairwise similarity; 0 when the objects never co-occur.
  [[nodiscard]] double similarity(ObjectId a, ObjectId b) const;

  /// Generalized set similarity: total probability of requests containing
  /// *all* of `objs` (the paper's P(Oi, Oj, Ok, ...)). O(requests * |objs|);
  /// used by tests and diagnostics, not by the placement hot path.
  [[nodiscard]] static double set_similarity(
      const workload::Workload& workload, std::span<const ObjectId> objs);

  /// All non-zero edges, sorted by descending weight (ties: ascending
  /// (a, b) for determinism).
  [[nodiscard]] const std::vector<Edge>& edges() const { return edges_; }
  [[nodiscard]] std::size_t edge_count() const { return edges_.size(); }

 private:
  static std::uint64_t key(ObjectId a, ObjectId b);

  std::unordered_map<std::uint64_t, double> weights_;
  std::vector<Edge> edges_;
};

}  // namespace tapesim::cluster
