// Clustering quality metrics (Section 5.1: "The quality of the object
// clustering, which is measured by the probability of objects being
// accessed together and proper cluster size ... is vital for the success
// of the overall placement scheme").
//
// Two views:
//  * cohesion — for a multi-object cluster, the expected fraction of its
//    members a request retrieving *any* of them also retrieves (weighted
//    by request probability). 1.0 = clusters are exactly co-retrieved.
//  * request coverage — for a request, the fraction of its objects that
//    live in its single best-covering cluster. 1.0 = one mount wave can
//    serve the whole request.
#pragma once

#include "cluster/hierarchy.hpp"
#include "workload/model.hpp"

namespace tapesim::cluster {

struct ClusterQuality {
  /// Probability-weighted mean of the per-request best-cluster coverage.
  double mean_request_coverage = 0.0;
  /// Probability-weighted mean, over requests, of how many distinct
  /// clusters the request's objects span.
  double mean_clusters_per_request = 0.0;
  /// Members in the largest cluster.
  std::size_t largest_cluster = 0;
  /// Multi-object clusters (singletons excluded).
  std::size_t multi_member_clusters = 0;
};

[[nodiscard]] ClusterQuality evaluate_quality(
    const ObjectClusters& clusters, const workload::Workload& workload);

}  // namespace tapesim::cluster
