#include "cluster/similarity.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace tapesim::cluster {

std::uint64_t SimilarityGraph::key(ObjectId a, ObjectId b) {
  TAPESIM_ASSERT(a.value() < b.value());
  return (static_cast<std::uint64_t>(a.value()) << 32) | b.value();
}

SimilarityGraph SimilarityGraph::from_workload(
    const workload::Workload& workload) {
  SimilarityGraph graph;
  for (const workload::Request& r : workload.requests()) {
    if (r.probability <= 0.0) continue;
    // Normalize pair order via a sorted copy of the member list.
    std::vector<ObjectId> members = r.objects;
    std::sort(members.begin(), members.end());
    for (std::size_t i = 0; i < members.size(); ++i) {
      for (std::size_t j = i + 1; j < members.size(); ++j) {
        graph.weights_[key(members[i], members[j])] += r.probability;
      }
    }
  }
  graph.edges_.reserve(graph.weights_.size());
  for (const auto& [k, w] : graph.weights_) {
    graph.edges_.push_back(Edge{ObjectId{static_cast<std::uint32_t>(k >> 32)},
                                ObjectId{static_cast<std::uint32_t>(k)}, w});
  }
  std::sort(graph.edges_.begin(), graph.edges_.end(),
            [](const Edge& x, const Edge& y) {
              if (x.weight != y.weight) return x.weight > y.weight;
              if (x.a != y.a) return x.a < y.a;
              return x.b < y.b;
            });
  return graph;
}

double SimilarityGraph::similarity(ObjectId a, ObjectId b) const {
  if (a == b) return 0.0;
  if (b < a) std::swap(a, b);
  const auto it = weights_.find(key(a, b));
  return it == weights_.end() ? 0.0 : it->second;
}

double SimilarityGraph::set_similarity(const workload::Workload& workload,
                                       std::span<const ObjectId> objs) {
  double total = 0.0;
  for (const workload::Request& r : workload.requests()) {
    if (r.objects.size() < objs.size()) continue;
    bool contains_all = true;
    for (const ObjectId o : objs) {
      if (std::find(r.objects.begin(), r.objects.end(), o) ==
          r.objects.end()) {
        contains_all = false;
        break;
      }
    }
    if (contains_all) total += r.probability;
  }
  return total;
}

}  // namespace tapesim::cluster
